//! Delta evaluation of violation queries: *would this write change the
//! answer?*
//!
//! Section 5 describes how a write is checked against a previously-posed read
//! query: "it is possible to perform the check by posing a single query which
//! combines the original violation query with information about the new
//! tuple" — an insert can *contribute to the creation of a join result among
//! relations on the LHS* (a new witness appears) or *provide the last tuple
//! that makes a tuple appear in the join of relations on the RHS* (a violation
//! disappears); deletions mirror both cases. [`change_affects_query`]
//! implements exactly this structural check: does the written or deleted tuple
//! participate in an LHS witness, or in an RHS match of an existing witness,
//! consistent with the query's seed bindings? The check is deliberately
//! independent of whatever the reading update wrote *after* posing the query,
//! so an update's own corrective inserts can never mask a retroactive change.
//!
//! The answer-level helpers [`evaluate_with_change`] /
//! [`evaluate_without_change`] are also provided for diagnostics and tests.

use youtopia_storage::{
    restrict, satisfiable, Atom, Bindings, DataView, OverlaySnapshot, TupleChange, TupleData,
    TupleId,
};

use crate::tgd::{MappingSet, Tgd};
use crate::violation::{Violation, ViolationQuery, ViolationSeed};

/// Evaluates `query` as if `change` had happened (regardless of whether the
/// underlying view already reflects it).
pub fn evaluate_with_change(
    view: &dyn DataView,
    mappings: &MappingSet,
    query: &ViolationQuery,
    change: &TupleChange,
) -> Vec<Violation> {
    let overlay = overlay_with(view, change);
    query.evaluate(&overlay, mappings)
}

/// Evaluates `query` as if `change` had **not** happened.
pub fn evaluate_without_change(
    view: &dyn DataView,
    mappings: &MappingSet,
    query: &ViolationQuery,
    change: &TupleChange,
) -> Vec<Violation> {
    let overlay = overlay_without(view, change);
    query.evaluate(&overlay, mappings)
}

/// Returns `true` iff `change` *retroactively changes the result* of `query`
/// (Algorithm 4): the written or removed tuple participates — consistently
/// with the query's seed bindings — either in an LHS join result (a witness
/// appears or disappears) or in an RHS match relevant to such a witness (a
/// violation disappears or appears).
pub fn change_affects_query(
    view: &dyn DataView,
    mappings: &MappingSet,
    query: &ViolationQuery,
    change: &TupleChange,
) -> bool {
    let tgd = mappings.get(query.mapping);
    // Cheap pre-filter: the change must touch a relation the query reads.
    if !tgd.relations().contains(&change.relation()) {
        return false;
    }
    // Seed bindings, exactly as the query itself derives them.
    let Some(seed) = seed_bindings(tgd, &query.seed) else { return false };

    // A modification is treated as a delete of the old contents followed by an
    // insert of the new contents (Section 5), so both images are checked.
    let images: Vec<&TupleData> = match change {
        TupleChange::Inserted { values, .. } => vec![values],
        TupleChange::Deleted { old, .. } => vec![old],
        TupleChange::Modified { old, new, .. } => vec![old, new],
    };
    let relation = change.relation();
    let tuple = change.tuple();
    images.iter().any(|data| tuple_participates(view, tgd, &seed, relation, tuple, data))
}

/// Derives the seed bindings of a violation query (the constants of the
/// combined check query of Section 5).
fn seed_bindings(tgd: &Tgd, seed: &ViolationSeed) -> Option<Bindings> {
    match seed {
        ViolationSeed::Lhs { atom_index, values } => {
            tgd.lhs[*atom_index].match_tuple(values, &Bindings::new())
        }
        ViolationSeed::Rhs { atom_index, values } => tgd.rhs[*atom_index]
            .match_tuple(values, &Bindings::new())
            .map(|b| restrict(&b, tgd.frontier_vars())),
        ViolationSeed::Full => Some(Bindings::new()),
    }
}

/// Does the tuple `(relation, id, data)` participate in an LHS witness or an
/// RHS match of `tgd`, consistently with `seed`? Joins are evaluated on a view
/// in which the tuple is forced to be present with `data`, so the check works
/// uniformly for inserted, deleted and modified tuples.
fn tuple_participates(
    view: &dyn DataView,
    tgd: &Tgd,
    seed: &Bindings,
    relation: youtopia_storage::RelationId,
    tuple: TupleId,
    data: &TupleData,
) -> bool {
    let overlay = OverlaySnapshot::new(view).with_tuple(relation, tuple, data.clone());
    // LHS participation: the tuple extends to a full LHS match (a witness).
    for (index, atom) in tgd.lhs.iter().enumerate() {
        if atom.relation != relation {
            continue;
        }
        let Some(bindings) = atom.match_tuple(data, seed) else { continue };
        let others: Vec<Atom> = tgd
            .lhs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != index)
            .map(|(_, a)| a.clone())
            .collect();
        if satisfiable(&overlay, &others, &bindings) {
            return true;
        }
    }
    // RHS participation: the tuple is (part of) an RHS match for some LHS
    // witness with a compatible frontier assignment.
    for atom in &tgd.rhs {
        if atom.relation != relation {
            continue;
        }
        let Some(bindings) = atom.match_tuple(data, seed) else { continue };
        let frontier = restrict(&bindings, tgd.frontier_vars());
        if satisfiable(&overlay, &tgd.lhs, &frontier) {
            return true;
        }
    }
    false
}

fn overlay_with<'a, V: DataView + ?Sized>(
    view: &'a V,
    change: &TupleChange,
) -> OverlaySnapshot<'a, V> {
    let overlay = OverlaySnapshot::new(view);
    match change {
        TupleChange::Inserted { relation, tuple, values } => {
            overlay.with_tuple(*relation, *tuple, values.clone())
        }
        TupleChange::Deleted { relation, tuple, .. } => overlay.hide(*relation, *tuple),
        TupleChange::Modified { relation, tuple, new, .. } => {
            overlay.with_tuple(*relation, *tuple, new.clone())
        }
    }
}

fn overlay_without<'a, V: DataView + ?Sized>(
    view: &'a V,
    change: &TupleChange,
) -> OverlaySnapshot<'a, V> {
    let overlay = OverlaySnapshot::new(view);
    match change {
        TupleChange::Inserted { relation, tuple, .. } => overlay.hide(*relation, *tuple),
        TupleChange::Deleted { relation, tuple, old } => {
            overlay.with_tuple(*relation, *tuple, old.clone())
        }
        TupleChange::Modified { relation, tuple, old, .. } => {
            overlay.with_tuple(*relation, *tuple, old.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::violation::{violation_queries_for_change, ViolationSeed};
    use youtopia_storage::{Database, UpdateId, Value, Write};

    fn setup() -> (Database, MappingSet) {
        let mut db = Database::new();
        db.add_relation("A", ["location", "name"]).unwrap();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        let mut set = MappingSet::new();
        set.add_parsed(db.catalog(), "sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)")
            .unwrap();
        let u = UpdateId(0);
        db.insert_by_name("A", &["Geneva", "Geneva Winery"], u);
        db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], u);
        db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], u);
        (db, set)
    }

    #[test]
    fn deleting_a_review_affects_the_matching_violation_query() {
        let (mut db, set) = setup();
        // The query posed when the tour was inserted (seeded by the T tuple).
        let t = db.relation_id("T").unwrap();
        let tour = db.scan(t, UpdateId::OMNISCIENT)[0].1.clone();
        let query = ViolationQuery {
            mapping: set.by_name("sigma3").unwrap().id,
            seed: ViolationSeed::Lhs { atom_index: 1, values: tour },
        };
        // Now another update deletes the review.
        let r = db.relation_id("R").unwrap();
        let review = db.scan(r, UpdateId::OMNISCIENT)[0].0;
        let changes = db.apply(&Write::Delete { relation: r, tuple: review }, UpdateId(1)).unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert!(change_affects_query(&snap, &set, &query, &changes[0]));
        // Without the deletion the query has no violations; with it, one.
        assert!(evaluate_without_change(&snap, &set, &query, &changes[0]).is_empty());
        assert_eq!(evaluate_with_change(&snap, &set, &query, &changes[0]).len(), 1);
    }

    #[test]
    fn unrelated_writes_do_not_affect_the_query() {
        let (mut db, set) = setup();
        let t = db.relation_id("T").unwrap();
        let tour = db.scan(t, UpdateId::OMNISCIENT)[0].1.clone();
        let query = ViolationQuery {
            mapping: set.by_name("sigma3").unwrap().id,
            seed: ViolationSeed::Lhs { atom_index: 1, values: tour },
        };
        // Insert a review for a *different* company/attraction pair.
        let r = db.relation_id("R").unwrap();
        let changes = db
            .apply(
                &Write::Insert {
                    relation: r,
                    values: vec![
                        Value::constant("Other Co"),
                        Value::constant("Elsewhere"),
                        Value::constant("meh"),
                    ],
                },
                UpdateId(1),
            )
            .unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert!(!change_affects_query(&snap, &set, &query, &changes[0]));
    }

    #[test]
    fn writes_to_relations_outside_the_mapping_are_prefiltered() {
        let (mut db, set) = setup();
        db.add_relation("Unrelated", ["x"]).unwrap();
        let query = ViolationQuery {
            mapping: set.by_name("sigma3").unwrap().id,
            seed: ViolationSeed::Full,
        };
        let changes = {
            let rel = db.relation_id("Unrelated").unwrap();
            db.apply(
                &Write::Insert { relation: rel, values: vec![Value::constant("v")] },
                UpdateId(1),
            )
            .unwrap()
        };
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert!(!change_affects_query(&snap, &set, &query, &changes[0]));
    }

    #[test]
    fn inserting_a_new_tour_affects_queries_seeded_on_the_attraction() {
        let (mut db, set) = setup();
        // Query seeded by the A tuple at insert time.
        let a = db.relation_id("A").unwrap();
        let attraction = db.scan(a, UpdateId::OMNISCIENT)[0].1.clone();
        let query = ViolationQuery {
            mapping: set.by_name("sigma3").unwrap().id,
            seed: ViolationSeed::Lhs { atom_index: 0, values: attraction },
        };
        // A new tour without a review appears.
        let t = db.relation_id("T").unwrap();
        let changes = db
            .apply(
                &Write::Insert {
                    relation: t,
                    values: vec![
                        Value::constant("Geneva Winery"),
                        Value::constant("ABC Tours"),
                        Value::constant("Ithaca"),
                    ],
                },
                UpdateId(1),
            )
            .unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert!(change_affects_query(&snap, &set, &query, &changes[0]));
    }

    #[test]
    fn null_replacement_modification_can_affect_queries() {
        let (mut db, set) = setup();
        let t = db.relation_id("T").unwrap();
        let x = db.fresh_null();
        // A tour by an unknown company, with a matching review so σ3 holds.
        db.apply(
            &Write::Insert {
                relation: t,
                values: vec![
                    Value::constant("Geneva Winery"),
                    Value::Null(x),
                    Value::constant("Rome"),
                ],
            },
            UpdateId(0),
        )
        .unwrap();
        let r = db.relation_id("R").unwrap();
        db.apply(
            &Write::Insert {
                relation: r,
                values: vec![
                    Value::Null(x),
                    Value::constant("Geneva Winery"),
                    Value::constant("ok"),
                ],
            },
            UpdateId(0),
        )
        .unwrap();
        let query = ViolationQuery {
            mapping: set.by_name("sigma3").unwrap().id,
            seed: ViolationSeed::Full,
        };
        let changes = db
            .apply(
                &Write::NullReplace { null: x, replacement: Value::constant("New Co") },
                UpdateId(1),
            )
            .unwrap();
        assert_eq!(changes.len(), 2);
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        // Replacing the null in T alone (first change) breaks the join with the
        // not-yet-rewritten R only if evaluated in isolation; the full-scan
        // query sees a difference for at least one of the two modifications.
        let affected = changes.iter().any(|c| change_affects_query(&snap, &set, &query, c));
        assert!(affected);
        // And the generated queries for the change are non-empty.
        assert!(!violation_queries_for_change(&set, &changes[0]).is_empty());
    }
}
