//! The genealogical database of Section 2.2: a *cyclic* mapping that the
//! classical chase cannot handle, but cooperative update exchange can.
//!
//! The mapping `Person(x) → ∃y Father(x, y) ∧ Person(y)` states that every
//! person has a father who is also a person. Inserting a single person into an
//! empty database makes the standard tgd chase cascade forever; in Youtopia
//! the chase generates the father as a positive frontier tuple as soon as an
//! existing person is a unification candidate, and a user decides whether the
//! father is somebody already known (unify) or a new ancestor (expand).
//!
//! The example shows three users:
//! * an *eager archivist* who keeps expanding (adding three more generations),
//! * a *skeptic* who immediately unifies (the family tree stays tiny),
//! * the classical chase (always expand, never stop) — which hits the step
//!   limit, demonstrating why acyclicity restrictions exist elsewhere.
//!
//! Run with `cargo run --example genealogy`.

use youtopia::chase::{FrontierDecision, FrontierRequest, PositiveAction};
use youtopia::mappings::is_weakly_acyclic;
use youtopia::{
    ChaseError, DataView, Database, ExpandResolver, FrontierResolver, MappingGraph, MappingSet,
    UnifyResolver, UpdateExchange, UpdateId,
};

fn fresh_repository() -> (Database, MappingSet) {
    let mut db = Database::new();
    db.add_relation("Person", ["name"]).unwrap();
    db.add_relation("Father", ["child", "father"]).unwrap();
    let mut mappings = MappingSet::new();
    mappings
        .add_parsed(db.catalog(), "ancestry: Person(x) -> exists y. Father(x, y) & Person(y)")
        .unwrap();
    (db, mappings)
}

fn print_tree(db: &Database) {
    let person = db.relation_id("Person").unwrap();
    let father = db.relation_id("Father").unwrap();
    println!(
        "  {} person(s), {} father edge(s)",
        db.visible_count(person, UpdateId::OMNISCIENT),
        db.visible_count(father, UpdateId::OMNISCIENT)
    );
    for (_, edge) in db.scan(father, UpdateId::OMNISCIENT) {
        println!("    Father({}, {})", edge[0], edge[1]);
    }
}

/// A user who expands the first `generations` frontier requests (adding new
/// unknown ancestors) and then unifies, closing the chain.
struct Archivist {
    generations: usize,
}

impl FrontierResolver for Archivist {
    fn resolve(&mut self, _view: &dyn DataView, request: &FrontierRequest) -> FrontierDecision {
        match request {
            FrontierRequest::Positive(pf) => {
                if self.generations > 0 {
                    self.generations -= 1;
                    FrontierDecision::expand_all(pf)
                } else {
                    FrontierDecision::Positive(
                        pf.tuples
                            .iter()
                            .map(|t| match t.candidates.first() {
                                Some((id, _)) => PositiveAction::Unify { with: *id },
                                None => PositiveAction::Expand,
                            })
                            .collect(),
                    )
                }
            }
            FrontierRequest::Negative(nf) => FrontierDecision::delete_first(nf),
        }
    }
}

fn main() {
    let (db, mappings) = fresh_repository();

    println!("Mapping: {}", mappings.by_name("ancestry").unwrap().display_with(db.catalog()));
    let graph = MappingGraph::new(&mappings);
    println!(
        "cycle in the mapping graph: {} — weakly acyclic: {}",
        graph.has_cycle(),
        is_weakly_acyclic(&mappings)
    );
    println!("(classical update exchange would reject this mapping set)\n");

    println!("== The eager archivist: three more generations, then stop ==");
    let mut exchange = UpdateExchange::new(db.clone(), mappings.clone());
    let mut archivist = Archivist { generations: 3 };
    exchange.insert_constants("Person", &["John"], &mut archivist).unwrap();
    print_tree(&exchange.db());
    assert!(exchange.is_consistent());
    println!();

    println!("== The skeptic: unify immediately (John is his own ancestor?) ==");
    let mut exchange = UpdateExchange::new(db.clone(), mappings.clone());
    let mut skeptic = UnifyResolver;
    exchange.insert_constants("Person", &["John"], &mut skeptic).unwrap();
    print_tree(&exchange.db());
    assert!(exchange.is_consistent());
    println!();

    println!("== The classical chase (always expand) never terminates ==");
    let mut exchange = UpdateExchange::with_builder(
        db,
        mappings,
        youtopia::EngineBuilder::new().max_steps_per_update(500),
    );
    let mut classical = ExpandResolver;
    match exchange.insert_constants("Person", &["John"], &mut classical) {
        Err(ChaseError::StepLimitExceeded { limit, .. }) => {
            println!("  stopped by the safety valve after {limit} chase steps —");
            println!("  this is the controlled non-termination of Section 2.2: users can always");
            println!("  add further ancestors, but nothing forces the system to invent them.");
        }
        other => println!("  unexpected outcome: {other:?}"),
    }
}
