//! Convergence tests for replicated engines
//! ([`youtopia::replication`]): N nodes exchanging state-vector deltas over
//! faulty links must render **byte-identical** databases once they hold the
//! same events — regardless of topology, submission interleaving, duplicate
//! or reordered delivery, and partition-and-heal histories.
//!
//! The harness answers stalled frontier questions on one node at a time (the
//! lowest-indexed asker), so the tests also pin the paper-level guarantee
//! that a question answered on one node is *resolved*, not re-asked, on every
//! other.

use proptest::prelude::*;
use youtopia::replication::{LinkFaults, ReplicaSet, Topology};
use youtopia::storage::wal::serialize_database;
use youtopia::{Database, InitialOp, MappingSet, TupleId, UpdateId, Value};

/// The Example 3.1 fragment, doubled: two (attraction, tour, review) triples
/// so several independent deletes can stall on negative frontiers.
fn genesis() -> (Database, MappingSet) {
    let mut db = Database::new();
    db.add_relation("A", ["location", "name"]).unwrap();
    db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
    db.add_relation("R", ["company", "attraction", "review"]).unwrap();
    let mut mappings = MappingSet::new();
    mappings
        .add_parsed(db.catalog(), "sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)")
        .unwrap();
    let u = UpdateId(0);
    db.insert_by_name("A", &["Geneva", "Geneva Winery"], u);
    db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], u);
    db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], u);
    db.insert_by_name("A", &["Niagara", "Maid of the Mist"], u);
    db.insert_by_name("T", &["Maid of the Mist", "ABC", "Toronto"], u);
    db.insert_by_name("R", &["ABC", "Maid of the Mist", "Wow"], u);
    (db, mappings)
}

/// The submission vocabulary, indexed by the proptest schedule. Tuple ids are
/// taken from the genesis, which every replica shares byte-for-byte.
fn op_pool(db: &Database) -> Vec<InitialOp> {
    let a = db.relation_id("A").unwrap();
    let t = db.relation_id("T").unwrap();
    let r = db.relation_id("R").unwrap();
    let reviews: Vec<TupleId> =
        db.scan(r, UpdateId::OMNISCIENT).into_iter().map(|(id, _)| id).collect();
    vec![
        // Forward chase: a new tour derives a review with a labeled null.
        InitialOp::Insert {
            relation: t,
            values: vec![
                Value::constant("Geneva Winery"),
                Value::constant("NewCo"),
                Value::constant("Ithaca"),
            ],
        },
        // Trivial: a new attraction violates nothing on its own.
        InitialOp::Insert {
            relation: a,
            values: vec![Value::constant("Rome"), Value::constant("Colosseum")],
        },
        // Backward chase: deleting a review stalls on a negative frontier
        // (delete the attraction or the tour?).
        InitialOp::Delete { relation: r, tuple: reviews[0] },
        InitialOp::Delete { relation: r, tuple: reviews[1] },
        // Forward chase on the other attraction.
        InitialOp::Insert {
            relation: t,
            values: vec![
                Value::constant("Maid of the Mist"),
                Value::constant("DEF"),
                Value::constant("Buffalo"),
            ],
        },
    ]
}

fn build_set(n: usize, topology: Topology, faults: LinkFaults, seed: u64) -> ReplicaSet {
    let (db, mappings) = genesis();
    ReplicaSet::new(n, topology, faults, seed, db, mappings)
}

/// Deterministic smoke: two nodes edit concurrently (a genuine conflict —
/// both sides extend their fold before hearing from each other), sync, and
/// land on the same bytes. At least one side must have rebuilt: that is what
/// "concurrent" means under a canonical total order.
#[test]
fn conflicting_concurrent_edits_converge_via_rebuild() {
    let mut set = build_set(2, Topology::FullMesh, LinkFaults::default(), 11);
    let (db, _) = genesis();
    let ops = op_pool(&db);
    set.submit(0, ops[2].clone()).unwrap(); // delete review 0 (stalls on n0)
    set.submit(1, ops[0].clone()).unwrap(); // new tour (terminates on n1)
    let rounds = set.converge(7, 64).unwrap();
    assert!(rounds >= 1);
    assert!(set.total_rebuilds() >= 1, "concurrent folds must have collided");
    set.assert_identical();
    assert_eq!(set.state_vectors().unwrap()[0], set.state_vectors().unwrap()[1]);
}

/// A question answered at its origin node is folded — not re-asked — at a
/// node that receives the submit and the answer together.
#[test]
fn answers_replicate_so_questions_are_never_reasked() {
    let mut set = build_set(2, Topology::FullMesh, LinkFaults::default(), 3);
    set.partition(0, 1); // node 1 hears nothing until the full story exists
    let (db, _) = genesis();
    let ops = op_pool(&db);
    set.submit(0, ops[2].clone()).unwrap();
    assert!(
        !set.node(0).engine().pending_frontiers().is_empty(),
        "the delete must stall on its negative frontier"
    );
    let mut resolver = youtopia::RandomResolver::seeded(5);
    set.node_mut(0).answer_pending(&mut resolver).unwrap();
    assert!(set.node(0).settled().unwrap());

    set.heal();
    let report = set.sync_round().unwrap();
    assert!(report.appended >= 2, "submit and answer both travel");
    assert!(
        set.node(1).engine().pending_frontiers().is_empty(),
        "node 1 folded the recorded answer instead of re-asking"
    );
    assert!(set.node(1).settled().unwrap());
    set.assert_identical();
}

// Convergence survives the full fault matrix: any node count, topology,
// schedule interleaving, hostile links (reorder + duplicates), and an
// optional partition across the first half of the schedule.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn replica_sets_converge_from_any_schedule(
        n in 2usize..5,
        topo_pick in 0u8..3,
        seed in 0u64..1_000,
        schedule in prop::collection::vec((0u8..4, 0u8..5), 1..6),
        hostile in 0u8..2,
        partitioned in 0u8..2,
    ) {
        let topology = match topo_pick {
            0 => Topology::FullMesh,
            1 => Topology::Star,
            _ => Topology::Chain,
        };
        let faults = if hostile == 1 { LinkFaults::hostile() } else { LinkFaults::default() };
        let mut set = build_set(n, topology, faults, seed);
        let (db, _) = genesis();
        let ops = op_pool(&db);
        if partitioned == 1 {
            set.partition(0, 1);
        }
        let half = schedule.len() / 2;
        for (i, (node, op)) in schedule.iter().enumerate() {
            if i == half {
                set.heal();
            }
            set.submit(*node as usize % n, ops[*op as usize % ops.len()].clone()).unwrap();
            // Interleave gossip with submissions so deltas of different ages
            // coexist in flight.
            if i % 2 == 0 {
                set.sync_round().unwrap();
            }
        }
        set.heal();
        set.converge(seed ^ 0x5eed, 128).unwrap();
        set.assert_identical();
        let svs = set.state_vectors().unwrap();
        for sv in &svs[1..] {
            prop_assert_eq!(sv, &svs[0]);
        }
    }
}

/// Partition storm: repeatedly sever a random link, edit on both sides of the
/// cut, heal, and require byte-identical convergence every time. Expensive —
/// run with `cargo test -- --ignored`.
#[test]
#[ignore = "partition-storm stress; minutes of rebuild churn"]
fn partition_storm_converges_every_generation() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xda7a);
    let mut set = build_set(4, Topology::FullMesh, LinkFaults::hostile(), 99);
    let (db, _) = genesis();
    let ops = op_pool(&db);
    for generation in 0..10u64 {
        let a = rng.gen_range(0usize..4);
        let b = (a + rng.gen_range(1usize..4)) % 4;
        set.partition(a, b);
        // Both sides of the cut keep editing: inserts only after the first
        // generation (the genesis deletes are gone by then).
        let insert_ops = [0usize, 1, 4];
        let pick = |rng: &mut StdRng| insert_ops[rng.gen_range(0usize..3)];
        if generation == 0 {
            set.submit(a, ops[2].clone()).unwrap();
            set.submit(b, ops[3].clone()).unwrap();
        } else {
            let (i, j) = (pick(&mut rng), pick(&mut rng));
            set.submit(a, ops[i].clone()).unwrap();
            set.submit(b, ops[j].clone()).unwrap();
        }
        for _ in 0..2 {
            set.sync_round().unwrap();
        }
        set.heal();
        set.converge(generation, 256).unwrap();
        set.assert_identical();
    }
    assert!(set.total_rebuilds() >= 1);
    // Final sanity: the rendered bytes really are a serialized database.
    let bytes = set.node(0).rendered();
    let db = youtopia::storage::wal::deserialize_database(&bytes).unwrap();
    assert_eq!(serialize_database(&db), bytes);
}
