//! Test-execution support: configuration, the per-test RNG, and case errors.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block (stub: only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG driving value generation for one test function.
///
/// Seeded from an FNV-1a hash of the test name (optionally overridden via the
/// `PROPTEST_SEED` environment variable), so runs are deterministic and a
/// failure reproduces without persisted regression files.
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Creates the RNG for the named test.
    pub fn for_test(name: &str) -> TestRng {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(name.as_bytes())),
            Err(_) => fnv1a(name.as_bytes()),
        };
        TestRng { rng: StdRng::seed_from_u64(seed) }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_0000_01B3);
    }
    hash
}

/// Why a single generated case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
