//! The Section 6 experiment driver: sweep mapping density, run each workload
//! under each tracker, average over repeated runs.
//!
//! The (density, tracker, run) grid is embarrassingly parallel: every cell
//! clones the shared fixture database and derives its own random seed from
//! `(config.seed, run index)`, so no cell observes another. [`run_experiment`]
//! therefore fans the cells out over scoped worker threads (no external
//! dependencies — just `std::thread::scope`) and reassembles the results in
//! grid order, which makes the output byte-identical at any thread count.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use youtopia_concurrency::{
    AveragedMetrics, ConcurrentRun, EngineBuilder, ResolverPump, RunMetrics, SchedulerConfig,
    TrackerKind,
};
use youtopia_core::{ChaseError, InitialOp, RandomResolver};
use youtopia_mappings::{satisfies_all, MappingSet};
use youtopia_storage::{Database, UpdateId};

use crate::config::{poisson_arrival_ticks, ArrivalProcess, ExperimentConfig, WorkloadKind};
use crate::data_gen::{generate_initial_database, InitialDataStats};
use crate::mapping_gen::generate_mappings;
use crate::report::LatencySummary;
use crate::schema_gen::{generate_schema, GeneratedSchema};
use crate::update_gen::generate_workload;

/// One data point of a figure: a (mapping count, tracker) pair with averaged
/// metrics over `runs` repetitions.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentPoint {
    /// Number of mappings active in this setting (the x axis).
    pub mappings: usize,
    /// The cascading-abort tracker used.
    pub tracker: TrackerKind,
    /// Number of runs averaged.
    pub runs: usize,
    /// Averaged metrics.
    pub avg: AveragedMetrics,
    /// Nearest-rank percentiles of the per-update execution time across the
    /// point's repeated runs (one sample per run) — the tail behind
    /// `avg.per_update_time_secs`.
    pub latency: LatencySummary,
}

/// The complete result of one figure's experiment (one workload, all trackers,
/// all mapping densities).
#[derive(Clone, Debug)]
pub struct ExperimentResults {
    /// Which workload was used.
    pub workload: WorkloadKind,
    /// The configuration the experiment ran with.
    pub config: ExperimentConfig,
    /// Statistics about the shared initial database.
    pub initial_data: InitialDataStats,
    /// All data points, ordered by (mapping count, tracker).
    pub points: Vec<ExperimentPoint>,
    /// Total wall-clock seconds spent running the experiment.
    pub total_seconds: f64,
}

impl ExperimentResults {
    /// The data point for a given mapping count and tracker.
    pub fn point(&self, mappings: usize, tracker: TrackerKind) -> Option<&ExperimentPoint> {
        self.points.iter().find(|p| p.mappings == mappings && p.tracker == tracker)
    }

    /// The slowdown of `PRECISE` relative to `COARSE` at a given mapping
    /// count: the ratio of per-update execution times (third panel of
    /// Figures 3 and 4).
    pub fn precise_slowdown(&self, mappings: usize) -> Option<f64> {
        let precise = self.point(mappings, TrackerKind::Precise)?;
        let coarse = self.point(mappings, TrackerKind::Coarse)?;
        if coarse.avg.per_update_time_secs == 0.0 {
            return None;
        }
        Some(precise.avg.per_update_time_secs / coarse.avg.per_update_time_secs)
    }

    /// The series of (mapping count, average aborts) for one tracker (first
    /// panel of Figures 3 and 4).
    pub fn abort_series(&self, tracker: TrackerKind) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .filter(|p| p.tracker == tracker)
            .map(|p| (p.mappings, p.avg.aborts))
            .collect()
    }

    /// The series of (mapping count, average cascading abort requests) for one
    /// tracker (second panel of Figures 3 and 4).
    pub fn cascading_series(&self, tracker: TrackerKind) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .filter(|p| p.tracker == tracker)
            .map(|p| (p.mappings, p.avg.cascading_abort_requests))
            .collect()
    }
}

/// The shared experiment fixture: schema, full mapping set and the initial
/// database (which satisfies *all* mappings, as in the paper).
pub struct ExperimentFixture {
    /// The generated schema and constant pool.
    pub schema: GeneratedSchema,
    /// The full mapping set (experiments use prefixes of it).
    pub mappings: MappingSet,
    /// The populated initial database.
    pub initial_db: Database,
    /// Statistics of the population phase.
    pub initial_data: InitialDataStats,
}

/// Builds the experiment fixture for a configuration.
pub fn build_fixture(config: &ExperimentConfig) -> Result<ExperimentFixture, ChaseError> {
    config.validate().map_err(ChaseError::InvalidDecision)?;
    let schema = generate_schema(config);
    let mappings = generate_mappings(config, &schema);
    let (initial_db, initial_data) = generate_initial_database(config, &schema, &mappings)?;
    Ok(ExperimentFixture { schema, mappings, initial_db, initial_data })
}

/// Runs one concurrent execution of one workload variant under one tracker and
/// mapping prefix, returning its metrics. Exposed for benchmarks.
///
/// The workload is generated against the *active* mapping prefix. For the
/// paper's kinds this changes nothing across a density sweep (they ignore the
/// mappings), but [`WorkloadKind::DeepCascade`] aims its inserts at the
/// prefix's longest chains, so its op stream varies with `mapping_count` —
/// deep-cascade points measure "the hardest workload for this density", not
/// one fixed workload under varying density. Keep that in mind before putting
/// it on a Figure 3-style x-axis.
pub fn run_single(
    fixture: &ExperimentFixture,
    config: &ExperimentConfig,
    kind: WorkloadKind,
    mapping_count: usize,
    tracker: TrackerKind,
    variant: u64,
) -> Result<RunMetrics, ChaseError> {
    let mappings = fixture.mappings.prefix(mapping_count);
    let ops =
        generate_workload(config, &fixture.schema, &fixture.initial_db, &mappings, kind, variant);
    let scheduler = SchedulerConfig::with_tracker(tracker)
        .with_frontier_delay_rounds(config.frontier_delay_rounds)
        .with_workers(config.chase_workers.max(1));
    // Workload updates get priority numbers above every update that built the
    // initial database.
    let first_number = config.initial_tuples as u64 + 1_000;
    let mut resolver = RandomResolver::seeded(config.seed ^ (variant.wrapping_mul(0x9E37_79B9)));
    // `chase_workers == 0` with batch arrival runs the single-threaded
    // reference scheduler; everything else submits through the long-lived
    // `ExchangeEngine`, whose deterministic sequencer commits steps in the
    // reference serialisation order — the two paths are byte-identical
    // (pinned by `tests/determinism.rs` and `tests/engine_equivalence.rs`).
    // Staggered arrivals always go through the engine (with at least one
    // worker): waves must share one read log / tracker lifetime.
    let metrics = if config.chase_workers == 0 && config.arrival == ArrivalProcess::Batch {
        let mut run =
            ConcurrentRun::new(fixture.initial_db.clone(), mappings, ops, first_number, scheduler);
        let metrics = run.run(&mut resolver)?;
        debug_assert!({
            let (db, mappings, _) = run.into_parts();
            satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), &mappings)
        });
        metrics
    } else {
        run_single_through_engine(
            fixture.initial_db.clone(),
            mappings,
            config,
            scheduler,
            first_number,
            ops,
            &mut resolver,
        )?
    };
    Ok(metrics)
}

/// The engine-backed run: submit the workload according to the configured
/// [`ArrivalProcess`], pump frontier answers through the resolver, and
/// collect the engine's metrics once quiescent.
#[allow(clippy::too_many_arguments)]
fn run_single_through_engine(
    db: Database,
    mappings: MappingSet,
    config: &ExperimentConfig,
    scheduler: SchedulerConfig,
    first_number: u64,
    ops: Vec<InitialOp>,
    resolver: &mut RandomResolver,
) -> Result<RunMetrics, ChaseError> {
    let start = Instant::now();
    let engine = EngineBuilder::new()
        .scheduler(scheduler)
        .first_update_number(first_number)
        .build(db, mappings)
        .expect("non-durable engines build infallibly");
    let submit = |batch: Vec<InitialOp>| {
        engine.submit_batch(batch).map_err(|e| ChaseError::InvalidDecision(e.to_string()))
    };
    match config.arrival {
        ArrivalProcess::Batch => {
            submit(ops)?;
            ResolverPump::new(&engine, resolver).run_until_quiescent()?;
        }
        ArrivalProcess::Staggered { wave } => {
            for chunk in ops.chunks(wave.max(1)) {
                submit(chunk.to_vec())?;
                ResolverPump::new(&engine, resolver).run_until_quiescent()?;
            }
        }
        ArrivalProcess::Poisson { rate } => {
            // Sample the whole arrival schedule up front (seeded, so the run
            // stays reproducible), then treat each tick's arrivals as one
            // wave under the same closed-loop pump as `Staggered` — wave
            // sizes are Poisson-distributed, determinism is untouched.
            let ticks = poisson_arrival_ticks(ops.len(), rate, config.seed ^ 0x7019);
            let mut wave: Vec<InitialOp> = Vec::new();
            let mut current = ticks.first().copied().unwrap_or(0);
            for (op, tick) in ops.into_iter().zip(ticks) {
                if tick != current {
                    submit(std::mem::take(&mut wave))?;
                    ResolverPump::new(&engine, resolver).run_until_quiescent()?;
                    current = tick;
                }
                wave.push(op);
            }
            submit(wave)?;
            ResolverPump::new(&engine, resolver).run_until_quiescent()?;
        }
    }
    debug_assert!(
        engine.read(|db| satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), engine.mappings())),
        "engine run must leave a consistent database"
    );
    let (_db, _mappings, mut metrics) = engine.shutdown();
    metrics.wall_time = start.elapsed();
    Ok(metrics)
}

/// One (density, tracker, run) cell of the experiment grid.
#[derive(Clone, Copy, Debug)]
struct GridCell {
    mappings: usize,
    tracker: TrackerKind,
    run_index: u64,
}

/// Resolves the number of worker threads for a grid of `cells` cells:
/// `config.worker_threads`, or one per available core when it is `0`, never
/// more than there are cells.
fn effective_worker_threads(config: &ExperimentConfig, cells: usize) -> usize {
    let requested = if config.worker_threads > 0 {
        config.worker_threads
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    };
    requested.clamp(1, cells.max(1))
}

/// Walks the grid in deterministic (density, tracker, run) order, pulling
/// each cell's outcome from `next_outcome` (by cell index), accumulating the
/// per-point averages and firing `progress` as soon as each (density,
/// tracker) point completes. The first error in grid order wins, matching
/// what a serial sweep would have reported.
fn assemble_points(
    config: &ExperimentConfig,
    trackers: &[TrackerKind],
    mut next_outcome: impl FnMut(usize) -> Result<RunMetrics, ChaseError>,
    progress: &mut Option<&mut dyn FnMut(&ExperimentPoint)>,
) -> Result<Vec<ExperimentPoint>, ChaseError> {
    let mut points = Vec::new();
    let mut cell = 0usize;
    for &mapping_count in &config.mapping_counts {
        for &tracker in trackers {
            let mut total = RunMetrics::default();
            let mut samples = Vec::with_capacity(config.runs);
            for _ in 0..config.runs {
                let metrics = next_outcome(cell)?;
                samples.push(metrics.per_update_time().as_secs_f64());
                total.accumulate(&metrics);
                cell += 1;
            }
            let point = ExperimentPoint {
                mappings: mapping_count,
                tracker,
                runs: config.runs,
                avg: total.averaged(config.runs),
                latency: LatencySummary::from_samples(&samples),
            };
            if let Some(cb) = progress.as_deref_mut() {
                cb(&point);
            }
            points.push(point);
        }
    }
    Ok(points)
}

/// Runs the grid on `workers` scoped threads, streaming the points out in
/// grid order as their cells complete — live progress is preserved even
/// though cells finish out of order. Each cell's outcome is independent of
/// scheduling, so any worker count yields identical results.
fn run_grid_parallel(
    fixture: &ExperimentFixture,
    config: &ExperimentConfig,
    kind: WorkloadKind,
    trackers: &[TrackerKind],
    cells: &[GridCell],
    workers: usize,
    progress: &mut Option<&mut dyn FnMut(&ExperimentPoint)>,
) -> Result<Vec<ExperimentPoint>, ChaseError> {
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots: Mutex<Vec<Option<Result<RunMetrics, ChaseError>>>> =
        Mutex::new(cells.iter().map(|_| None).collect());
    let ready = Condvar::new();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let outcome =
                    run_single(fixture, config, kind, cell.mappings, cell.tracker, cell.run_index);
                slots.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(outcome);
                ready.notify_all();
            });
        }
        // The main thread assembles (and reports progress) while the workers
        // crunch, blocking only on the next cell it needs in grid order.
        let result = assemble_points(
            config,
            trackers,
            |i| {
                let mut guard = slots.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(outcome) = guard[i].take() {
                        return outcome;
                    }
                    guard = ready.wait(guard).unwrap_or_else(|e| e.into_inner());
                }
            },
            progress,
        );
        if result.is_err() {
            // Let idle workers wind down instead of finishing the grid.
            stop.store(true, Ordering::Relaxed);
        }
        result
    })
}

/// Runs the full experiment for one workload: every mapping density, every
/// requested tracker, `config.runs` repetitions each, fanned out over
/// `config.worker_threads` workers (all cores when `0`). `progress` (if given)
/// is called for every (density, tracker) cell, in grid order, as soon as the
/// cell completes.
pub fn run_experiment(
    config: &ExperimentConfig,
    kind: WorkloadKind,
    trackers: &[TrackerKind],
    mut progress: Option<&mut dyn FnMut(&ExperimentPoint)>,
) -> Result<ExperimentResults, ChaseError> {
    let started = Instant::now();
    let fixture = build_fixture(config)?;

    // Lay the grid out in deterministic order: density, then tracker, then
    // run. Each cell keeps its existing seed derivation (the run index), so
    // parallel execution cannot change any cell's outcome.
    let mut cells = Vec::with_capacity(config.mapping_counts.len() * trackers.len() * config.runs);
    for &mapping_count in &config.mapping_counts {
        for &tracker in trackers {
            for run_index in 0..config.runs {
                cells.push(GridCell {
                    mappings: mapping_count,
                    tracker,
                    run_index: run_index as u64,
                });
            }
        }
    }
    let workers = effective_worker_threads(config, cells.len());
    let points = if workers <= 1 {
        assemble_points(
            config,
            trackers,
            |i| {
                let cell = &cells[i];
                run_single(&fixture, config, kind, cell.mappings, cell.tracker, cell.run_index)
            },
            &mut progress,
        )?
    } else {
        run_grid_parallel(&fixture, config, kind, trackers, &cells, workers, &mut progress)?
    };
    Ok(ExperimentResults {
        workload: kind,
        config: config.clone(),
        initial_data: fixture.initial_data,
        points,
        total_seconds: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_experiment_produces_a_full_grid_of_points() {
        let config = ExperimentConfig::tiny();
        let trackers = [TrackerKind::Coarse, TrackerKind::Precise];
        let mut seen = 0usize;
        let mut progress = |_: &ExperimentPoint| seen += 1;
        let results =
            run_experiment(&config, WorkloadKind::AllInserts, &trackers, Some(&mut progress))
                .unwrap();
        assert_eq!(results.points.len(), config.mapping_counts.len() * trackers.len());
        assert_eq!(seen, results.points.len());
        for &m in &config.mapping_counts {
            for &t in &trackers {
                let p = results.point(m, t).unwrap();
                assert_eq!(p.runs, config.runs);
                assert!(p.avg.steps > 0.0);
            }
            assert!(results.precise_slowdown(m).is_some());
        }
        assert_eq!(results.abort_series(TrackerKind::Coarse).len(), config.mapping_counts.len());
        assert_eq!(
            results.cascading_series(TrackerKind::Precise).len(),
            config.mapping_counts.len()
        );
        assert!(results.total_seconds > 0.0);
        assert_eq!(results.workload, WorkloadKind::AllInserts);
    }

    #[test]
    fn mixed_workload_runs_and_leaves_consistent_databases() {
        let mut config = ExperimentConfig::tiny();
        config.runs = 1;
        config.mapping_counts = vec![config.total_mappings];
        let results =
            run_experiment(&config, WorkloadKind::Mixed, &[TrackerKind::Coarse], None).unwrap();
        assert_eq!(results.points.len(), 1);
        let p = &results.points[0];
        assert!(p.avg.frontier_ops >= 0.0);
        assert!(p.avg.changes > 0.0);
    }

    #[test]
    fn new_workload_kinds_run_end_to_end() {
        let mut config = ExperimentConfig::tiny();
        config.runs = 1;
        config.mapping_counts = vec![config.total_mappings];
        for kind in
            [WorkloadKind::NullReplacementHeavy, WorkloadKind::Skewed, WorkloadKind::DeepCascade]
        {
            let results = run_experiment(&config, kind, &[TrackerKind::Coarse], None).unwrap();
            assert_eq!(results.points.len(), 1, "{kind} must produce its point");
            assert!(results.points[0].avg.steps > 0.0);
            assert_eq!(results.workload, kind);
        }
    }

    #[test]
    fn poisson_arrivals_run_deterministically_through_the_engine() {
        let mut config = ExperimentConfig::tiny();
        config.runs = 1;
        config.mapping_counts = vec![config.total_mappings];
        config.arrival = ArrivalProcess::Poisson { rate: 1.5 };
        let fixture = build_fixture(&config).unwrap();
        let a =
            run_single(&fixture, &config, WorkloadKind::Mixed, 8, TrackerKind::Precise, 0).unwrap();
        assert_eq!(a.workload_size, config.workload_updates);
        assert!(a.steps > 0);
        // Same seed, same arrival schedule, same outcome — at any worker count.
        let mut two = config.clone();
        two.chase_workers = 2;
        let b =
            run_single(&fixture, &two, WorkloadKind::Mixed, 8, TrackerKind::Precise, 0).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.aborts, b.aborts);
        assert_eq!(a.changes, b.changes);
    }

    #[test]
    fn points_carry_latency_percentiles() {
        let mut config = ExperimentConfig::tiny();
        config.mapping_counts = vec![4];
        let results =
            run_experiment(&config, WorkloadKind::AllInserts, &[TrackerKind::Coarse], None)
                .unwrap();
        let p = &results.points[0];
        assert!(p.latency.p50 > 0.0, "non-trivial runs take non-zero time");
        assert!(p.latency.p50 <= p.latency.p95 && p.latency.p95 <= p.latency.p99);
    }

    #[test]
    fn single_runs_are_reproducible() {
        let config = ExperimentConfig::tiny();
        let fixture = build_fixture(&config).unwrap();
        let a = run_single(&fixture, &config, WorkloadKind::AllInserts, 4, TrackerKind::Precise, 0)
            .unwrap();
        let b = run_single(&fixture, &config, WorkloadKind::AllInserts, 4, TrackerKind::Precise, 0)
            .unwrap();
        assert_eq!(a.aborts, b.aborts);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.cascading_abort_requests, b.cascading_abort_requests);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut config = ExperimentConfig::tiny();
        config.runs = 0;
        assert!(run_experiment(&config, WorkloadKind::AllInserts, &[TrackerKind::Coarse], None)
            .is_err());
    }
}
