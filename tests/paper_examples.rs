//! Integration tests that replay the paper's running examples end to end
//! through the public facade API (Figure 2, Examples 1.1, 2.3 and 3.1, and the
//! genealogical mapping of Section 2.2).

use youtopia::chase::{FrontierDecision, FrontierRequest, PositiveAction};
use youtopia::{
    find_violations, satisfies_all, ChaseError, ConcurrentRun, Database, ExpandResolver, InitialOp,
    MappingSet, RandomResolver, SchedulerConfig, ScriptedResolver, TrackerKind, UpdateExchange,
    UpdateExecution, UpdateId, UpdateState, Value,
};

/// Builds the Figure 2 repository (schema + mappings σ1–σ4 + data) through the
/// update-exchange API so every row is chased into consistency.
fn figure2() -> UpdateExchange {
    let mut db = Database::new();
    db.add_relation("C", ["city"]).unwrap();
    db.add_relation("S", ["code", "location", "city_served"]).unwrap();
    db.add_relation("A", ["location", "name"]).unwrap();
    db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
    db.add_relation("R", ["company", "attraction", "review"]).unwrap();
    db.add_relation("V", ["city", "convention"]).unwrap();
    db.add_relation("E", ["convention", "attraction"]).unwrap();
    let mut mappings = MappingSet::new();
    mappings
        .add_parsed_many(
            db.catalog(),
            "
            sigma1: C(c) -> exists a, l. S(a, l, c)
            sigma2: S(a, c, c2) -> C(c) & C(c2)
            sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
            sigma4: V(cv, x) & T(n, c, cv) -> E(x, n)
            ",
        )
        .unwrap();
    let mut exchange = UpdateExchange::new(db, mappings);
    let mut user = RandomResolver::seeded(2009);
    for (rel, rows) in [
        ("C", vec![vec!["Ithaca"], vec!["Syracuse"]]),
        ("S", vec![vec!["SYR", "Syracuse", "Syracuse"], vec!["SYR", "Syracuse", "Ithaca"]]),
        ("A", vec![vec!["Geneva", "Geneva Winery"], vec!["Niagara Falls", "Niagara Falls"]]),
        ("R", vec![vec!["XYZ", "Geneva Winery", "Great!"]]),
        ("E", vec![vec!["Science Conf", "Geneva Winery"]]),
        ("V", vec![vec!["Syracuse", "Science Conf"]]),
        ("T", vec![vec!["Geneva Winery", "XYZ", "Syracuse"]]),
    ] {
        for row in rows {
            exchange.insert_constants(rel, &row, &mut user).unwrap();
        }
    }
    assert!(exchange.is_consistent(), "Figure 2 repository must satisfy σ1–σ4");
    exchange
}

#[test]
fn example_1_1_new_tour_gets_a_review_placeholder() {
    let mut repo = figure2();
    let mut user = RandomResolver::seeded(1);
    let r = repo.db().relation_id("R").unwrap();
    let before = repo.db().visible_count(r, UpdateId::OMNISCIENT);

    repo.insert_constants("T", &["Niagara Falls", "ABC Tours", "Toronto"], &mut user).unwrap();

    let reviews = repo.db().scan(r, UpdateId::OMNISCIENT);
    assert_eq!(reviews.len(), before + 1, "σ3 generated exactly one review");
    let generated = reviews
        .iter()
        .find(|(_, d)| d[0] == Value::constant("ABC Tours"))
        .expect("the generated review names the new company");
    assert_eq!(generated.1[1], Value::constant("Niagara Falls"));
    assert!(generated.1[2].is_null(), "the review itself is a labeled null (Example 1.1)");
    assert!(repo.is_consistent());
}

#[test]
fn null_replacement_keeps_the_repository_consistent() {
    let mut repo = figure2();
    let mut user = RandomResolver::seeded(2);
    repo.insert_constants("T", &["Niagara Falls", "ABC Tours", "Toronto"], &mut user).unwrap();
    let r = repo.db().relation_id("R").unwrap();
    let null = repo
        .db()
        .scan(r, UpdateId::OMNISCIENT)
        .into_iter()
        .flat_map(|(_, d)| youtopia::storage::nulls_of(&d))
        .next()
        .expect("Example 1.1 leaves a labeled null behind");

    repo.replace_null(null, Value::constant("Breathtaking"), &mut user).unwrap();
    assert!(repo.is_consistent());
    assert!(
        repo.db().null_occurrences(null, UpdateId::OMNISCIENT).is_empty(),
        "all occurrences of the null are gone"
    );
}

#[test]
fn example_2_3_deleting_a_review_cascades_through_a_user_choice() {
    let mut repo = figure2();
    let r = repo.db().relation_id("R").unwrap();
    let t = repo.db().relation_id("T").unwrap();
    let a = repo.db().relation_id("A").unwrap();
    let review = repo
        .db()
        .scan(r, UpdateId::OMNISCIENT)
        .into_iter()
        .find(|(_, d)| d[0] == Value::constant("XYZ"))
        .map(|(id, _)| id)
        .unwrap();
    let tour = repo
        .db()
        .scan(t, UpdateId::OMNISCIENT)
        .into_iter()
        .find(|(_, d)| d[1] == Value::constant("XYZ"))
        .map(|(id, _)| id)
        .unwrap();

    // The user decides to delete the Tours tuple (one of the two legal
    // choices of Example 2.3).
    let mut user = ScriptedResolver::new([FrontierDecision::Negative(vec![tour])]);
    let report = repo.delete("R", review, &mut user).unwrap();
    assert!(report.terminated);
    assert_eq!(report.stats.frontier_ops, 1, "the backward chase asked exactly once");

    assert!(repo.db().visible(t, tour, UpdateId::OMNISCIENT).is_none(), "the tour is gone");
    assert_eq!(repo.db().visible_count(a, UpdateId::OMNISCIENT), 2, "both attractions survive");
    assert!(repo.is_consistent());
    assert!(find_violations(&repo.db().snapshot(UpdateId::OMNISCIENT), repo.mappings()).is_empty());
}

#[test]
fn example_3_1_concurrent_schedule_is_corrected_for_every_tracker() {
    for tracker in [TrackerKind::Naive, TrackerKind::Coarse, TrackerKind::Precise] {
        let repo = figure2();
        let (db, mappings) = repo.into_parts();
        let r = db.relation_id("R").unwrap();
        let v = db.relation_id("V").unwrap();
        let t = db.relation_id("T").unwrap();
        let review = db
            .scan(r, UpdateId::OMNISCIENT)
            .into_iter()
            .find(|(_, d)| d[0] == Value::constant("XYZ"))
            .map(|(id, _)| id)
            .unwrap();
        let tour = db
            .scan(t, UpdateId::OMNISCIENT)
            .into_iter()
            .find(|(_, d)| d[1] == Value::constant("XYZ"))
            .map(|(id, _)| id)
            .unwrap();

        let ops = vec![
            InitialOp::Delete { relation: r, tuple: review },
            InitialOp::Insert {
                relation: v,
                values: vec![Value::constant("Syracuse"), Value::constant("Math Conf")],
            },
        ];
        let config = SchedulerConfig::with_tracker(tracker).with_frontier_delay_rounds(3);
        let mut run = ConcurrentRun::new(db, mappings, ops, 100, config);
        let mut user = ScriptedResolver::new([FrontierDecision::Negative(vec![tour])]);
        let metrics = run.run(&mut user).unwrap();
        assert!(metrics.aborts >= 1, "{tracker}: u2 read prematurely and must abort");

        let (final_db, mappings, _) = run.into_parts();
        assert!(satisfies_all(&final_db.snapshot(UpdateId::OMNISCIENT), &mappings));
        // The premature E(Math Conf, Geneva Winery) must not survive, because
        // the tour it was based on was discontinued.
        let e = final_db.relation_id("E").unwrap();
        let premature = final_db
            .scan(e, UpdateId::OMNISCIENT)
            .into_iter()
            .filter(|(_, d)| d[0] == Value::constant("Math Conf"))
            .count();
        assert_eq!(premature, 0, "{tracker}: the interference of Example 3.1 must be repaired");
    }
}

#[test]
fn genealogy_cycle_is_controlled_by_cooperation() {
    let mut db = Database::new();
    db.add_relation("Person", ["name"]).unwrap();
    db.add_relation("Father", ["child", "father"]).unwrap();
    let mut mappings = MappingSet::new();
    mappings
        .add_parsed(db.catalog(), "ancestry: Person(x) -> exists y. Father(x, y) & Person(y)")
        .unwrap();

    // The classical chase (always expand) diverges…
    let mut classical = UpdateExchange::with_builder(
        db.clone(),
        mappings.clone(),
        youtopia::EngineBuilder::new().max_steps_per_update(300),
    );
    assert!(matches!(
        classical.insert_constants("Person", &["John"], &mut ExpandResolver),
        Err(ChaseError::StepLimitExceeded { .. })
    ));

    // …while a cooperating user terminates it by unifying sooner or later.
    let mut cooperative = UpdateExchange::new(db, mappings);
    let mut user = RandomResolver::seeded(4);
    cooperative.insert_constants("Person", &["John"], &mut user).unwrap();
    assert!(cooperative.is_consistent());
    let person = cooperative.db().relation_id("Person").unwrap();
    assert!(cooperative.db().visible_count(person, UpdateId::OMNISCIENT) >= 1);
}

#[test]
fn frontier_requests_surface_provenance_to_the_user() {
    // The positive frontier request carries the violation (mapping + witness),
    // which is the provenance a user interface would display.
    let repo = figure2();
    let (mut db, mappings) = repo.into_parts();
    let t = db.relation_id("T").unwrap();
    let x = db.fresh_null();
    let mut exec = UpdateExecution::new(
        UpdateId(50),
        InitialOp::Insert {
            relation: t,
            values: vec![Value::constant("Geneva Winery"), Value::Null(x), Value::constant("Rome")],
        },
    );
    let out = exec.step(&mut db, &mappings).unwrap();
    assert_eq!(out.state, UpdateState::AwaitingFrontier);
    let request = out.frontier_request.unwrap();
    let FrontierRequest::Positive(pf) = request else { panic!("σ3 produces a positive frontier") };
    assert_eq!(mappings.get(pf.mapping).name, "sigma3");
    assert_eq!(pf.violation.witness.len(), 2, "witness = {{A row, T row}}");
    assert_eq!(pf.tuples.len(), 1);
    assert!(!pf.tuples[0].candidates.is_empty(), "the existing review is a unification candidate");

    // Unifying resolves the unknown company to XYZ everywhere.
    let target = pf.tuples[0].candidates[0].0;
    exec.resolve_frontier(
        &mappings,
        FrontierDecision::Positive(vec![PositiveAction::Unify { with: target }]),
    )
    .unwrap();
    while !exec.is_terminated() {
        exec.step(&mut db, &mappings).unwrap();
    }
    assert!(db.null_occurrences(x, UpdateId::OMNISCIENT).is_empty());
    assert!(satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), &mappings));
}
