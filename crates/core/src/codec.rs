//! Durable byte encoding for the core vocabulary: initial operations,
//! frontier decisions and terminal chase errors.
//!
//! These are the payload fragments the `ExchangeEngine`'s write-ahead log and
//! snapshots are built from (see `youtopia_storage::wal` for the framing and
//! the [`ByteWriter`] / [`ByteReader`] codec itself). Everything here is a
//! plain tagged little-endian encoding; constants travel as strings because
//! the symbol interner is process-global.

use youtopia_storage::wal::{decode_value, encode_value, ByteReader, ByteWriter, WalError};
use youtopia_storage::{NullId, RelationId, TupleId, UpdateId};

use crate::error::ChaseError;
use crate::frontier::{FrontierDecision, PositiveAction};
use crate::update::InitialOp;

fn corrupt(reason: impl Into<String>) -> WalError {
    WalError::Corrupt { offset: 0, reason: reason.into() }
}

/// Encodes an [`InitialOp`].
pub fn encode_initial_op(op: &InitialOp, out: &mut ByteWriter) {
    match op {
        InitialOp::Insert { relation, values } => {
            out.put_u8(0);
            out.put_u32(relation.0);
            out.put_u32(values.len() as u32);
            for value in values {
                encode_value(value, out);
            }
        }
        InitialOp::Delete { relation, tuple } => {
            out.put_u8(1);
            out.put_u32(relation.0);
            out.put_u64(tuple.0);
        }
        InitialOp::NullReplace { null, replacement } => {
            out.put_u8(2);
            out.put_u64(null.0);
            encode_value(replacement, out);
        }
    }
}

/// Decodes an [`InitialOp`] written by [`encode_initial_op`].
pub fn decode_initial_op(r: &mut ByteReader<'_>) -> Result<InitialOp, WalError> {
    match r.take_u8()? {
        0 => {
            let relation = RelationId(r.take_u32()?);
            let count = r.take_u32()?;
            let mut values = Vec::with_capacity(count as usize);
            for _ in 0..count {
                values.push(decode_value(r)?);
            }
            Ok(InitialOp::Insert { relation, values })
        }
        1 => Ok(InitialOp::Delete {
            relation: RelationId(r.take_u32()?),
            tuple: TupleId(r.take_u64()?),
        }),
        2 => Ok(InitialOp::NullReplace {
            null: NullId(r.take_u64()?),
            replacement: decode_value(r)?,
        }),
        tag => Err(corrupt(format!("unknown initial-op tag {tag}"))),
    }
}

/// Encodes a [`FrontierDecision`].
pub fn encode_decision(decision: &FrontierDecision, out: &mut ByteWriter) {
    match decision {
        FrontierDecision::Positive(actions) => {
            out.put_u8(0);
            out.put_u32(actions.len() as u32);
            for action in actions {
                match action {
                    PositiveAction::Expand => out.put_u8(0),
                    PositiveAction::Unify { with } => {
                        out.put_u8(1);
                        out.put_u64(with.0);
                    }
                }
            }
        }
        FrontierDecision::Negative(tuples) => {
            out.put_u8(1);
            out.put_u32(tuples.len() as u32);
            for tuple in tuples {
                out.put_u64(tuple.0);
            }
        }
    }
}

/// Decodes a [`FrontierDecision`] written by [`encode_decision`].
pub fn decode_decision(r: &mut ByteReader<'_>) -> Result<FrontierDecision, WalError> {
    match r.take_u8()? {
        0 => {
            let count = r.take_u32()?;
            let mut actions = Vec::with_capacity(count as usize);
            for _ in 0..count {
                actions.push(match r.take_u8()? {
                    0 => PositiveAction::Expand,
                    1 => PositiveAction::Unify { with: TupleId(r.take_u64()?) },
                    tag => return Err(corrupt(format!("unknown positive-action tag {tag}"))),
                });
            }
            Ok(FrontierDecision::Positive(actions))
        }
        1 => {
            let count = r.take_u32()?;
            let mut tuples = Vec::with_capacity(count as usize);
            for _ in 0..count {
                tuples.push(TupleId(r.take_u64()?));
            }
            Ok(FrontierDecision::Negative(tuples))
        }
        tag => Err(corrupt(format!("unknown decision tag {tag}"))),
    }
}

/// Encodes the terminal error of a failed execution for snapshots.
///
/// [`ChaseError::StepLimitExceeded`] — the only error a healthy engine
/// produces — roundtrips exactly; other variants are preserved as their
/// display string (wrapped in [`ChaseError::InvalidDecision`] on decode),
/// which is enough for the diagnostics they feed.
pub fn encode_chase_error(error: &ChaseError, out: &mut ByteWriter) {
    match error {
        ChaseError::StepLimitExceeded { update, limit } => {
            out.put_u8(0);
            out.put_u64(update.0);
            out.put_u64(*limit as u64);
        }
        other => {
            out.put_u8(1);
            out.put_str(&other.to_string());
        }
    }
}

/// Decodes an error written by [`encode_chase_error`].
pub fn decode_chase_error(r: &mut ByteReader<'_>) -> Result<ChaseError, WalError> {
    match r.take_u8()? {
        0 => Ok(ChaseError::StepLimitExceeded {
            update: UpdateId(r.take_u64()?),
            limit: r.take_u64()? as usize,
        }),
        1 => Ok(ChaseError::InvalidDecision(r.take_str()?)),
        tag => Err(corrupt(format!("unknown chase-error tag {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::Value;

    fn roundtrip_op(op: InitialOp) {
        let mut w = ByteWriter::new();
        encode_initial_op(&op, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(decode_initial_op(&mut r).unwrap(), op);
        assert!(r.is_done());
    }

    fn roundtrip_decision(d: FrontierDecision) {
        let mut w = ByteWriter::new();
        encode_decision(&d, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(decode_decision(&mut r).unwrap(), d);
        assert!(r.is_done());
    }

    #[test]
    fn initial_ops_roundtrip() {
        roundtrip_op(InitialOp::Insert {
            relation: RelationId(3),
            values: vec![Value::constant("NYC"), Value::Null(NullId(17))],
        });
        roundtrip_op(InitialOp::Delete { relation: RelationId(0), tuple: TupleId(99) });
        roundtrip_op(InitialOp::NullReplace {
            null: NullId(5),
            replacement: Value::constant("Ithaca"),
        });
        roundtrip_op(InitialOp::NullReplace {
            null: NullId(5),
            replacement: Value::Null(NullId(6)),
        });
    }

    #[test]
    fn decisions_roundtrip() {
        roundtrip_decision(FrontierDecision::Positive(vec![
            PositiveAction::Expand,
            PositiveAction::Unify { with: TupleId(12) },
        ]));
        roundtrip_decision(FrontierDecision::Positive(vec![]));
        roundtrip_decision(FrontierDecision::Negative(vec![TupleId(1), TupleId(2)]));
    }

    #[test]
    fn chase_errors_roundtrip() {
        let mut w = ByteWriter::new();
        encode_chase_error(
            &ChaseError::StepLimitExceeded { update: UpdateId(7), limit: 1000 },
            &mut w,
        );
        let bytes = w.into_bytes();
        let decoded = decode_chase_error(&mut ByteReader::new(&bytes)).unwrap();
        assert!(matches!(
            decoded,
            ChaseError::StepLimitExceeded { update: UpdateId(7), limit: 1000 }
        ));

        let mut w = ByteWriter::new();
        encode_chase_error(&ChaseError::NotReady(UpdateId(3)), &mut w);
        let bytes = w.into_bytes();
        let decoded = decode_chase_error(&mut ByteReader::new(&bytes)).unwrap();
        assert!(decoded.to_string().contains("u3"), "display string preserved: {decoded}");
    }

    #[test]
    fn garbage_tags_are_rejected() {
        let mut r = ByteReader::new(&[9]);
        assert!(decode_initial_op(&mut r).is_err());
        let mut r = ByteReader::new(&[9]);
        assert!(decode_decision(&mut r).is_err());
    }
}
