//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use youtopia_storage::{
    is_more_specific, specialization, substitute_nulls, Database, NullId, UpdateId, Value, Write,
};

/// Strategy producing a value: constant from a small pool, or a labeled null.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u32..8).prop_map(|i| Value::constant(&format!("c{i}"))),
        (0u64..6).prop_map(|i| Value::Null(NullId(i))),
    ]
}

fn tuple_strategy(arity: usize) -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(value_strategy(), arity)
}

proptest! {
    /// Specificity is reflexive.
    #[test]
    fn specificity_reflexive(t in tuple_strategy(4)) {
        prop_assert!(is_more_specific(&t, &t));
    }

    /// Specificity is transitive: a ≤ b and b ≤ c implies a ≤ c
    /// (where `x ≤ y` means "x is more specific than y").
    #[test]
    fn specificity_transitive(a in tuple_strategy(3), b in tuple_strategy(3), c in tuple_strategy(3)) {
        if is_more_specific(&a, &b) && is_more_specific(&b, &c) {
            prop_assert!(is_more_specific(&a, &c));
        }
    }

    /// Applying the witnessing substitution of `specialization(general, specific)`
    /// to `general` yields exactly `specific`.
    #[test]
    fn specialization_substitution_is_a_witness(general in tuple_strategy(4), specific in tuple_strategy(4)) {
        if let Some(subst) = specialization(&general, &specific) {
            let (rewritten, _) = substitute_nulls(&general, &subst);
            prop_assert_eq!(rewritten, specific);
        }
    }

    /// A ground tuple (no nulls) is more specific than any tuple it specialises,
    /// and nothing other than an equal tuple is more general than it while also
    /// being ground.
    #[test]
    fn ground_tuples_are_maximally_specific(t in tuple_strategy(3)) {
        let ground: Vec<Value> = t
            .iter()
            .map(|v| match v {
                Value::Null(n) => Value::constant(&format!("g{}", n.0)),
                c => *c,
            })
            .collect();
        // Equal nulls receive equal constants, so the grounding is always a
        // consistent specialisation witness.
        prop_assert!(is_more_specific(&ground, &t));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Visibility: a tuple written by update `w` is visible to reader `r` iff
    /// `w <= r` (absent interfering writes), and rollback removes it for all.
    #[test]
    fn visibility_and_rollback(writer in 1u64..20, reader in 1u64..20, vals in tuple_strategy(2)) {
        let mut db = Database::new();
        let rel = db.add_relation("R", ["a", "b"]).unwrap();
        db.apply(&Write::Insert { relation: rel, values: vals }, UpdateId(writer)).unwrap();
        let visible = db.visible_count(rel, UpdateId(reader)) == 1;
        prop_assert_eq!(visible, writer <= reader);
        db.rollback_update(UpdateId(writer));
        prop_assert_eq!(db.visible_count(rel, UpdateId::OMNISCIENT), 0);
    }

    /// Null-replacement removes every visible occurrence of the null and never
    /// changes the number of visible tuples.
    #[test]
    fn null_replacement_is_global(tuples in prop::collection::vec(tuple_strategy(3), 1..10), null in 0u64..6) {
        let mut db = Database::new();
        let rel = db.add_relation("R", ["a", "b", "c"]).unwrap();
        for t in &tuples {
            db.apply(&Write::Insert { relation: rel, values: t.clone() }, UpdateId(1)).unwrap();
        }
        let before = db.visible_count(rel, UpdateId::OMNISCIENT);
        db.apply(
            &Write::NullReplace { null: NullId(null), replacement: Value::constant("REPL") },
            UpdateId(1),
        )
        .unwrap();
        prop_assert_eq!(db.visible_count(rel, UpdateId::OMNISCIENT), before);
        prop_assert!(db.null_occurrences(NullId(null), UpdateId::OMNISCIENT).is_empty());
        for (_, data) in db.scan(rel, UpdateId::OMNISCIENT) {
            prop_assert!(!data.contains(&Value::Null(NullId(null))));
        }
    }

    /// Candidate (index) lookups agree with a full scan filter.
    #[test]
    fn candidates_agree_with_scan(tuples in prop::collection::vec(tuple_strategy(2), 0..12), probe in value_strategy(), col in 0usize..2) {
        let mut db = Database::new();
        let rel = db.add_relation("R", ["a", "b"]).unwrap();
        for t in &tuples {
            db.apply(&Write::Insert { relation: rel, values: t.clone() }, UpdateId(1)).unwrap();
        }
        let reader = UpdateId::OMNISCIENT;
        let mut from_scan: Vec<_> = db
            .scan(rel, reader)
            .into_iter()
            .filter(|(_, data)| data[col] == probe)
            .map(|(id, _)| id)
            .collect();
        let mut from_index: Vec<_> = db.candidates(rel, col, probe, reader).into_iter().map(|(id, _)| id).collect();
        from_scan.sort();
        from_index.sort();
        prop_assert_eq!(from_scan, from_index);
    }
}

/// `Database` (and everything reachable from a shared borrow of it — the
/// memoising caches included) must stay `Send + Sync`: the parallel chase
/// scheduler shares one database across worker threads behind an `RwLock`,
/// and the read path is exercised concurrently under the read lock.
#[test]
fn database_and_views_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<youtopia_storage::VersionStore>();
    assert_send_sync::<youtopia_storage::Snapshot<'static>>();
}

/// Real-contention audit of the per-relation memo caches: many threads hammer
/// `scan` / `visible_count` / `candidates` / `fresh_null` on one shared
/// database at different reader numbers (so they race on inserting into the
/// `Mutex`-guarded visible-set and count caches) and every answer must match
/// the single-threaded truth computed up front.
#[test]
fn memo_caches_answer_correctly_under_contention() {
    let mut db = Database::new();
    let rel = db.add_relation("R", ["a", "b"]).unwrap();
    for i in 0..200u64 {
        let writer = UpdateId(1 + (i % 10));
        db.apply(
            &Write::Insert {
                relation: rel,
                values: vec![Value::constant(&format!("k{}", i % 7)), Value::constant("v")],
            },
            writer,
        )
        .unwrap();
    }
    // Single-threaded truth per reader, computed before any concurrency.
    let readers: Vec<UpdateId> = (0..12u64).map(UpdateId).collect();
    let expected_counts: Vec<usize> = readers.iter().map(|r| db.scan(rel, *r).len()).collect();
    let nulls_before = db.null_counter();

    let db = &db;
    std::thread::scope(|scope| {
        for t in 0..4 {
            let readers = &readers;
            let expected_counts = &expected_counts;
            scope.spawn(move || {
                for round in 0..50 {
                    let reader = readers[(t + round) % readers.len()];
                    let expect = expected_counts[(t + round) % readers.len()];
                    assert_eq!(db.visible_count(rel, reader), expect);
                    assert_eq!(db.scan(rel, reader).len(), expect);
                    let probe = Value::constant(&format!("k{}", round % 7));
                    for (_, data) in db.candidates(rel, 0, probe, reader) {
                        assert_eq!(data[0], probe);
                    }
                    // Null allocation through a shared borrow must never
                    // hand out duplicates (checked via the total below).
                    db.fresh_null();
                }
            });
        }
    });
    assert_eq!(db.null_counter(), nulls_before + 4 * 50, "every fresh_null must be distinct");
}
