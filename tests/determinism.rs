//! Determinism guarantees the whole experimental methodology rests on: a
//! fixed seed must reproduce the *exact* same exchange decisions, database
//! states, counters, and reports, run after run.
//!
//! One deliberate carve-out: `RunMetrics::wall_time` (and the derived
//! `per_update_time_secs` / `wall_time_secs` / `total_seconds` fields) are
//! wall-clock measurements and can never be byte-identical across runs. The
//! assertions below therefore normalise the timing fields to zero and demand
//! byte-identical equality on everything else.

use std::time::Duration;

use youtopia::workload::{build_fixture, run_single, to_csv, ExperimentResults};
use youtopia::{
    run_experiment, ExperimentConfig, LatencySummary, RandomResolver, RunMetrics, TrackerKind,
    UpdateExchange, UpdateId, WorkloadKind,
};

/// Replaces every wall-clock quantity in `metrics` with zero.
fn scrub_metrics_time(mut metrics: RunMetrics) -> RunMetrics {
    metrics.wall_time = Duration::ZERO;
    metrics
}

/// Replaces every wall-clock quantity in `results` with zero. The latency
/// percentiles are wall-clock too (per-update times in seconds), so they are
/// scrubbed on the same grounds as `per_update_time_secs`.
fn scrub_results_time(mut results: ExperimentResults) -> ExperimentResults {
    results.total_seconds = 0.0;
    for point in &mut results.points {
        point.avg.wall_time_secs = 0.0;
        point.avg.per_update_time_secs = 0.0;
        point.latency = LatencySummary::default();
    }
    results
}

/// Runs the paper's quickstart scenario and returns a byte-exact rendering of
/// the final database contents.
fn quickstart_state(seed: u64) -> String {
    let mut db = youtopia::Database::new();
    db.add_relation("C", ["city"]).unwrap();
    db.add_relation("S", ["code", "location", "city_served"]).unwrap();
    let mut mappings = youtopia::MappingSet::new();
    mappings.add_parsed(db.catalog(), "sigma1: C(c) -> exists a, l. S(a, l, c)").unwrap();

    let mut exchange = UpdateExchange::new(db, mappings);
    let mut user = RandomResolver::seeded(seed);
    for city in ["Ithaca", "Syracuse", "Geneva", "Ithaca"] {
        exchange.insert_constants("C", &[city], &mut user).unwrap();
    }
    assert!(exchange.is_consistent());

    let db = exchange.db();
    let mut rendered = String::new();
    for name in ["C", "S"] {
        let rel = db.relation_id(name).unwrap();
        rendered.push_str(&format!("{name}: {:?}\n", db.scan(rel, UpdateId::OMNISCIENT)));
    }
    rendered
}

#[test]
fn seeded_exchange_reproduces_identical_database_states() {
    let first = quickstart_state(42);
    let second = quickstart_state(42);
    assert_eq!(first, second, "same seed must reproduce the same database byte-for-byte");
}

#[test]
fn run_single_is_deterministic_modulo_wall_clock() {
    let config = ExperimentConfig::tiny();
    let fixture = build_fixture(&config).expect("fixture builds");
    let mappings = config.mapping_counts[config.mapping_counts.len() / 2];
    for tracker in [TrackerKind::Naive, TrackerKind::Coarse, TrackerKind::Precise] {
        let a = run_single(&fixture, &config, WorkloadKind::Mixed, mappings, tracker, 1).unwrap();
        let b = run_single(&fixture, &config, WorkloadKind::Mixed, mappings, tracker, 1).unwrap();
        assert_eq!(
            scrub_metrics_time(a),
            scrub_metrics_time(b),
            "run_single must be deterministic under tracker {tracker:?}"
        );
    }
}

#[test]
fn run_experiment_reports_are_byte_identical_modulo_wall_clock() {
    let mut config = ExperimentConfig::tiny();
    config.runs = 2;
    let trackers = [TrackerKind::Coarse, TrackerKind::Precise, TrackerKind::Naive];
    let first = scrub_results_time(
        run_experiment(&config, WorkloadKind::AllInserts, &trackers, None).unwrap(),
    );
    let second = scrub_results_time(
        run_experiment(&config, WorkloadKind::AllInserts, &trackers, None).unwrap(),
    );

    assert_eq!(first.points, second.points, "experiment points must be identical");
    assert_eq!(
        to_csv(&first),
        to_csv(&second),
        "CSV reports must be byte-identical once timing columns are scrubbed"
    );
}

#[test]
fn parallel_sweep_is_byte_identical_to_the_serial_sweep() {
    // The whole point of assigning each grid cell its own derived seed: the
    // thread count must not be observable in the results. Run the same
    // experiment single-threaded and with four workers and demand identical
    // points and CSV (modulo the wall-clock fields, which are scrubbed).
    let mut config = ExperimentConfig::tiny();
    config.runs = 2;
    let trackers = [TrackerKind::Coarse, TrackerKind::Precise];

    let mut serial_config = config.clone();
    serial_config.worker_threads = 1;
    let mut parallel_config = config.clone();
    parallel_config.worker_threads = 4;

    for kind in [WorkloadKind::Mixed, WorkloadKind::NullReplacementHeavy] {
        let serial =
            scrub_results_time(run_experiment(&serial_config, kind, &trackers, None).unwrap());
        let parallel =
            scrub_results_time(run_experiment(&parallel_config, kind, &trackers, None).unwrap());
        assert_eq!(
            serial.points, parallel.points,
            "{kind}: parallel sweep must reproduce the serial points exactly"
        );
        assert_eq!(
            to_csv(&serial),
            to_csv(&parallel),
            "{kind}: CSV reports must be byte-identical across thread counts"
        );
    }
}

#[test]
fn parallel_chase_scheduler_sweep_is_byte_identical_across_worker_counts() {
    // The multi-threaded chase scheduler in deterministic mode commits steps
    // in the reference serialisation order, so the *full experiment sweep*
    // must be byte-identical whether each run uses the single-threaded
    // ConcurrentRun (chase_workers = 0) or a deterministic ParallelRun with
    // 1, 2 or 4 workers — the acceptance bar of the parallel scheduler.
    let mut config = ExperimentConfig::tiny();
    config.runs = 2;
    config.worker_threads = 1; // isolate the chase scheduler from the sweep fan-out
    let trackers = [TrackerKind::Coarse, TrackerKind::Precise];

    for kind in [WorkloadKind::Mixed, WorkloadKind::DeepCascade] {
        let mut reference_config = config.clone();
        reference_config.chase_workers = 0;
        let reference =
            scrub_results_time(run_experiment(&reference_config, kind, &trackers, None).unwrap());
        for chase_workers in [1usize, 2, 4] {
            let mut parallel_config = config.clone();
            parallel_config.chase_workers = chase_workers;
            let parallel = scrub_results_time(
                run_experiment(&parallel_config, kind, &trackers, None).unwrap(),
            );
            assert_eq!(
                reference.points, parallel.points,
                "{kind}: {chase_workers} chase workers must reproduce the reference points exactly"
            );
            assert_eq!(
                to_csv(&reference),
                to_csv(&parallel),
                "{kind}: CSV reports must be byte-identical across chase worker counts"
            );
        }
    }
}

#[test]
fn distinct_seeds_actually_change_the_stream() {
    // Guards against a stub RNG that ignores its seed: the two seeds must
    // diverge somewhere in the quickstart scenario's frontier decisions, or —
    // if this tiny scenario happens to make identical choices — at least the
    // resolver streams must differ.
    if quickstart_state(42) != quickstart_state(43) {
        return;
    }
    let config_a = ExperimentConfig::tiny();
    let config_b = config_a.with_seed(config_a.seed + 1);
    let a = build_fixture(&config_a).unwrap();
    let b = build_fixture(&config_b).unwrap();
    assert_ne!(
        format!("{:?}", a.initial_data),
        format!("{:?}", b.initial_data),
        "different seeds should generate different initial data"
    );
}
