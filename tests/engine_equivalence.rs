//! Differential and live-session tests for the [`ExchangeEngine`] redesign.
//!
//! * **Batch equivalence** — a workload submitted as one batch to an idle
//!   deterministic engine must be indistinguishable from the single-threaded
//!   [`ConcurrentRun`] reference: the same final database rendering, the same
//!   [`RunMetrics`] (modulo wall clock), the same per-update statistics and
//!   therefore the same abort *sets* — across trackers, scheduling policies,
//!   chase modes and 1/2/4 workers. This pins the submit/poll/answer pipeline
//!   (open-world slots, token-based frontier resolution, the pump) to the
//!   pre-redesign semantics.
//! * **Staggered determinism** — `ArrivalProcess::Staggered` waves through
//!   the live engine are byte-identical at 0/1/2/4 chase workers.
//! * **Live session** — an update submitted *while* the engine is chasing
//!   earlier ones (one of them blocked on a frontier) commits correctly after
//!   the frontier is answered through [`ExchangeEngine::answer`], and the
//!   admission cap yields [`SubmitError::Saturated`] backpressure.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use youtopia::chase::ChaseMode;
use youtopia::concurrency::{
    EngineConfig, RunMetrics, SchedulerConfig, SchedulingPolicy, SpeculationMode,
};
use youtopia::mappings::satisfies_all;
use youtopia::workload::{
    build_fixture, generate_workload, run_single, ArrivalProcess, ExperimentConfig, WorkloadKind,
};
use youtopia::{
    ClientId, ConcurrentRun, Database, EscalationPolicy, ExchangeEngine, FrontierDecision,
    FrontierRequest, InitialOp, MappingSet, Priority, RandomResolver, ResolverPump, SubmitError,
    TrackerKind, UpdateId, UpdateStatus, Value,
};

/// Strips the wall-clock field and the speculation counters so metrics
/// compare byte-exactly: how many steps were *pre-executed* is a scheduling
/// artefact (it depends on worker timing), but everything those steps
/// committed — steps, changes, aborts, conflict requests — must be identical
/// to the reference.
fn scrub(mut m: RunMetrics) -> RunMetrics {
    m.wall_time = std::time::Duration::ZERO;
    m.speculations_started = 0;
    m.speculations_committed = 0;
    m.speculations_discarded = 0;
    m
}

/// Byte-exact rendering of every relation's visible contents plus the null
/// counter — the "final database state" the equivalence is pinned on.
fn render(db: &Database) -> String {
    let mut out = String::new();
    for relation in db.catalog().relation_ids() {
        out.push_str(&format!("{relation:?}: {:?}\n", db.scan(relation, UpdateId::OMNISCIENT)));
    }
    out.push_str(&format!("nulls: {}\n", db.null_counter()));
    out
}

/// Runs one generated workload through the reference scheduler and through a
/// batch-submitted engine at 1/2/4 workers, asserting byte equality.
fn engine_matches_reference(
    seed: u64,
    tracker: TrackerKind,
    kind: WorkloadKind,
    policy: SchedulingPolicy,
    chase_mode: ChaseMode,
) {
    let mut config = ExperimentConfig::tiny();
    config.seed = seed;
    let fixture = build_fixture(&config).expect("fixture builds");
    let ops: Vec<InitialOp> = generate_workload(
        &config,
        &fixture.schema,
        &fixture.initial_db,
        &fixture.mappings,
        kind,
        seed,
    )
    .into_iter()
    .take(16)
    .collect();
    let first_number = config.initial_tuples as u64 + 1_000;
    let scheduler = SchedulerConfig::with_tracker(tracker)
        .with_policy(policy)
        .with_chase_mode(chase_mode)
        .with_frontier_delay_rounds(3);

    let mut reference = ConcurrentRun::new(
        fixture.initial_db.clone(),
        fixture.mappings.clone(),
        ops.clone(),
        first_number,
        scheduler,
    );
    let ref_metrics = reference.run(&mut RandomResolver::seeded(seed ^ 0xE61E)).unwrap();
    let ref_stats = reference.update_stats();
    let (ref_db, ref_mappings, _) = reference.into_parts();
    assert!(satisfies_all(&ref_db.snapshot(UpdateId::OMNISCIENT), &ref_mappings));
    let ref_abort_set: BTreeSet<UpdateId> =
        ref_stats.iter().filter(|(_, s)| s.restarts > 0).map(|(id, _)| *id).collect();

    for speculation in [SpeculationMode::Off, SpeculationMode::Eager] {
        for workers in [1usize, 2, 4] {
            let engine = ExchangeEngine::new(
                fixture.initial_db.clone(),
                fixture.mappings.clone(),
                EngineConfig::default()
                    .with_scheduler(scheduler.with_workers(workers).with_speculation(speculation))
                    .with_first_update_number(first_number),
            );
            let handles = engine.submit_batch(ops.clone()).expect("uncapped submission");
            let mut resolver = RandomResolver::seeded(seed ^ 0xE61E);
            ResolverPump::new(&engine, &mut resolver).run_until_quiescent().unwrap();
            let label = format!(
                "seed {seed}, {tracker}, {kind}, {policy:?}, {chase_mode:?}, \
                 {workers} workers, {speculation:?}"
            );
            for handle in &handles {
                assert_eq!(handle.status(), UpdateStatus::Terminated, "{label}: {:?}", handle.id());
                assert!(handle.report().expect("terminated").terminated, "{label}");
            }
            let stats = engine.update_stats();
            assert_eq!(stats, ref_stats, "{label}: per-update stats");
            let abort_set: BTreeSet<UpdateId> =
                stats.iter().filter(|(_, s)| s.restarts > 0).map(|(id, _)| *id).collect();
            assert_eq!(abort_set, ref_abort_set, "{label}: abort set");
            let (db, _, metrics) = engine.shutdown();
            // Speculation bookkeeping must balance, and a non-speculative
            // configuration (mode off, or a single worker that always owns
            // the sequencer) must not speculate at all.
            assert_eq!(
                metrics.speculations_started,
                metrics.speculations_committed + metrics.speculations_discarded,
                "{label}: speculation counters balance"
            );
            if speculation == SpeculationMode::Off || workers < 2 {
                assert_eq!(metrics.speculations_started, 0, "{label}: no speculation");
            }
            assert_eq!(scrub(metrics), scrub(ref_metrics.clone()), "{label}: metrics");
            assert_eq!(render(&db), render(&ref_db), "{label}: final database state");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// PRECISE over the mixed workload (inserts + deletes, forward and
    /// backward repairs) — the workhorse combination.
    #[test]
    fn precise_mixed_batches_match_the_reference(seed in 0u64..10_000) {
        engine_matches_reference(
            seed,
            TrackerKind::Precise,
            WorkloadKind::Mixed,
            SchedulingPolicy::StepRoundRobin,
            ChaseMode::Incremental,
        );
    }

    /// COARSE over deep cascades: long violation queues cross many sequencer
    /// hand-offs and pump round-trips.
    #[test]
    fn coarse_deep_cascade_batches_match_the_reference(seed in 0u64..10_000) {
        engine_matches_reference(
            seed,
            TrackerKind::Coarse,
            WorkloadKind::DeepCascade,
            SchedulingPolicy::StepRoundRobin,
            ChaseMode::Incremental,
        );
    }

    /// NAIVE + the stratum policy + the reference chase mode, over the skewed
    /// hot-relation workload: the engine must be agnostic of all three knobs.
    #[test]
    fn naive_stratum_full_recheck_batches_match_the_reference(seed in 0u64..10_000) {
        engine_matches_reference(
            seed,
            TrackerKind::Naive,
            WorkloadKind::Skewed,
            SchedulingPolicy::StratumRoundRobin,
            ChaseMode::FullRecheck,
        );
    }
}

/// Staggered arrivals (closed-loop waves through the live engine) are
/// deterministic across chase-worker counts, including the `chase_workers=0`
/// spelling (which staggers through a one-worker engine).
#[test]
fn staggered_arrivals_are_deterministic_across_worker_counts() {
    let mut config = ExperimentConfig::tiny();
    config.arrival = ArrivalProcess::Staggered { wave: 3 };
    let fixture = build_fixture(&config).expect("fixture builds");
    let mapping_count = *config.mapping_counts.last().unwrap();

    let run_with = |chase_workers: usize| {
        let mut config = config.clone();
        config.chase_workers = chase_workers;
        // The fixture only depends on generator parameters, but rebuild the
        // run from the shared one to keep this cheap and identical.
        scrub(
            run_single(
                &fixture,
                &config,
                WorkloadKind::Mixed,
                mapping_count,
                TrackerKind::Precise,
                1,
            )
            .unwrap(),
        )
    };
    let reference = run_with(0);
    assert!(reference.steps > 0 && reference.workload_size > 0);
    for chase_workers in [1usize, 2, 4] {
        assert_eq!(
            run_with(chase_workers),
            reference,
            "staggered arrival must be byte-identical at {chase_workers} chase workers"
        );
    }
}

/// The Figure 2 fragment of Example 3.1 — the live-session fixture.
fn example_db() -> (Database, MappingSet) {
    let mut db = Database::new();
    db.add_relation("A", ["location", "name"]).unwrap();
    db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
    db.add_relation("R", ["company", "attraction", "review"]).unwrap();
    db.add_relation("V", ["city", "convention"]).unwrap();
    db.add_relation("E", ["convention", "attraction"]).unwrap();
    let mut mappings = MappingSet::new();
    mappings
        .add_parsed_many(
            db.catalog(),
            "
            sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
            sigma4: V(cv, x) & T(n, c, cv) -> E(x, n)
            ",
        )
        .unwrap();
    let u = UpdateId(0);
    db.insert_by_name("A", &["Geneva", "Geneva Winery"], u);
    db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], u);
    db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], u);
    db.insert_by_name("V", &["Syracuse", "Science Conf"], u);
    db.insert_by_name("E", &["Science Conf", "Geneva Winery"], u);
    (db, mappings)
}

/// Spin-waits (with a deadline) until the engine lists at least one pending
/// frontier.
fn await_pending(engine: &ExchangeEngine) -> youtopia::PendingFrontier {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(pf) = engine.pending_frontiers().into_iter().next() {
            return pf;
        }
        assert!(Instant::now() < deadline, "no frontier was published within 30s");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// The acceptance scenario: while u1 is blocked on its negative frontier, u2
/// is submitted to the *running* engine; the frontier is answered through
/// `engine.answer`, and both updates commit into a consistent database.
#[test]
fn updates_submitted_mid_chase_commit_after_answer() {
    let (db, mappings) = example_db();
    let r = db.relation_id("R").unwrap();
    let v = db.relation_id("V").unwrap();
    let review = db.scan(r, UpdateId::OMNISCIENT)[0].0;

    let engine = ExchangeEngine::new(
        db,
        mappings,
        EngineConfig::default().with_scheduler(
            SchedulerConfig::with_tracker(TrackerKind::Precise).with_workers(2).free_running(),
        ),
    );
    // u1: delete the review; its backward chase blocks on a negative frontier
    // (delete the attraction or the tour?).
    let u1 = engine.submit(InitialOp::Delete { relation: r, tuple: review }).unwrap();
    let pf = await_pending(&engine);
    assert_eq!(pf.update, u1.id());
    assert_eq!(u1.status(), UpdateStatus::AwaitingFrontier);

    // u2 arrives while the engine is mid-chase on u1 — the thing the old
    // batch-only API could not express.
    let u2 = engine
        .submit(InitialOp::Insert {
            relation: v,
            values: vec![Value::constant("Syracuse"), Value::constant("Math Conf")],
        })
        .unwrap();

    // The (human) answer: delete the tour, exactly Example 3.1's step 4.
    let FrontierRequest::Negative(nf) = &pf.request else { panic!("expected negative frontier") };
    let tour = nf
        .candidates
        .iter()
        .find(|(_, _, data)| data.len() == 3)
        .map(|(_, id, _)| *id)
        .expect("the tour is a deletion candidate");
    engine.answer(pf.token, FrontierDecision::Negative(vec![tour])).unwrap();

    // Drain whatever else the cascade asks (u2's chase is deterministic, but
    // abort/redo interleavings can republish) and wait for quiescence.
    let mut resolver = RandomResolver::seeded(7);
    ResolverPump::new(&engine, &mut resolver).run_until_quiescent().unwrap();

    let r1 = u1.wait().unwrap();
    let r2 = u2.wait().unwrap();
    assert!(r1.terminated && r2.terminated);
    assert!(engine.is_quiescent());
    engine.read(|db| {
        assert!(satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), engine.mappings()));
        let v = db.relation_id("V").unwrap();
        assert!(
            db.scan(v, UpdateId::OMNISCIENT)
                .iter()
                .any(|(_, d)| d[1] == Value::constant("Math Conf")),
            "u2's convention must have committed"
        );
        let t = db.relation_id("T").unwrap();
        assert_eq!(db.visible_count(t, UpdateId::OMNISCIENT), 0, "the tour was deleted");
        // Whatever the interleaving, no excursion may recommend the deleted
        // tour on u2's behalf (Example 3.1's premature-read repair).
        let e = db.relation_id("E").unwrap();
        for (_, excursion) in db.scan(e, UpdateId::OMNISCIENT) {
            assert!(
                excursion[0] != Value::constant("Math Conf"),
                "premature excursion suggestion survived: {excursion:?}"
            );
        }
    });
    let metrics = engine.metrics();
    assert_eq!(metrics.workload_size, 2);
    assert!(metrics.frontier_ops >= 1);
}

/// The admission cap turns overload into `SubmitError::Saturated`, and the
/// engine accepts again once the in-flight update completes.
#[test]
fn saturation_is_backpressure_not_failure() {
    let (db, mappings) = example_db();
    let r = db.relation_id("R").unwrap();
    let v = db.relation_id("V").unwrap();
    let review = db.scan(r, UpdateId::OMNISCIENT)[0].0;

    let engine = ExchangeEngine::new(
        db,
        mappings,
        EngineConfig::default()
            .with_admission_cap(1)
            .with_scheduler(SchedulerConfig::default().with_workers(1).free_running()),
    );
    let u1 = engine.submit(InitialOp::Delete { relation: r, tuple: review }).unwrap();
    let pf = await_pending(&engine);

    // The engine is full: the second submission is rejected, not queued.
    let op = InitialOp::Insert {
        relation: v,
        values: vec![Value::constant("Syracuse"), Value::constant("Math Conf")],
    };
    match engine.submit(op.clone()) {
        Err(SubmitError::Saturated { active, cap, retry_after }) => {
            assert_eq!((active, cap), (1, 1));
            assert_eq!(retry_after.completions, 1, "one completion frees one slot");
        }
        other => panic!("expected saturation, got {other:?}"),
    }

    // Answer the frontier, let u1 finish, and the engine admits again.
    let FrontierRequest::Negative(nf) = &pf.request else { panic!("expected negative frontier") };
    let first = nf.candidates.first().map(|(_, id, _)| *id).unwrap();
    engine.answer(pf.token, FrontierDecision::Negative(vec![first])).unwrap();
    let mut resolver = RandomResolver::seeded(3);
    ResolverPump::new(&engine, &mut resolver).run_until_quiescent().unwrap();
    u1.wait().unwrap();

    let u2 = engine.submit(op).expect("capacity freed after termination");
    ResolverPump::new(&engine, &mut resolver).run_until_quiescent().unwrap();
    assert!(u2.wait().unwrap().terminated);
    let (final_db, mappings, metrics) = engine.shutdown();
    assert!(satisfies_all(&final_db.snapshot(UpdateId::OMNISCIENT), &mappings));
    assert_eq!(metrics.workload_size, 2);
}

/// `EscalationPolicy::Wait` (the default) is exactly the pre-lifecycle
/// engine: sweeping as aggressively as a caller likes only ages the pending
/// entries — the final database, metrics and per-update stats stay
/// byte-identical to the `ConcurrentRun` reference, and no escalation
/// counter ever moves.
#[test]
fn wait_policy_with_sweeps_matches_the_reference() {
    let mut config = ExperimentConfig::tiny();
    config.seed = 4242;
    let fixture = build_fixture(&config).expect("fixture builds");
    let ops: Vec<InitialOp> = generate_workload(
        &config,
        &fixture.schema,
        &fixture.initial_db,
        &fixture.mappings,
        WorkloadKind::Mixed,
        config.seed,
    )
    .into_iter()
    .take(16)
    .collect();
    let first_number = config.initial_tuples as u64 + 1_000;
    let scheduler =
        SchedulerConfig::with_tracker(TrackerKind::Precise).with_frontier_delay_rounds(3);

    let mut reference = ConcurrentRun::new(
        fixture.initial_db.clone(),
        fixture.mappings.clone(),
        ops.clone(),
        first_number,
        scheduler,
    );
    let ref_metrics = reference.run(&mut RandomResolver::seeded(99)).unwrap();
    let ref_stats = reference.update_stats();
    let (ref_db, _, _) = reference.into_parts();

    let engine = ExchangeEngine::new(
        fixture.initial_db.clone(),
        fixture.mappings.clone(),
        EngineConfig::default()
            .with_scheduler(scheduler.with_workers(2))
            .with_first_update_number(first_number)
            .with_escalation_policy(EscalationPolicy::Wait),
    );
    engine.submit_batch(ops).expect("uncapped submission");
    // Sweep obsessively while the run is in flight: under `Wait` this must
    // be pure observability (aging), never escalation.
    let mut resolver = RandomResolver::seeded(99);
    let mut pump = ResolverPump::new(&engine, &mut resolver);
    loop {
        let report = engine.sweep();
        assert!(report.re_asked.is_empty() && report.auto_resolved.is_empty());
        pump.drain().unwrap();
        if engine.is_quiescent() {
            break;
        }
    }
    assert_eq!(engine.update_stats(), ref_stats, "per-update stats");
    let (db, _, metrics) = engine.shutdown();
    assert_eq!(metrics.re_asks, 0);
    assert_eq!(metrics.auto_resolutions, 0);
    assert_eq!(scrub(metrics), scrub(ref_metrics), "metrics");
    assert_eq!(render(&db), render(&ref_db), "final database state");
}

/// The backoff contract of `SubmitError::Saturated`: a client that waits for
/// the hinted number of completions and retries the same submission is
/// admitted.
#[test]
fn saturated_clients_retrying_after_the_hint_are_admitted() {
    let (db, mappings) = example_db();
    let v = db.relation_id("V").unwrap();
    let engine = ExchangeEngine::new(
        db,
        mappings,
        EngineConfig::default().with_admission_cap(2).run_inline(),
    );
    let conv = |name: &str| InitialOp::Insert {
        relation: v,
        values: vec![Value::constant("Syracuse"), Value::constant(name)],
    };
    let (alice, bob) = (ClientId(1), ClientId(2));
    let h1 = engine.submit_as(conv("Conf A1"), alice, Priority::Normal).unwrap();
    let h2 = engine.submit_as(conv("Conf A2"), alice, Priority::Normal).unwrap();
    // The engine is full; Bob's rejection carries the typed hint.
    let retry_after = match engine.submit_as(conv("Conf B1"), bob, Priority::Normal) {
        Err(SubmitError::Saturated { retry_after, .. }) => retry_after,
        other => panic!("expected saturation, got {other:?}"),
    };
    assert!(retry_after.completions >= 1);
    // Honour the contract: wait for that many in-flight completions (the V
    // inserts chase deterministically, so `wait` drives them to termination
    // on this thread), then retry verbatim.
    for handle in [&h1, &h2].into_iter().take(retry_after.completions) {
        assert!(handle.wait().unwrap().terminated);
    }
    let hb = engine
        .submit_as(conv("Conf B1"), bob, Priority::Normal)
        .expect("a retry after the hinted completions is admitted");
    assert!(hb.wait().unwrap().terminated);
}

/// Weighted fair share never starves anyone: a `Low`-priority client whose
/// every submission loses the race against a `High`-priority flood
/// accumulates deficit until the engine reserves freed capacity for it.
#[test]
fn starving_low_priority_clients_are_eventually_admitted() {
    let (db, mappings) = example_db();
    let v = db.relation_id("V").unwrap();
    let engine = ExchangeEngine::new(
        db,
        mappings,
        EngineConfig::default().with_admission_cap(1).run_inline(),
    );
    let conv = |name: &str| InitialOp::Insert {
        relation: v,
        values: vec![Value::constant("Syracuse"), Value::constant(name)],
    };
    let (greedy, meek) = (ClientId(1), ClientId(2));
    let mut admitted_round = None;
    for round in 0..64usize {
        // The greedy client grabs the only slot first every round — until
        // the meek client's deficit crosses the starvation bound, at which
        // point the engine refuses the greedy client to reserve the slot.
        let greedy_handle = engine.submit_as(conv("Greedy Conf"), greedy, Priority::High).ok();
        match engine.submit_as(conv("Meek Conf"), meek, Priority::Low) {
            Ok(handle) => {
                assert!(handle.wait().unwrap().terminated);
                admitted_round = Some(round);
                break;
            }
            Err(SubmitError::Saturated { .. }) => {}
            Err(e) => panic!("unexpected submit error: {e}"),
        }
        if let Some(h) = greedy_handle {
            assert!(h.wait().unwrap().terminated);
        }
        engine.wait_quiescent().unwrap();
    }
    let round = admitted_round.expect("the meek client must eventually be admitted");
    assert!(round > 0, "the first rounds must actually reject the meek client");
}

/// A stale token (the owner aborted or was already answered) is reported as
/// such, never applied to the wrong incarnation.
#[test]
fn answered_tokens_go_stale() {
    let (db, mappings) = example_db();
    let r = db.relation_id("R").unwrap();
    let review = db.scan(r, UpdateId::OMNISCIENT)[0].0;
    let engine = ExchangeEngine::new(
        db,
        mappings,
        EngineConfig::default()
            .with_scheduler(SchedulerConfig::default().with_workers(1).free_running()),
    );
    let u1 = engine.submit(InitialOp::Delete { relation: r, tuple: review }).unwrap();
    let pf = await_pending(&engine);
    let FrontierRequest::Negative(nf) = &pf.request else { panic!("expected negative frontier") };
    let first = nf.candidates.first().map(|(_, id, _)| *id).unwrap();
    let decision = FrontierDecision::Negative(vec![first]);
    assert_eq!(
        engine.answer(pf.token, decision.clone()).unwrap(),
        youtopia::AnswerOutcome::Applied
    );
    // Answering the same token again is stale, not an error.
    assert_eq!(engine.answer(pf.token, decision).unwrap(), youtopia::AnswerOutcome::Stale);
    let mut resolver = RandomResolver::seeded(1);
    ResolverPump::new(&engine, &mut resolver).run_until_quiescent().unwrap();
    assert!(u1.wait().unwrap().terminated);
}
