//! The unified engine error surface.
//!
//! The engine historically reported failures through two independent enums:
//! [`SubmitError`] (admission) and
//! [`LookupError`](youtopia_core::LookupError) (keyed queries against the
//! retained slot table). Callers that drive a whole submit → poll → report
//! round trip had to thread both. [`EngineError`] is the union: every
//! admission and lookup failure converts into it (`From` impls below, so `?`
//! just works), and it is `#[non_exhaustive]` so later engine facilities can
//! add failure kinds without a breaking release.
//!
//! Chase-side failures remain [`ChaseError`](youtopia_core::ChaseError):
//! those describe the *update's* fate (and are returned by its handle), not
//! the engine call that asked.

use youtopia_core::LookupError;
use youtopia_storage::UpdateId;

use crate::engine::{RetryAfter, SubmitError};

/// Any failure of an engine API call — admission, durability, or keyed
/// lookup. See the [module docs](self) for how this relates to the older
/// per-surface enums.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// Admission denied: the engine is at its cap (or the client over its
    /// fair share). Carries the same typed backoff hint as
    /// [`SubmitError::Saturated`].
    Saturated {
        /// In-flight updates at rejection time.
        active: usize,
        /// The configured admission cap.
        cap: usize,
        /// Typed backoff hint: completions to wait for before retrying.
        retry_after: RetryAfter,
    },
    /// The engine has been shut down or has failed fatally.
    ShutDown,
    /// A write-ahead-log append failed; the submission was not admitted.
    Durability(String),
    /// The update terminated but its slot was evicted by the retention
    /// horizon; per-update state is no longer available.
    SlotEvicted(UpdateId),
    /// The update id was never assigned by this engine.
    UnknownUpdate(UpdateId),
    /// The engine is a replica: plain submission is refused, work enters
    /// through `submit_replicated` / `apply_remote_deltas`.
    Replicated,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Saturated { active, cap, retry_after } => {
                write!(
                    f,
                    "engine saturated: {active} in-flight updates at cap {cap}; {retry_after}"
                )
            }
            EngineError::ShutDown => write!(f, "engine is shut down"),
            EngineError::Durability(msg) => write!(f, "write-ahead log append failed: {msg}"),
            EngineError::SlotEvicted(u) => {
                write!(f, "update {u} was evicted by the retention horizon")
            }
            EngineError::UnknownUpdate(u) => write!(f, "update {u} was never submitted"),
            EngineError::Replicated => {
                write!(f, "engine is a replica: submit through submit_replicated")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SubmitError> for EngineError {
    fn from(e: SubmitError) -> EngineError {
        match e {
            SubmitError::Saturated { active, cap, retry_after } => {
                EngineError::Saturated { active, cap, retry_after }
            }
            SubmitError::ShutDown => EngineError::ShutDown,
            SubmitError::Durability(msg) => EngineError::Durability(msg),
            SubmitError::Replicated => EngineError::Replicated,
        }
    }
}

impl From<LookupError> for EngineError {
    fn from(e: LookupError) -> EngineError {
        match e {
            LookupError::SlotEvicted(u) => EngineError::SlotEvicted(u),
            LookupError::UnknownUpdate(u) => EngineError::UnknownUpdate(u),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_every_field() {
        let sub = SubmitError::Saturated {
            active: 7,
            cap: 4,
            retry_after: RetryAfter { completions: 3 },
        };
        assert_eq!(
            EngineError::from(sub.clone()),
            EngineError::Saturated {
                active: 7,
                cap: 4,
                retry_after: RetryAfter { completions: 3 }
            }
        );
        // Display stays word-for-word compatible with the per-surface enums,
        // so log scrapers keyed on the old messages keep matching.
        assert_eq!(EngineError::from(sub.clone()).to_string(), sub.to_string());
        assert_eq!(EngineError::from(SubmitError::ShutDown), EngineError::ShutDown);
        assert_eq!(
            EngineError::from(LookupError::SlotEvicted(UpdateId(9))),
            EngineError::SlotEvicted(UpdateId(9))
        );
        assert_eq!(
            EngineError::from(LookupError::UnknownUpdate(UpdateId(2))),
            EngineError::UnknownUpdate(UpdateId(2))
        );
    }
}
