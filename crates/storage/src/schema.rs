//! Relation schemas and the catalog.

use std::collections::HashMap;
use std::fmt;

use crate::error::StorageError;

/// Identifier of a relation in the catalog.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub u32);

impl fmt::Debug for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Schema of one relation: a name and named attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation id assigned by the catalog.
    pub id: RelationId,
    /// Relation name, unique within the catalog.
    pub name: String,
    /// Attribute names. The arity of the relation is `attributes.len()`.
    pub attributes: Vec<String>,
}

impl RelationSchema {
    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of an attribute by name.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == name)
    }
}

/// The catalog: the set of registered relation schemas.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    schemas: Vec<RelationSchema>,
    by_name: HashMap<String, RelationId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a relation with the given name and attribute names.
    ///
    /// Returns an error if the name is already taken or the relation would
    /// have arity 0.
    pub fn add_relation(
        &mut self,
        name: impl Into<String>,
        attributes: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<RelationId, StorageError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(StorageError::DuplicateRelation(name));
        }
        let attributes: Vec<String> = attributes.into_iter().map(Into::into).collect();
        if attributes.is_empty() {
            return Err(StorageError::EmptySchema(name));
        }
        let id = RelationId(self.schemas.len() as u32);
        self.schemas.push(RelationSchema { id, name: name.clone(), attributes });
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Looks a relation up by name.
    pub fn relation_by_name(&self, name: &str) -> Option<&RelationSchema> {
        self.by_name.get(name).map(|id| &self.schemas[id.0 as usize])
    }

    /// Looks a relation id up by name.
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.by_name.get(name).copied()
    }

    /// Returns the schema of a relation.
    pub fn schema(&self, id: RelationId) -> &RelationSchema {
        &self.schemas[id.0 as usize]
    }

    /// Returns the schema of a relation, or an error for unknown ids.
    pub fn try_schema(&self, id: RelationId) -> Result<&RelationSchema, StorageError> {
        self.schemas.get(id.0 as usize).ok_or(StorageError::UnknownRelation(id))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Iterates over all relation schemas.
    pub fn iter(&self) -> impl Iterator<Item = &RelationSchema> {
        self.schemas.iter()
    }

    /// Iterates over all relation ids.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelationId> + '_ {
        self.schemas.iter().map(|s| s.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_relations() {
        let mut cat = Catalog::new();
        let c = cat.add_relation("City", ["city"]).unwrap();
        let s = cat.add_relation("SuggestedAirport", ["code", "location", "city_served"]).unwrap();
        assert_eq!(cat.len(), 2);
        assert!(!cat.is_empty());
        assert_eq!(cat.relation_id("City"), Some(c));
        assert_eq!(cat.relation_by_name("SuggestedAirport").unwrap().arity(), 3);
        assert_eq!(cat.schema(s).attribute_index("location"), Some(1));
        assert_eq!(cat.schema(s).attribute_index("nope"), None);
        assert_eq!(cat.relation_id("Missing"), None);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut cat = Catalog::new();
        cat.add_relation("R", ["a"]).unwrap();
        let err = cat.add_relation("R", ["b"]).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateRelation(_)));
    }

    #[test]
    fn empty_schema_rejected() {
        let mut cat = Catalog::new();
        let err = cat.add_relation("R", Vec::<String>::new()).unwrap_err();
        assert!(matches!(err, StorageError::EmptySchema(_)));
    }

    #[test]
    fn try_schema_unknown_id() {
        let cat = Catalog::new();
        assert!(matches!(cat.try_schema(RelationId(3)), Err(StorageError::UnknownRelation(_))));
    }

    #[test]
    fn iteration_order_matches_ids() {
        let mut cat = Catalog::new();
        for i in 0..5 {
            cat.add_relation(format!("R{i}"), ["a", "b"]).unwrap();
        }
        let ids: Vec<_> = cat.relation_ids().collect();
        assert_eq!(ids.len(), 5);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.0 as usize, i);
            assert_eq!(cat.schema(*id).name, format!("R{i}"));
        }
    }
}
