//! Benchmarks for the cooperative chase itself: forward-chase throughput on
//! the travel schema, backward-chase cascades, the effect of the user's
//! unify-versus-expand behaviour on chase length (an ablation the paper's
//! design discussion motivates but does not measure), and end-to-end chase
//! wall-clock under long-lived violation queues — the delta-driven
//! (`Incremental`) queue against the pre-optimisation `FullRecheck` reference
//! path, so `BENCH_chase.json` records the step-cost-vs-queue-size win.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use youtopia_concurrency::{
    EngineBuilder, ParallelRun, ResolverPump, SchedulerConfig, SpeculationMode, TrackerKind,
    UpdateExchange,
};
use youtopia_core::{ChaseMode, InitialOp, RandomResolver, UnifyResolver, UpdateExecution};
use youtopia_mappings::MappingSet;
use youtopia_storage::{Database, UpdateId, Value};
use youtopia_workload::{build_fixture, generate_workload, ExperimentConfig, WorkloadKind};

fn travel(rows: usize) -> (Database, MappingSet) {
    let mut db = Database::new();
    db.add_relation("C", ["city"]).unwrap();
    db.add_relation("S", ["code", "location", "city_served"]).unwrap();
    db.add_relation("A", ["location", "name"]).unwrap();
    db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
    db.add_relation("R", ["company", "attraction", "review"]).unwrap();
    let mut mappings = MappingSet::new();
    mappings
        .add_parsed_many(
            db.catalog(),
            "
            sigma1: C(c) -> exists a, l. S(a, l, c)
            sigma2: S(a, c, c2) -> C(c) & C(c2)
            sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
            ",
        )
        .unwrap();
    let u = UpdateId(0);
    for i in 0..rows {
        db.insert_by_name("A", &[&format!("loc{i}"), &format!("attr{i}")], u);
        db.insert_by_name("T", &[&format!("attr{i}"), &format!("co{i}"), &format!("city{i}")], u);
        db.insert_by_name("R", &[&format!("co{i}"), &format!("attr{i}"), "ok"], u);
    }
    (db, mappings)
}

fn bench_forward_chase_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/forward_insert_tour");
    group.sample_size(15);
    for rows in [50usize, 200, 800] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter_batched(
                || {
                    let (db, mappings) = travel(rows);
                    UpdateExchange::new(db, mappings)
                },
                |mut exchange| {
                    let mut user = RandomResolver::seeded(1);
                    exchange
                        .insert_constants("T", &["attr1", "brand-new-co", "somewhere"], &mut user)
                        .unwrap();
                    black_box(exchange.db().total_visible(UpdateId::OMNISCIENT))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_backward_chase_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/backward_delete_review");
    group.sample_size(15);
    for rows in [50usize, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter_batched(
                || {
                    let (db, mappings) = travel(rows);
                    let r = db.relation_id("R").unwrap();
                    let victim = db.scan(r, UpdateId::OMNISCIENT)[rows / 2].0;
                    (UpdateExchange::new(db, mappings), r, victim)
                },
                |(mut exchange, r, victim)| {
                    let mut user = RandomResolver::seeded(3);
                    exchange
                        .run_update(InitialOp::Delete { relation: r, tuple: victim }, &mut user)
                        .unwrap();
                    black_box(exchange.db().visible_count(r, UpdateId::OMNISCIENT))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_resolver_ablation(c: &mut Criterion) {
    // How much chase work does the user's behaviour cause? A unifying user
    // keeps the cyclic C/S mappings tight; a random user sometimes expands,
    // lengthening the chase.
    let mut group = c.benchmark_group("chase/resolver_ablation_city_insert");
    group.sample_size(15);
    group.bench_function("unify_resolver", |b| {
        b.iter_batched(
            || {
                let (db, mappings) = travel(50);
                UpdateExchange::new(db, mappings)
            },
            |mut exchange| {
                let mut user = UnifyResolver;
                for i in 0..5 {
                    exchange
                        .insert("C", vec![Value::constant(&format!("city{i}"))], &mut user)
                        .unwrap();
                }
                black_box(exchange.db().total_visible(UpdateId::OMNISCIENT))
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("random_resolver", |b| {
        b.iter_batched(
            || {
                let (db, mappings) = travel(50);
                UpdateExchange::new(db, mappings)
            },
            |mut exchange| {
                let mut user = RandomResolver::seeded(11);
                for i in 0..5 {
                    exchange
                        .insert("C", vec![Value::constant(&format!("city{i}"))], &mut user)
                        .unwrap();
                }
                black_box(exchange.db().total_visible(UpdateId::OMNISCIENT))
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Hub(x) → Spokeᵢ(x) fan-out: a single insert into `Hub` discovers `spokes`
/// violations in one step, and every later step deterministically repairs
/// exactly one, so the violation queue stays ~`spokes` long for ~`spokes`
/// steps. The reference path re-runs `still_violated` over the whole queue
/// every step — O(queue²) query evaluations per update — while the
/// delta-driven queue only revisits violations whose read relations were
/// written.
fn hub_spokes(spokes: usize) -> (Database, MappingSet) {
    let mut db = Database::new();
    db.add_relation("Hub", ["k"]).unwrap();
    let mut rules = String::new();
    for i in 0..spokes {
        db.add_relation(format!("Spoke{i}"), ["k"]).unwrap();
        rules.push_str(&format!("m{i}: Hub(x) -> Spoke{i}(x)\n"));
    }
    let mut mappings = MappingSet::new();
    mappings.add_parsed_many(db.catalog(), &rules).unwrap();
    (db, mappings)
}

/// C₀(x) → C₁(x) → … → C_d(x): a single insert cascades `d` steps deep with a
/// short queue — the per-step overhead case.
fn chain(depth: usize) -> (Database, MappingSet) {
    let mut db = Database::new();
    let mut rules = String::new();
    for i in 0..=depth {
        db.add_relation(format!("C{i}"), ["k"]).unwrap();
    }
    for i in 0..depth {
        rules.push_str(&format!("c{i}: C{i}(x) -> C{}(x)\n", i + 1));
    }
    let mut mappings = MappingSet::new();
    mappings.add_parsed_many(db.catalog(), &rules).unwrap();
    (db, mappings)
}

/// Drives one update to termination with the given queue-maintenance mode.
/// The fixtures are frontier-free (copy mappings, fresh constants), so no
/// resolver is needed.
fn run_single_update(
    db: &Database,
    mappings: &MappingSet,
    op: InitialOp,
    mode: ChaseMode,
) -> usize {
    let mut db = db.clone();
    let mut exec = UpdateExecution::with_mode(UpdateId(1), op, mode);
    while !exec.is_terminated() {
        exec.step(&mut db, mappings).expect("frontier-free chase");
    }
    exec.stats().steps
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/end_to_end");
    group.sample_size(10);

    // A single shallow update: the fixed per-update overhead both modes pay.
    {
        let (db, mappings) = hub_spokes(4);
        let hub = db.relation_id("Hub").unwrap();
        group.bench_function("single_update", |b| {
            b.iter(|| {
                let op =
                    InitialOp::Insert { relation: hub, values: vec![Value::constant("fresh")] };
                black_box(run_single_update(&db, &mappings, op, ChaseMode::Incremental))
            })
        });
    }

    // Deep cascade with a long-lived queue: the case the delta-driven queue
    // exists for. `incremental` versus the pre-change `full_recheck` path is
    // the ≥2× acceptance comparison recorded in BENCH_chase.json.
    for spokes in [32usize, 96] {
        let (db, mappings) = hub_spokes(spokes);
        let hub = db.relation_id("Hub").unwrap();
        for (label, mode) in
            [("incremental", ChaseMode::Incremental), ("full_recheck", ChaseMode::FullRecheck)]
        {
            group.bench_with_input(
                BenchmarkId::new(format!("deep_cascade/{spokes}"), label),
                &mode,
                |b, &mode| {
                    b.iter(|| {
                        let op = InitialOp::Insert {
                            relation: hub,
                            values: vec![Value::constant("fresh")],
                        };
                        black_box(run_single_update(&db, &mappings, op, mode))
                    })
                },
            );
        }
    }

    // Deep chain, short queue: per-step bookkeeping must not regress.
    {
        let (db, mappings) = chain(64);
        let c0 = db.relation_id("C0").unwrap();
        for (label, mode) in
            [("incremental", ChaseMode::Incremental), ("full_recheck", ChaseMode::FullRecheck)]
        {
            group.bench_with_input(BenchmarkId::new("chain/64", label), &mode, |b, &mode| {
                b.iter(|| {
                    let op =
                        InitialOp::Insert { relation: c0, values: vec![Value::constant("fresh")] };
                    black_box(run_single_update(&db, &mappings, op, mode))
                })
            });
        }
    }

    group.finish();
}

/// End-to-end chase over the paper-scale generated mapping graph: a slice of
/// the deep-cascade workload run through the single-threaded exchange, under
/// both queue-maintenance modes.
fn bench_end_to_end_mapping_graph(c: &mut Criterion) {
    let mut config = ExperimentConfig::quick();
    config.initial_tuples = 200;
    config.workload_updates = 12;
    let fixture = build_fixture(&config).expect("fixture builds");
    let ops = generate_workload(
        &config,
        &fixture.schema,
        &fixture.initial_db,
        &fixture.mappings,
        WorkloadKind::DeepCascade,
        0,
    );

    let mut group = c.benchmark_group("chase/end_to_end/mapping_graph");
    group.sample_size(10);
    for (label, mode) in
        [("incremental", ChaseMode::Incremental), ("full_recheck", ChaseMode::FullRecheck)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter_batched(
                || {
                    UpdateExchange::with_builder(
                        fixture.initial_db.clone(),
                        fixture.mappings.clone(),
                        EngineBuilder::new().chase_mode(mode),
                    )
                },
                |mut exchange| {
                    let mut user = RandomResolver::seeded(9);
                    for op in &ops {
                        exchange.run_update(op.clone(), &mut user).unwrap();
                    }
                    black_box(exchange.db().total_visible(UpdateId::OMNISCIENT))
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// The multi-threaded scheduler: one batch of updates through a free-running
/// [`ParallelRun`] at 1/2/4/8 workers, on the two workloads that stress it
/// from opposite ends — `DeepCascade` (long chases, long-lived violation
/// queues, little inter-update conflict) and `Skewed` (80% of operations on
/// one hot relation, so validation and the sharded queues contend).
///
/// On a single-core runner the medians document the coordination overhead of
/// extra workers, not scaling; measure on multi-core hardware for the
/// speedup numbers (see README "Scheduler architecture").
fn bench_parallel_scheduler(c: &mut Criterion) {
    let mut config = ExperimentConfig::quick();
    config.initial_tuples = 200;
    config.workload_updates = 24;
    let fixture = build_fixture(&config).expect("fixture builds");
    let first_number = config.initial_tuples as u64 + 1_000;

    let mut group = c.benchmark_group("chase/parallel");
    group.sample_size(10);
    for kind in [WorkloadKind::DeepCascade, WorkloadKind::Skewed] {
        let ops = generate_workload(
            &config,
            &fixture.schema,
            &fixture.initial_db,
            &fixture.mappings,
            kind,
            0,
        );
        let label = match kind {
            WorkloadKind::DeepCascade => "deep_cascade",
            _ => "skewed",
        };
        for workers in [1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::new(label, workers), &workers, |b, &workers| {
                b.iter_batched(
                    || {
                        let scheduler = SchedulerConfig {
                            tracker: TrackerKind::Coarse,
                            workers,
                            deterministic: false,
                            ..SchedulerConfig::default()
                        };
                        ParallelRun::new(
                            fixture.initial_db.clone(),
                            fixture.mappings.clone(),
                            ops.clone(),
                            first_number,
                            scheduler,
                        )
                    },
                    |mut run| {
                        let metrics = run.run(&mut RandomResolver::seeded(7)).unwrap();
                        black_box(metrics.steps)
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

/// Speculative execution on the deterministic sequencer: the same batch with
/// speculation on versus off, on a mostly-disjoint workload (`DeepCascade` —
/// little inter-update conflict, so most speculations validate and commit)
/// and a contended one (`Skewed` — 80% of operations on one hot relation, so
/// most speculations are invalidated and discarded). The acceptance bar is
/// that `on` is no slower than `off` on the disjoint workload; on the
/// contended one the numbers document the cost of wasted speculation.
fn bench_speculative(c: &mut Criterion) {
    let mut config = ExperimentConfig::quick();
    config.initial_tuples = 200;
    config.workload_updates = 24;
    let fixture = build_fixture(&config).expect("fixture builds");
    let first_number = config.initial_tuples as u64 + 1_000;

    let mut group = c.benchmark_group("chase/speculative");
    group.sample_size(10);
    for (kind, kind_label) in
        [(WorkloadKind::DeepCascade, "disjoint"), (WorkloadKind::Skewed, "contended")]
    {
        let ops = generate_workload(
            &config,
            &fixture.schema,
            &fixture.initial_db,
            &fixture.mappings,
            kind,
            0,
        );
        for (mode, mode_label) in [(SpeculationMode::Eager, "on"), (SpeculationMode::Off, "off")] {
            group.bench_with_input(BenchmarkId::new(kind_label, mode_label), &mode, |b, &mode| {
                b.iter_batched(
                    || {
                        let scheduler = SchedulerConfig {
                            tracker: TrackerKind::Coarse,
                            workers: 4,
                            deterministic: true,
                            ..SchedulerConfig::default()
                        }
                        .with_speculation(mode);
                        ParallelRun::new(
                            fixture.initial_db.clone(),
                            fixture.mappings.clone(),
                            ops.clone(),
                            first_number,
                            scheduler,
                        )
                    },
                    |mut run| {
                        let metrics = run.run(&mut RandomResolver::seeded(7)).unwrap();
                        black_box(metrics.steps)
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

/// `chains` disjoint copy chains R{j}_0(x) → R{j}_1(x) → … → R{j}_depth(x):
/// updates on different chains share no relations, so any cross-update cost
/// is pure violation-detection bookkeeping, not real conflict.
fn disjoint_chains(chains: usize, depth: usize) -> (Database, MappingSet) {
    let mut db = Database::new();
    let mut rules = String::new();
    for j in 0..chains {
        for i in 0..=depth {
            db.add_relation(format!("R{j}x{i}"), ["k"]).unwrap();
        }
        for i in 0..depth {
            rules.push_str(&format!("r{j}x{i}: R{j}x{i}(x) -> R{j}x{}(x)\n", i + 1));
        }
    }
    let mut mappings = MappingSet::new();
    mappings.add_parsed_many(db.catalog(), &rules).unwrap();
    (db, mappings)
}

/// The shared violation index under concurrent live updates: 16 disjoint
/// chain cascades submitted to an inline deterministic engine in waves of
/// 1, 4 or 16, so every configuration performs the *same* chase steps and
/// only the number of concurrently live updates differs. With the shared
/// delta feed, an update's per-step detection cost depends on the deltas
/// committed since its own cursor — filtered by relation interest, so the
/// other chains' writes are skipped in O(1) per delta — and the three
/// medians must stay flat (the acceptance bar is 16 within 1.5× of 1).
/// Under the per-update baseline this was the regime where detection work
/// scaled with the number of concurrent updates.
fn bench_shared_index(c: &mut Criterion) {
    const CHAINS: usize = 16;
    const DEPTH: usize = 24;
    let (db, mappings) = disjoint_chains(CHAINS, DEPTH);
    let ops: Vec<InitialOp> = (0..CHAINS)
        .map(|j| InitialOp::Insert {
            relation: db.relation_id(&format!("R{j}x0")).unwrap(),
            values: vec![Value::constant("fresh")],
        })
        .collect();

    let mut group = c.benchmark_group("chase/shared_index");
    group.sample_size(10);
    for batch in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{batch}_concurrent_updates")),
            &batch,
            |b, &batch| {
                b.iter_batched(
                    || {
                        let engine = EngineBuilder::new()
                            .inline()
                            .build(db.clone(), mappings.clone())
                            .expect("non-durable engines build infallibly");
                        (engine, ops.clone())
                    },
                    |(engine, ops)| {
                        let mut resolver = RandomResolver::seeded(5);
                        for wave in ops.chunks(batch) {
                            engine.submit_batch(wave.to_vec()).unwrap();
                            ResolverPump::new(&engine, &mut resolver)
                                .run_until_quiescent()
                                .unwrap();
                        }
                        let (_db, _mappings, metrics) = engine.shutdown();
                        black_box(metrics.steps)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forward_chase_insert,
    bench_backward_chase_delete,
    bench_resolver_ablation,
    bench_end_to_end,
    bench_end_to_end_mapping_graph,
    bench_parallel_scheduler,
    bench_speculative,
    bench_shared_index
);
criterion_main!(benches);
