//! Violations, witnesses and violation queries (Definitions 2.1 and 2.2,
//! Section 4.2).

use std::fmt;

use youtopia_storage::{
    evaluate, restrict, satisfiable, Bindings, DataView, TupleChange, TupleData, TupleId,
};

use crate::tgd::{MappingId, MappingSet, Tgd};

/// Whether a violation was caused on the left-hand side (by an insertion or a
/// null-replacement) or on the right-hand side (by a deletion). LHS-violations
/// are repaired by the forward chase, RHS-violations by the backward chase
/// (Section 2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViolationKind {
    /// The witness appeared (or changed) on the left-hand side.
    Lhs,
    /// A matching right-hand side tuple disappeared.
    Rhs,
}

/// A violation of a mapping: an LHS match (the *witness*, Definition 2.2) that
/// has no matching right-hand side.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Violation {
    /// The violated mapping.
    pub mapping: MappingId,
    /// How the violation arose.
    pub kind: ViolationKind,
    /// Bindings of all LHS variables (frontier variables x̄ and LHS-only
    /// variables ȳ).
    pub lhs_bindings: Bindings,
    /// The witness: ids of the tuples matching the LHS atoms, in atom order.
    pub witness: Vec<TupleId>,
}

impl Violation {
    /// Bindings restricted to the frontier variables x̄ — the assignment `a`
    /// of Definition 2.1.
    pub fn frontier_bindings(&self, tgd: &Tgd) -> Bindings {
        restrict(&self.lhs_bindings, tgd.frontier_vars())
    }

    /// The relations a re-examination of this violation reads: the relations
    /// of the witness tuples (the LHS atoms) and the relations of the RHS
    /// atoms probed by the `NOT EXISTS` check — together with the relations a
    /// repair plan for the violation would read (forward repair scans the RHS
    /// relations for more-specific tuples, backward repair looks the witness
    /// tuples up in the LHS relations). The chase's delta-driven queue indexes
    /// each queued violation under exactly these relations: only a write to
    /// one of them can change the violation's status or invalidate its
    /// memoised repair plan.
    pub fn read_relations(&self, tgd: &Tgd) -> Vec<youtopia_storage::RelationId> {
        tgd.relations()
    }

    /// Checks whether the violation still holds on `view`: every witness tuple
    /// must still be present with data matching the LHS atoms under the
    /// recorded bindings, and the RHS must still be unsatisfiable for the
    /// frontier assignment. The chase re-checks violations before repairing
    /// them because earlier corrective writes (or other updates' writes) may
    /// already have repaired or invalidated them.
    pub fn still_violated(&self, view: &dyn DataView, tgd: &Tgd) -> bool {
        if self.witness.len() != tgd.lhs.len() {
            return false;
        }
        for (atom, tid) in tgd.lhs.iter().zip(self.witness.iter()) {
            let Some(data) = view.tuple(atom.relation, *tid) else { return false };
            match atom.match_tuple(&data, &self.lhs_bindings) {
                // The tuple must still match without extending the bindings:
                // if the data changed (null-replacement) this violation is
                // stale and a fresh one has been detected from the change.
                Some(extended) => {
                    if extended != self.lhs_bindings {
                        return false;
                    }
                }
                None => return false,
            }
        }
        !satisfiable(view, &tgd.rhs, &self.frontier_bindings(tgd))
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "violation of {} ({:?}) with witness {:?}", self.mapping, self.kind, self.witness)
    }
}

/// How a violation query is seeded by a written tuple (Section 4.2): the
/// tuple's values become constants of the query, exactly like the bound
/// `A.name = 'Geneva Winery' AND T.company = 'XYZ'` predicates of Example 4.1.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ViolationSeed {
    /// Seeded by a tuple that appeared (insert / null-replacement result):
    /// looks for new LHS matches consistent with binding the LHS atom at
    /// `atom_index` to `values`.
    Lhs {
        /// Index of the LHS atom the written tuple matches.
        atom_index: usize,
        /// The written tuple's values.
        values: TupleData,
    },
    /// Seeded by a tuple that disappeared (delete / null-replacement
    /// original): looks for LHS matches whose RHS match may have relied on the
    /// vanished tuple, via the RHS atom at `atom_index`.
    Rhs {
        /// Index of the RHS atom the vanished tuple matched.
        atom_index: usize,
        /// The vanished tuple's values.
        values: TupleData,
    },
    /// No seed: scan for every violation of the mapping (used to validate an
    /// initial database and by tests).
    Full,
}

/// A *violation query*: the read query a chase step performs to discover the
/// new violations of one mapping caused by one write (Section 4.2). These are
/// the objects logged by the concurrency layer.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ViolationQuery {
    /// The mapping being checked.
    pub mapping: MappingId,
    /// How the query is seeded.
    pub seed: ViolationSeed,
}

impl ViolationQuery {
    /// Relations read by this query (LHS relations always; RHS relations are
    /// read through the `NOT EXISTS` subquery). Used by the `COARSE`
    /// dependency tracker.
    pub fn relations_read(&self, mappings: &MappingSet) -> Vec<youtopia_storage::RelationId> {
        mappings.get(self.mapping).relations()
    }

    /// Evaluates the query: the set of violations of the mapping consistent
    /// with the seed.
    pub fn evaluate(&self, view: &dyn DataView, mappings: &MappingSet) -> Vec<Violation> {
        let tgd = mappings.get(self.mapping);
        let (seed_bindings, kind) = match &self.seed {
            ViolationSeed::Lhs { atom_index, values } => {
                let Some(b) = tgd.lhs[*atom_index].match_tuple(values, &Bindings::new()) else {
                    return Vec::new();
                };
                (b, ViolationKind::Lhs)
            }
            ViolationSeed::Rhs { atom_index, values } => {
                let Some(b) = tgd.rhs[*atom_index].match_tuple(values, &Bindings::new()) else {
                    return Vec::new();
                };
                // Only the frontier variables constrain the LHS search.
                (restrict(&b, tgd.frontier_vars()), ViolationKind::Rhs)
            }
            ViolationSeed::Full => (Bindings::new(), ViolationKind::Lhs),
        };
        let mut out = Vec::new();
        for m in evaluate(view, &tgd.lhs, &seed_bindings, None) {
            let frontier = restrict(&m.bindings, tgd.frontier_vars());
            if !satisfiable(view, &tgd.rhs, &frontier) {
                out.push(Violation {
                    mapping: self.mapping,
                    kind,
                    lhs_bindings: m.bindings,
                    witness: m.tuples,
                });
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Builds the violation queries a chase step must pose after performing
/// `change` (Section 4.2): one query per (mapping, atom position) that the
/// changed relation occurs in. Modifications are conservatively treated as a
/// delete followed by an insert.
///
/// The (mapping, atom) pairs come from the [`CompiledPlans`] cache owned by
/// the mapping set — instantiating a skeleton with the changed tuple's values
/// is the only per-change work. [`replan_violation_queries_for_change`] is the
/// uncompiled reference path; the two must always agree (enforced by the
/// `plan_equivalence` differential test suite).
///
/// [`CompiledPlans`]: crate::plans::CompiledPlans
pub fn violation_queries_for_change(
    mappings: &MappingSet,
    change: &TupleChange,
) -> Vec<ViolationQuery> {
    let plans = mappings.plans();
    let relation = change.relation();
    let mut queries = Vec::new();
    if let Some(values) = change.appeared() {
        for plan in plans.lhs_plans(relation) {
            queries.push(ViolationQuery {
                mapping: plan.mapping,
                seed: ViolationSeed::Lhs { atom_index: plan.atom_index, values: values.clone() },
            });
        }
    }
    if let Some(values) = change.vanished() {
        for plan in plans.rhs_plans(relation) {
            queries.push(ViolationQuery {
                mapping: plan.mapping,
                seed: ViolationSeed::Rhs { atom_index: plan.atom_index, values: values.clone() },
            });
        }
    }
    queries
}

/// The uncompiled re-planning path: rediscovers the (mapping, atom) pairs for
/// every change by walking the per-relation mapping indexes and each mapping's
/// atoms. Retained as the reference implementation for differential testing of
/// the compiled-plan cache; production code uses
/// [`violation_queries_for_change`].
pub fn replan_violation_queries_for_change(
    mappings: &MappingSet,
    change: &TupleChange,
) -> Vec<ViolationQuery> {
    let mut queries = Vec::new();
    let mut push_lhs = |values: &TupleData, relation| {
        for &mid in mappings.with_lhs_relation(relation) {
            let tgd = mappings.get(mid);
            for (i, atom) in tgd.lhs.iter().enumerate() {
                if atom.relation == relation {
                    queries.push(ViolationQuery {
                        mapping: mid,
                        seed: ViolationSeed::Lhs { atom_index: i, values: values.clone() },
                    });
                }
            }
        }
    };
    match change {
        TupleChange::Inserted { relation, values, .. } => push_lhs(values, *relation),
        TupleChange::Modified { relation, new, .. } => push_lhs(new, *relation),
        TupleChange::Deleted { .. } => {}
    }
    let mut push_rhs = |values: &TupleData, relation| {
        for &mid in mappings.with_rhs_relation(relation) {
            let tgd = mappings.get(mid);
            for (i, atom) in tgd.rhs.iter().enumerate() {
                if atom.relation == relation {
                    queries.push(ViolationQuery {
                        mapping: mid,
                        seed: ViolationSeed::Rhs { atom_index: i, values: values.clone() },
                    });
                }
            }
        }
    };
    match change {
        TupleChange::Deleted { relation, old, .. } => push_rhs(old, *relation),
        TupleChange::Modified { relation, old, .. } => push_rhs(old, *relation),
        TupleChange::Inserted { .. } => {}
    }
    queries
}

/// Evaluates every violation query for `change`, returning the queries (for
/// read logging) and the distinct violations found.
pub fn violations_from_change(
    view: &dyn DataView,
    mappings: &MappingSet,
    change: &TupleChange,
) -> (Vec<ViolationQuery>, Vec<Violation>) {
    let queries = violation_queries_for_change(mappings, change);
    let mut violations = Vec::new();
    for q in &queries {
        violations.extend(q.evaluate(view, mappings));
    }
    violations.sort();
    violations.dedup();
    (queries, violations)
}

/// All violations of a single mapping on `view`.
pub fn find_all_violations(
    view: &dyn DataView,
    mappings: &MappingSet,
    mapping: MappingId,
) -> Vec<Violation> {
    ViolationQuery { mapping, seed: ViolationSeed::Full }.evaluate(view, mappings)
}

/// All violations of every mapping on `view`.
pub fn find_violations(view: &dyn DataView, mappings: &MappingSet) -> Vec<Violation> {
    let mut out = Vec::new();
    for tgd in mappings.iter() {
        out.extend(find_all_violations(view, mappings, tgd.id));
    }
    out
}

/// Whether the database satisfies every mapping (no violations at all).
pub fn satisfies_all(view: &dyn DataView, mappings: &MappingSet) -> bool {
    mappings.iter().all(|tgd| find_all_violations(view, mappings, tgd.id).is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::{Database, UpdateId, Value, Write};

    /// Builds the Figure 2 repository (relations, mappings and data).
    fn figure2() -> (Database, MappingSet) {
        let mut db = Database::new();
        db.add_relation("C", ["city"]).unwrap();
        db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        db.add_relation("A", ["location", "name"]).unwrap();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        db.add_relation("V", ["city", "convention"]).unwrap();
        db.add_relation("E", ["convention", "attraction"]).unwrap();
        let mut set = MappingSet::new();
        set.add_parsed_many(
            db.catalog(),
            "
            sigma1: C(c) -> exists a, l. S(a, l, c)
            sigma2: S(a, c, c2) -> C(c) & C(c2)
            sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
            sigma4: V(cv, x) & T(n, c, cv) -> E(x, n)
            ",
        )
        .unwrap();

        let u = UpdateId(0);
        db.insert_by_name("C", &["Ithaca"], u);
        db.insert_by_name("C", &["Syracuse"], u);
        db.insert_by_name("S", &["SYR", "Syracuse", "Syracuse"], u);
        db.insert_by_name("S", &["SYR", "Syracuse", "Ithaca"], u);
        db.insert_by_name("A", &["Geneva", "Geneva Winery"], u);
        db.insert_by_name("A", &["Niagara Falls", "Niagara Falls"], u);
        db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], u);
        db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], u);
        db.insert_by_name("V", &["Syracuse", "Science Conf"], u);
        db.insert_by_name("E", &["Science Conf", "Geneva Winery"], u);
        // The second Tours row of Figure 2 contains labeled nulls; add it with
        // its matching review row so the initial database satisfies σ3.
        let x1 = db.fresh_null();
        let x2 = db.fresh_null();
        let t = db.relation_id("T").unwrap();
        let r = db.relation_id("R").unwrap();
        db.apply(
            &Write::Insert {
                relation: t,
                values: vec![
                    Value::constant("Niagara Falls"),
                    Value::Null(x1),
                    Value::constant("Toronto"),
                ],
            },
            u,
        )
        .unwrap();
        db.apply(
            &Write::Insert {
                relation: r,
                values: vec![Value::Null(x1), Value::constant("Niagara Falls"), Value::Null(x2)],
            },
            u,
        )
        .unwrap();
        (db, set)
    }

    #[test]
    fn figure2_satisfies_all_mappings() {
        let (db, set) = figure2();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert!(satisfies_all(&snap, &set));
        assert!(find_violations(&snap, &set).is_empty());
    }

    #[test]
    fn inserting_a_tour_creates_a_lhs_violation_of_sigma3() {
        // Example 1.1: T(Niagara Falls, ABC Tours, …) requires a review.
        let (mut db, set) = figure2();
        let t = db.relation_id("T").unwrap();
        let u = UpdateId(1);
        let changes = db
            .apply(
                &Write::Insert {
                    relation: t,
                    values: vec![
                        Value::constant("Niagara Falls"),
                        Value::constant("ABC Tours"),
                        Value::constant("Buffalo"),
                    ],
                },
                u,
            )
            .unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let (queries, violations) = violations_from_change(&snap, &set, &changes[0]);
        assert!(!queries.is_empty());
        // σ3 (A ∧ T → R) is violated; σ4 is not because there is no convention
        // in Buffalo.
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert_eq!(v.kind, ViolationKind::Lhs);
        assert_eq!(set.get(v.mapping).name, "sigma3");
        assert_eq!(v.witness.len(), 2);
        assert!(v.still_violated(&snap, set.get(v.mapping)));
    }

    #[test]
    fn deleting_a_review_creates_a_rhs_violation_of_sigma3() {
        // Example 2.3: deleting R(XYZ, Geneva Winery, Great!) violates σ3.
        let (mut db, set) = figure2();
        let r = db.relation_id("R").unwrap();
        let review = db
            .scan(r, UpdateId::OMNISCIENT)
            .into_iter()
            .find(|(_, data)| data[0] == Value::constant("XYZ"))
            .map(|(id, _)| id)
            .unwrap();
        let changes = db.apply(&Write::Delete { relation: r, tuple: review }, UpdateId(1)).unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let (_, violations) = violations_from_change(&snap, &set, &changes[0]);
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert_eq!(v.kind, ViolationKind::Rhs);
        assert_eq!(set.get(v.mapping).name, "sigma3");
        // The witness is {A(Geneva, Geneva Winery), T(Geneva Winery, XYZ, Syracuse)}.
        assert_eq!(v.witness.len(), 2);
    }

    #[test]
    fn null_replacement_causes_no_rhs_violations() {
        // Section 2: replacing x1 by "ABC Tours" changes both T and R
        // consistently, so σ3 stays satisfied.
        let (mut db, set) = figure2();
        let x1 = youtopia_storage::NullId(0);
        let changes = db
            .apply(
                &Write::NullReplace { null: x1, replacement: Value::constant("ABC Tours") },
                UpdateId(1),
            )
            .unwrap();
        assert_eq!(changes.len(), 2, "x1 occurs in T and R");
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        for change in &changes {
            let (_, violations) = violations_from_change(&snap, &set, change);
            assert!(violations.is_empty(), "unexpected violations: {violations:?}");
        }
        assert!(satisfies_all(&snap, &set));
    }

    #[test]
    fn still_violated_notices_repairs() {
        let (mut db, set) = figure2();
        let t = db.relation_id("T").unwrap();
        let r = db.relation_id("R").unwrap();
        let u = UpdateId(1);
        let changes = db
            .apply(
                &Write::Insert {
                    relation: t,
                    values: vec![
                        Value::constant("Geneva Winery"),
                        Value::constant("ABC Tours"),
                        Value::constant("Ithaca"),
                    ],
                },
                u,
            )
            .unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let (_, violations) = violations_from_change(&snap, &set, &changes[0]);
        assert_eq!(violations.len(), 1);
        let v = violations[0].clone();
        // Supplying the review repairs σ3: the violation is no longer live.
        db.apply(
            &Write::Insert {
                relation: r,
                values: vec![
                    Value::constant("ABC Tours"),
                    Value::constant("Geneva Winery"),
                    Value::constant("ok"),
                ],
            },
            u,
        )
        .unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert!(!v.still_violated(&snap, set.get(v.mapping)));
    }

    #[test]
    fn still_violated_notices_vanished_witnesses() {
        let (mut db, set) = figure2();
        let t = db.relation_id("T").unwrap();
        let u = UpdateId(1);
        let changes = db
            .apply(
                &Write::Insert {
                    relation: t,
                    values: vec![
                        Value::constant("Geneva Winery"),
                        Value::constant("ABC Tours"),
                        Value::constant("Ithaca"),
                    ],
                },
                u,
            )
            .unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let (_, violations) = violations_from_change(&snap, &set, &changes[0]);
        let v = violations[0].clone();
        // Deleting the freshly inserted tour removes the witness.
        let new_tour = changes[0].tuple();
        db.apply(&Write::Delete { relation: t, tuple: new_tour }, u).unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert!(!v.still_violated(&snap, set.get(v.mapping)));
    }

    #[test]
    fn full_scan_finds_violations() {
        let (mut db, set) = figure2();
        // Add a city without an airport suggestion: violates σ1.
        db.insert_by_name("C", &["Rochester"], UpdateId(1));
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let sigma1 = set.by_name("sigma1").unwrap().id;
        let violations = find_all_violations(&snap, &set, sigma1);
        assert_eq!(violations.len(), 1);
        assert!(!satisfies_all(&snap, &set));
        assert_eq!(find_violations(&snap, &set).len(), 1);
    }

    #[test]
    fn frontier_bindings_restrict_to_shared_variables() {
        let (mut db, set) = figure2();
        let t = db.relation_id("T").unwrap();
        let changes = db
            .apply(
                &Write::Insert {
                    relation: t,
                    values: vec![
                        Value::constant("Niagara Falls"),
                        Value::constant("ABC Tours"),
                        Value::constant("Buffalo"),
                    ],
                },
                UpdateId(1),
            )
            .unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let (_, violations) = violations_from_change(&snap, &set, &changes[0]);
        let v = &violations[0];
        let tgd = set.get(v.mapping);
        let frontier = v.frontier_bindings(tgd);
        assert_eq!(frontier.len(), tgd.frontier_vars().len());
        assert!(v.lhs_bindings.len() > frontier.len());
    }

    #[test]
    fn violation_query_relations_read() {
        let (db, set) = figure2();
        let sigma3 = set.by_name("sigma3").unwrap().id;
        let q = ViolationQuery { mapping: sigma3, seed: ViolationSeed::Full };
        let rels = q.relations_read(&set);
        assert_eq!(rels.len(), 3);
        assert!(rels.contains(&db.relation_id("A").unwrap()));
        assert!(rels.contains(&db.relation_id("T").unwrap()));
        assert!(rels.contains(&db.relation_id("R").unwrap()));
    }

    #[test]
    fn violation_read_relations_cover_witness_and_rhs() {
        let (mut db, set) = figure2();
        let t = db.relation_id("T").unwrap();
        let changes = db
            .apply(
                &Write::Insert {
                    relation: t,
                    values: vec![
                        Value::constant("Niagara Falls"),
                        Value::constant("ABC Tours"),
                        Value::constant("Buffalo"),
                    ],
                },
                UpdateId(1),
            )
            .unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let (_, violations) = violations_from_change(&snap, &set, &changes[0]);
        let v = &violations[0];
        let tgd = set.get(v.mapping);
        let reads = v.read_relations(tgd);
        // σ3 reads A and T (the witness) and R (the NOT EXISTS probe / the
        // forward-repair scan target).
        assert_eq!(reads.len(), 3);
        for name in ["A", "T", "R"] {
            assert!(reads.contains(&db.relation_id(name).unwrap()), "{name} must be read");
        }
    }

    #[test]
    fn seed_that_does_not_match_yields_nothing() {
        let (db, set) = figure2();
        let sigma4 = set.by_name("sigma4").unwrap().id;
        // σ4's first LHS atom is V(cv, x); a seed with arity 3 cannot match.
        let q = ViolationQuery {
            mapping: sigma4,
            seed: ViolationSeed::Lhs {
                atom_index: 0,
                values: vec![Value::constant("a"), Value::constant("b"), Value::constant("c")]
                    .into(),
            },
        };
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert!(q.evaluate(&snap, &set).is_empty());
    }
}
