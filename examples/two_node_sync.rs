//! Two replicated engines converging through state-vector delta sync.
//!
//! Each Youtopia node runs its own [`ExchangeEngine`] over a copy of the
//! Example 3.1 travel fragment. The nodes edit **concurrently while
//! partitioned** — node 0 deletes a review (its backward chase stalls on a
//! negative frontier question, answered locally), node 1 inserts a new tour
//! (its forward chase derives a review with a labeled null) — then the
//! partition heals and gossip rounds exchange exactly the events each side is
//! missing, computed from the peer's state vector.
//!
//! Two guarantees are on display:
//!
//! 1. the frontier question answered on node 0 is *folded* on node 1, never
//!    re-asked — answers travel as replication events alongside submits;
//! 2. after the same events are delivered (in whatever order), both nodes
//!    render **byte-identical** databases. Node 0's fold admitted its delete
//!    before hearing about node 1's concurrent tour, so healing forces it to
//!    rebuild onto the canonical Lamport order — visible in the rebuild count.
//!
//! Run with `cargo run --example two_node_sync`.

use youtopia::replication::{LinkFaults, ReplicaSet, Topology};
use youtopia::{Database, InitialOp, MappingSet, RandomResolver, UpdateId, Value};

fn travel_fragment() -> (Database, MappingSet) {
    let mut db = Database::new();
    db.add_relation("A", ["location", "name"]).unwrap();
    db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
    db.add_relation("R", ["company", "attraction", "review"]).unwrap();
    let mut mappings = MappingSet::new();
    mappings
        .add_parsed(db.catalog(), "sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)")
        .unwrap();
    let u = UpdateId(0);
    db.insert_by_name("A", &["Geneva", "Geneva Winery"], u);
    db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], u);
    db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], u);
    (db, mappings)
}

fn main() {
    let (db, mappings) = travel_fragment();
    let review_rel = db.relation_id("R").unwrap();
    let tour_rel = db.relation_id("T").unwrap();
    let review =
        db.scan(review_rel, UpdateId::OMNISCIENT).into_iter().map(|(id, _)| id).next().unwrap();

    // Two nodes over identical genesis bytes, faultless full-mesh links.
    let mut set = ReplicaSet::new(2, Topology::FullMesh, LinkFaults::default(), 7, db, mappings);

    // Sever the link: both sides keep editing, neither hears the other.
    set.partition(0, 1);
    println!("partitioned: node 0 <-x-> node 1");

    // Node 0: delete the XYZ review. sigma3 still derives it, so the
    // backward chase stalls on a negative frontier (drop the attraction or
    // the tour?) — answered locally, recorded as a replication event.
    let stamp0 = set.submit(0, InitialOp::Delete { relation: review_rel, tuple: review }).unwrap();
    println!("node 0 submitted delete as {stamp0}");
    let questions = set.node(0).engine().pending_frontiers().len();
    println!("node 0 stalled on {questions} frontier question(s); answering locally");
    let mut resolver = RandomResolver::seeded(41);
    set.node_mut(0).answer_pending(&mut resolver).unwrap();
    assert!(set.node(0).settled().unwrap());

    // Node 1, concurrently: a new tour of the winery. The forward chase
    // derives a review with a labeled null — no question to ask.
    let stamp1 = set
        .submit(
            1,
            InitialOp::Insert {
                relation: tour_rel,
                values: vec![
                    Value::constant("Geneva Winery"),
                    Value::constant("NewCo"),
                    Value::constant("Ithaca"),
                ],
            },
        )
        .unwrap();
    println!("node 1 submitted insert as {stamp1}");

    let svs = set.state_vectors().unwrap();
    println!("diverged state vectors: node 0 {}, node 1 {}", svs[0], svs[1]);

    // Heal and gossip until settled. Node 1 receives node 0's submit AND its
    // recorded answer in one batch: the question is folded, never re-asked.
    set.heal();
    println!("healed; gossiping...");
    let rounds = set.converge(99, 32).unwrap();
    assert!(
        set.node(1).engine().pending_frontiers().is_empty(),
        "node 1 must fold the recorded answer, not re-ask"
    );

    set.assert_identical();
    let svs = set.state_vectors().unwrap();
    assert_eq!(svs[0], svs[1]);
    println!(
        "converged in {rounds} round(s): state vector {}, {} rebuild(s), {} identical bytes",
        svs[0],
        set.total_rebuilds(),
        set.node(0).rendered().len()
    );
}
