//! Durability for the [`ExchangeEngine`](crate::ExchangeEngine): write-ahead
//! log records, engine snapshots and the recovery decoder.
//!
//! The engine's only sources of externally-visible nondeterminism are the
//! operations users submit (with the `UpdateId`s assigned at admission) and
//! the frontier answers they give. Everything else — chase order, conflict
//! aborts, token assignment, metrics — is a deterministic function of those
//! two streams under the deterministic sequencer. The WAL therefore logs
//! exactly submissions and answers, each stamped with the sequencer's *action
//! counter* at the moment the event was admitted, so recovery can interleave
//! replayed events with re-executed chase work at exactly the original
//! points. A header record carries a fingerprint of the engine configuration
//! and mapping set (replaying against a different configuration would silently
//! diverge) plus the number of records already folded into the newest
//! snapshot.
//!
//! Snapshots are taken at quiescence only, which is what keeps them small and
//! simple: every retained slot is terminal (terminated or failed), so a slot
//! serializes as its id, initial operation, counters and terminal state — no
//! mid-chase violation queues, no pending writes. The database itself uses
//! [`youtopia_storage::wal::serialize_database`].

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::Mutex;

use youtopia_core::{
    decode_chase_error, decode_decision, decode_initial_op, encode_chase_error, encode_decision,
    encode_initial_op, ChaseError, FrontierDecision, InitialOp, ResolutionOrigin, UpdateStats,
};
use youtopia_mappings::MappingSet;
use youtopia_storage::wal::{ByteReader, ByteWriter, Fnv64, WalError, WalWriter};
use youtopia_storage::{deserialize_database, serialize_database, Database};

use crate::engine::EngineConfig;
use crate::metrics::RunMetrics;

const WAL_MAGIC: u32 = 0x4C41_5759; // "YWAL" little-endian
const SNAPSHOT_MAGIC: u32 = 0x504E_5359; // "YSNP" little-endian

// Version 2: `Answer` records carry a `ResolutionOrigin` byte (after the
// stamp, so stamp-scrubbing tooling is unaffected) and snapshots persist the
// replay-stable `auto_resolutions` counter.
const FORMAT_VERSION: u32 = 2;

/// Where and how often a durable engine persists its state.
///
/// Passed to [`ExchangeEngine::new_durable`](crate::ExchangeEngine::new_durable)
/// and [`ExchangeEngine::recover`](crate::ExchangeEngine::recover). The
/// directory holds two files: `wal.log` (the record log) and `snapshot.bin`
/// (the newest quiescence snapshot).
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding the log and snapshot files (created if missing).
    pub dir: PathBuf,
    /// Snapshot cadence: once at least this many WAL records have accumulated
    /// past the newest snapshot, the next quiescence point writes a new
    /// snapshot and truncates the log. Lower values bound recovery time;
    /// higher values bound snapshot I/O.
    pub snapshot_every: u64,
    /// Group-commit window: how many WAL appends may share one `fdatasync`.
    /// The default of 1 syncs every record (strict durability); a larger
    /// window amortises the flush and bounds crash loss to the last
    /// `group_commit − 1` records plus one torn tail — recovery's prefix rule
    /// handles both identically. Excluded from the config fingerprint: it
    /// changes when records hit disk, never what replay computes.
    pub group_commit: usize,
}

impl DurabilityConfig {
    /// Durability under `dir` with the default snapshot cadence (256 records)
    /// and fsync-per-record durability.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig { dir: dir.into(), snapshot_every: 256, group_commit: 1 }
    }

    /// Replaces the snapshot cadence.
    pub fn with_snapshot_every(mut self, records: u64) -> DurabilityConfig {
        self.snapshot_every = records.max(1);
        self
    }

    /// Replaces the group-commit window (clamped to at least 1; 1 restores
    /// fsync-per-record).
    pub fn with_group_commit(mut self, window: usize) -> DurabilityConfig {
        self.group_commit = window.max(1);
        self
    }

    /// Path of the record log.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    /// Path of the newest snapshot.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.bin")
    }
}

/// Why recovery (or durable construction) failed.
#[derive(Debug)]
pub enum RecoveryError {
    /// A log or snapshot file could not be read, written or decoded.
    Wal(WalError),
    /// The snapshot or log was written by an engine with a different
    /// configuration or mapping set; replaying would silently diverge.
    ConfigMismatch {
        /// Fingerprint of the recovering engine's configuration.
        expected: u64,
        /// Fingerprint found in the durable state.
        found: u64,
    },
    /// The durable state is internally inconsistent (missing header, records
    /// out of order, snapshot behind the log's base).
    Corrupt(String),
    /// Deterministic replay could not reproduce the logged run (the strongest
    /// sign the files belong to a different history).
    Replay(String),
    /// Durability requires the deterministic sequencer: a free-running
    /// engine's interleaving is not a function of the logged events, so its
    /// log could not be replayed. Configure deterministic or inline mode.
    FreeRunningUnsupported,
    /// Durability and replication are mutually exclusive for now: a replica's
    /// history is a function of its replicated event logs, not of a local
    /// WAL, and recovering one without the other would desynchronise the
    /// node. WAL-shipping (one log serving both roles) is the planned
    /// follow-on.
    ReplicatedUnsupported,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Wal(e) => write!(f, "durable state unreadable: {e}"),
            RecoveryError::ConfigMismatch { expected, found } => write!(
                f,
                "config fingerprint mismatch: engine {expected:#018x}, durable state {found:#018x}"
            ),
            RecoveryError::Corrupt(msg) => write!(f, "durable state inconsistent: {msg}"),
            RecoveryError::Replay(msg) => write!(f, "deterministic replay diverged: {msg}"),
            RecoveryError::FreeRunningUnsupported => {
                write!(f, "durability requires the deterministic sequencer (or inline mode)")
            }
            RecoveryError::ReplicatedUnsupported => {
                write!(f, "durability and replication are mutually exclusive (WAL-shipping is the planned marriage)")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<WalError> for RecoveryError {
    fn from(e: WalError) -> RecoveryError {
        RecoveryError::Wal(e)
    }
}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> RecoveryError {
        RecoveryError::Wal(WalError::Io(e))
    }
}

/// Fingerprint of everything replay determinism depends on: the scheduler
/// knobs that steer the sequencer, the id assignment base, the per-update
/// budget, the frontier escalation policy (a system auto-resolution in the
/// log only replays correctly against the policy that produced it) and the
/// mapping set. Deliberately excludes the worker count (the determinism suite
/// pins worker-count independence), the admission cap and client fair-share
/// state (rejected submissions never reach the log) and the retention horizon
/// (eviction changes lookups, never chase behaviour).
pub(crate) fn config_fingerprint(config: &EngineConfig, mappings: &MappingSet) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("youtopia-engine-wal-v1");
    h.write_str(&format!("{:?}", config.scheduler.tracker));
    h.write_str(&format!("{:?}", config.scheduler.policy));
    h.write_str(&format!("{:?}", config.scheduler.chase_mode));
    h.write_u64(config.scheduler.frontier_delay_rounds as u64);
    h.write_u64(config.scheduler.max_total_steps as u64);
    h.write_u64(config.first_update_number);
    h.write_u64(config.max_steps_per_update as u64);
    h.write_str(&format!("{:?}", config.escalation));
    h.write_str(&format!("{mappings:?}"));
    h.finish()
}

/// The engine-side durable state hanging off `EngineShared`.
pub(crate) struct DurableEngineState {
    pub(crate) config: DurabilityConfig,
    pub(crate) fingerprint: u64,
    pub(crate) wal: Mutex<WalWriter>,
    /// Records ever logged (including those folded into snapshots).
    pub(crate) records: AtomicU64,
    /// Records covered by the newest snapshot.
    pub(crate) last_snapshot: AtomicU64,
    /// The sequencer's action counter: bumped on every acting sequencer step
    /// and on every frontier publish. Submissions and answers are stamped
    /// with it so replay reproduces the original interleaving of logged
    /// events and re-executed chase work.
    pub(crate) actions: AtomicU64,
    /// Set during recovery replay: suppresses snapshot writing (the log is
    /// being read) — replayed events are injected directly and never
    /// re-appended.
    pub(crate) replaying: AtomicBool,
}

// ---------------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------------

/// One decoded WAL record. Exposed (with [`decode_record`]) so external
/// tooling and tests can inspect or re-feed a log's contents; the engine's
/// recovery path consumes the same representation.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// First record of every log file.
    Header {
        /// The writing engine's configuration fingerprint.
        fingerprint: u64,
        /// Records folded into the snapshot that was newest when this log was
        /// (re)started; the following record is number `base_records`.
        base_records: u64,
    },
    /// A submitted batch: consecutive ids starting at `first`.
    Submit {
        /// Priority number assigned to the first update of the batch.
        first: u64,
        /// Sequencer action counter at admission.
        stamp: u64,
        /// The batch's initial operations, in submission order.
        ops: Vec<InitialOp>,
    },
    /// A frontier answer.
    Answer {
        /// The raw frontier token the answer resolved.
        token: u64,
        /// Sequencer action counter at application.
        stamp: u64,
        /// The decision that was applied.
        decision: FrontierDecision,
        /// Who decided: a human (`answer`) or the lifecycle sweeper
        /// (`AutoResolve` escalation). Replay applies the decision
        /// identically either way — the origin keeps reports honest and
        /// makes the `auto_resolutions` counter replay-stable.
        origin: ResolutionOrigin,
    },
}

const REC_HEADER: u8 = 0;
const REC_SUBMIT: u8 = 1;
const REC_ANSWER: u8 = 2;

pub(crate) fn encode_header(fingerprint: u64, base_records: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(REC_HEADER);
    w.put_u32(WAL_MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u64(fingerprint);
    w.put_u64(base_records);
    w.into_bytes()
}

pub(crate) fn encode_submit(first: u64, stamp: u64, ops: &[InitialOp]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(REC_SUBMIT);
    w.put_u64(first);
    w.put_u64(stamp);
    w.put_u32(ops.len() as u32);
    for op in ops {
        encode_initial_op(op, &mut w);
    }
    w.into_bytes()
}

pub(crate) fn encode_answer(
    token: u64,
    stamp: u64,
    decision: &FrontierDecision,
    origin: ResolutionOrigin,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(REC_ANSWER);
    w.put_u64(token);
    w.put_u64(stamp);
    // Origin sits after the stamp: byte offsets 9..17 of an answer payload
    // stay the stamp, which stamp-scrubbing comparison tooling relies on.
    w.put_u8(match origin {
        ResolutionOrigin::Human => 0,
        ResolutionOrigin::System => 1,
    });
    encode_decision(decision, &mut w);
    w.into_bytes()
}

/// Decodes one WAL record payload (as returned by
/// `youtopia_storage::wal::read_wal`) into its [`WalRecord`] form.
pub fn decode_record(payload: &[u8]) -> Result<WalRecord, RecoveryError> {
    let mut r = ByteReader::new(payload);
    let record = match r.take_u8()? {
        REC_HEADER => {
            if r.take_u32()? != WAL_MAGIC {
                return Err(RecoveryError::Corrupt("bad wal magic".into()));
            }
            let version = r.take_u32()?;
            if version != FORMAT_VERSION {
                return Err(RecoveryError::Corrupt(format!("unsupported wal version {version}")));
            }
            WalRecord::Header { fingerprint: r.take_u64()?, base_records: r.take_u64()? }
        }
        REC_SUBMIT => {
            let first = r.take_u64()?;
            let stamp = r.take_u64()?;
            let count = r.take_u32()?;
            let mut ops = Vec::with_capacity(count as usize);
            for _ in 0..count {
                ops.push(decode_initial_op(&mut r)?);
            }
            WalRecord::Submit { first, stamp, ops }
        }
        REC_ANSWER => {
            let token = r.take_u64()?;
            let stamp = r.take_u64()?;
            let origin = match r.take_u8()? {
                0 => ResolutionOrigin::Human,
                1 => ResolutionOrigin::System,
                tag => {
                    return Err(RecoveryError::Corrupt(format!("unknown origin tag {tag}")));
                }
            };
            WalRecord::Answer { token, stamp, decision: decode_decision(&mut r)?, origin }
        }
        tag => return Err(RecoveryError::Corrupt(format!("unknown wal record tag {tag}"))),
    };
    r.expect_done()?;
    Ok(record)
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// What a snapshot retains about one slot. Snapshots happen at quiescence, so
/// every summarised slot is terminal; `failed` is `None` for terminated slots
/// and holds the budget error otherwise.
pub(crate) struct SlotSummary {
    pub(crate) id: u64,
    pub(crate) initial: InitialOp,
    pub(crate) stats: UpdateStats,
    pub(crate) terminated: bool,
    pub(crate) failed: Option<ChaseError>,
}

/// Engine state alongside the database in a snapshot.
pub(crate) struct SnapshotMeta {
    pub(crate) fingerprint: u64,
    /// WAL records folded into this snapshot.
    pub(crate) records: u64,
    /// The sequencer action counter at snapshot time.
    pub(crate) actions: u64,
    pub(crate) next_token: u64,
    /// Slots evicted by compaction before the snapshot (restored lookups
    /// below this index report `SlotEvicted`).
    pub(crate) slot_base: u64,
    pub(crate) slots: Vec<SlotSummary>,
    pub(crate) metrics: RunMetrics,
}

fn encode_stats(stats: &UpdateStats, w: &mut ByteWriter) {
    w.put_u64(stats.steps as u64);
    w.put_u64(stats.frontier_ops as u64);
    w.put_u64(stats.changes as u64);
    w.put_u64(stats.violations_seen as u64);
    w.put_u64(stats.restarts as u64);
}

fn decode_stats(r: &mut ByteReader<'_>) -> Result<UpdateStats, WalError> {
    Ok(UpdateStats {
        steps: r.take_u64()? as usize,
        frontier_ops: r.take_u64()? as usize,
        changes: r.take_u64()? as usize,
        violations_seen: r.take_u64()? as usize,
        restarts: r.take_u64()? as usize,
    })
}

pub(crate) fn encode_snapshot(meta: &SnapshotMeta, db: &Database) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(SNAPSHOT_MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u64(meta.fingerprint);
    w.put_u64(meta.records);
    w.put_u64(meta.actions);
    w.put_u64(meta.next_token);
    w.put_u64(meta.slot_base);
    let m = &meta.metrics;
    for counter in [
        m.workload_size,
        m.aborts,
        m.direct_conflict_requests,
        m.cascading_abort_requests,
        m.steps,
        m.frontier_ops,
        m.changes,
        // Replay-stable (recounted from logged answer origins), unlike the
        // speculation counters and `re_asks` — those restart at zero.
        m.auto_resolutions,
    ] {
        w.put_u64(counter as u64);
    }
    w.put_u32(meta.slots.len() as u32);
    for slot in &meta.slots {
        w.put_u64(slot.id);
        encode_initial_op(&slot.initial, &mut w);
        encode_stats(&slot.stats, &mut w);
        w.put_u8(slot.terminated as u8);
        match &slot.failed {
            None => w.put_u8(0),
            Some(error) => {
                w.put_u8(1);
                encode_chase_error(error, &mut w);
            }
        }
    }
    let db_bytes = serialize_database(db);
    w.put_u64(db_bytes.len() as u64);
    w.put_raw(&db_bytes);
    w.into_bytes()
}

pub(crate) fn decode_snapshot(bytes: &[u8]) -> Result<(SnapshotMeta, Database), RecoveryError> {
    let mut r = ByteReader::new(bytes);
    if r.take_u32()? != SNAPSHOT_MAGIC {
        return Err(RecoveryError::Corrupt("bad snapshot magic".into()));
    }
    let version = r.take_u32()?;
    if version != FORMAT_VERSION {
        return Err(RecoveryError::Corrupt(format!("unsupported snapshot version {version}")));
    }
    let fingerprint = r.take_u64()?;
    let records = r.take_u64()?;
    let actions = r.take_u64()?;
    let next_token = r.take_u64()?;
    let slot_base = r.take_u64()?;
    let mut counters = [0usize; 8];
    for c in counters.iter_mut() {
        *c = r.take_u64()? as usize;
    }
    let metrics = RunMetrics {
        workload_size: counters[0],
        aborts: counters[1],
        direct_conflict_requests: counters[2],
        cascading_abort_requests: counters[3],
        steps: counters[4],
        frontier_ops: counters[5],
        changes: counters[6],
        auto_resolutions: counters[7],
        wall_time: std::time::Duration::ZERO,
        // Speculation counters and `re_asks` are wall-clock observability,
        // not replayed state: like wall_time they restart at zero after a
        // recovery.
        ..RunMetrics::default()
    };
    let slot_count = r.take_u32()?;
    let mut slots = Vec::with_capacity(slot_count as usize);
    for _ in 0..slot_count {
        let id = r.take_u64()?;
        let initial = decode_initial_op(&mut r)?;
        let stats = decode_stats(&mut r)?;
        let terminated = r.take_u8()? != 0;
        let failed = match r.take_u8()? {
            0 => None,
            1 => Some(decode_chase_error(&mut r)?),
            tag => return Err(RecoveryError::Corrupt(format!("unknown failure tag {tag}"))),
        };
        slots.push(SlotSummary { id, initial, stats, terminated, failed });
    }
    let db_len = r.take_u64()? as usize;
    if r.remaining() != db_len {
        return Err(RecoveryError::Corrupt(format!(
            "database section is {} bytes, header says {db_len}",
            r.remaining()
        )));
    }
    let db = deserialize_database(&bytes[bytes.len() - db_len..])?;
    let meta =
        SnapshotMeta { fingerprint, records, actions, next_token, slot_base, slots, metrics };
    Ok((meta, db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::{RelationId, UpdateId, Value};

    #[test]
    fn wal_records_roundtrip() {
        let ops = vec![
            InitialOp::Insert { relation: RelationId(1), values: vec![Value::constant("a")] },
            InitialOp::Delete { relation: RelationId(0), tuple: youtopia_storage::TupleId(4) },
        ];
        let bytes = encode_submit(100, 42, &ops);
        match decode_record(&bytes).unwrap() {
            WalRecord::Submit { first, stamp, ops: decoded } => {
                assert_eq!(first, 100);
                assert_eq!(stamp, 42);
                assert_eq!(decoded, ops);
            }
            _ => panic!("wrong record kind"),
        }

        let decision = FrontierDecision::Negative(vec![youtopia_storage::TupleId(9)]);
        let bytes = encode_answer(7, 13, &decision, ResolutionOrigin::Human);
        match decode_record(&bytes).unwrap() {
            WalRecord::Answer { token, stamp, decision: decoded, origin } => {
                assert_eq!(token, 7);
                assert_eq!(stamp, 13);
                assert_eq!(decoded, decision);
                assert_eq!(origin, ResolutionOrigin::Human);
            }
            _ => panic!("wrong record kind"),
        }
        let bytes = encode_answer(8, 21, &decision, ResolutionOrigin::System);
        match decode_record(&bytes).unwrap() {
            WalRecord::Answer { origin, .. } => assert_eq!(origin, ResolutionOrigin::System),
            _ => panic!("wrong record kind"),
        }

        let bytes = encode_header(0xFEED, 31);
        match decode_record(&bytes).unwrap() {
            WalRecord::Header { fingerprint, base_records } => {
                assert_eq!(fingerprint, 0xFEED);
                assert_eq!(base_records, 31);
            }
            _ => panic!("wrong record kind"),
        }
        assert!(decode_record(&[99]).is_err());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut db = Database::new();
        db.add_relation("R", ["a"]).unwrap();
        db.insert_by_name("R", &["v"], UpdateId(5));
        let meta = SnapshotMeta {
            fingerprint: 0xABCD,
            records: 17,
            actions: 99,
            next_token: 3,
            slot_base: 2,
            slots: vec![
                SlotSummary {
                    id: 7,
                    initial: InitialOp::Insert {
                        relation: RelationId(0),
                        values: vec![Value::constant("x")],
                    },
                    stats: UpdateStats { steps: 4, restarts: 1, ..UpdateStats::default() },
                    terminated: true,
                    failed: None,
                },
                SlotSummary {
                    id: 8,
                    initial: InitialOp::Delete {
                        relation: RelationId(0),
                        tuple: youtopia_storage::TupleId(0),
                    },
                    stats: UpdateStats::default(),
                    terminated: false,
                    failed: Some(ChaseError::StepLimitExceeded { update: UpdateId(8), limit: 5 }),
                },
            ],
            metrics: RunMetrics {
                steps: 11,
                aborts: 2,
                auto_resolutions: 3,
                re_asks: 5,
                ..RunMetrics::default()
            },
        };
        let bytes = encode_snapshot(&meta, &db);
        let (decoded, db2) = decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded.fingerprint, 0xABCD);
        assert_eq!(decoded.records, 17);
        assert_eq!(decoded.actions, 99);
        assert_eq!(decoded.next_token, 3);
        assert_eq!(decoded.slot_base, 2);
        assert_eq!(decoded.metrics.steps, 11);
        assert_eq!(decoded.metrics.aborts, 2);
        assert_eq!(decoded.metrics.auto_resolutions, 3, "auto-resolutions survive the snapshot");
        assert_eq!(decoded.metrics.re_asks, 0, "re-asks restart at zero, like speculation");
        assert_eq!(decoded.slots.len(), 2);
        assert_eq!(decoded.slots[0].id, 7);
        assert!(decoded.slots[0].terminated);
        assert_eq!(decoded.slots[0].stats.steps, 4);
        assert!(matches!(
            decoded.slots[1].failed,
            Some(ChaseError::StepLimitExceeded { limit: 5, .. })
        ));
        assert_eq!(
            serialize_database(&db2),
            serialize_database(&db),
            "database survives the snapshot byte-identically"
        );
        assert!(decode_snapshot(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let mappings = MappingSet::default();
        let a = config_fingerprint(&EngineConfig::default(), &mappings);
        let b =
            config_fingerprint(&EngineConfig::default().with_first_update_number(50), &mappings);
        assert_ne!(a, b);
        let c = config_fingerprint(&EngineConfig::default(), &mappings);
        assert_eq!(a, c, "fingerprint is stable");
    }

    #[test]
    fn fingerprint_distinguishes_escalation_policies() {
        use youtopia_core::{AutoDecision, EscalationPolicy};
        let mappings = MappingSet::default();
        let wait = config_fingerprint(&EngineConfig::default(), &mappings);
        let re_ask = config_fingerprint(
            &EngineConfig::default().with_escalation_policy(EscalationPolicy::ReAsk { after: 3 }),
            &mappings,
        );
        let auto = config_fingerprint(
            &EngineConfig::default().with_escalation_policy(EscalationPolicy::AutoResolve {
                after: 3,
                decision: AutoDecision::ExpandOrDeleteFirst,
            }),
            &mappings,
        );
        assert_ne!(wait, re_ask, "a re-ask log is not a wait log");
        assert_ne!(wait, auto);
        assert_ne!(re_ask, auto);
    }
}
