//! Initial database population (Section 6).
//!
//! "Generating the initial database is performed using our update exchange
//! techniques themselves, with simulated user interaction … We generate ten
//! thousand initial tuples. The relations receiving those tuples are chosen
//! uniformly at random, and the attribute values come from the same set of
//! constants that was used in mapping generation. … each insertion sets off a
//! forward chase which only ends when all constraints are satisfied."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use youtopia_concurrency::UpdateExchange;
use youtopia_core::{ChaseError, InitialOp, RandomResolver};
use youtopia_mappings::MappingSet;
use youtopia_storage::{Database, UpdateId};

use crate::config::ExperimentConfig;
use crate::schema_gen::GeneratedSchema;

/// Summary of the initial-database generation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InitialDataStats {
    /// User-level insertions performed (the paper's 10 000).
    pub seed_inserts: usize,
    /// Total tuples visible in the database afterwards (seed inserts plus
    /// everything the chases generated).
    pub total_tuples: usize,
    /// Chase steps executed while populating.
    pub chase_steps: usize,
    /// Frontier operations answered by the simulated user.
    pub frontier_ops: usize,
}

/// Populates the database with `config.initial_tuples` seed insertions, each
/// run through the full cooperative chase against **all** generated mappings,
/// with a seeded [`RandomResolver`] playing the user. The resulting database
/// satisfies every mapping.
pub fn generate_initial_database(
    config: &ExperimentConfig,
    schema: &GeneratedSchema,
    mappings: &MappingSet,
) -> Result<(Database, InitialDataStats), ChaseError> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0xA24B_AED4).wrapping_add(3));
    let mut resolver = RandomResolver::seeded(config.seed.wrapping_add(0xF00D));
    let mut exchange = UpdateExchange::new(schema.db.clone(), mappings.clone());
    let mut stats = InitialDataStats::default();

    let relation_ids: Vec<_> = schema.db.catalog().relation_ids().collect();
    for _ in 0..config.initial_tuples {
        let relation = relation_ids[rng.gen_range(0..relation_ids.len())];
        let arity = schema.db.schema(relation).arity();
        let values = (0..arity).map(|_| schema.random_constant(&mut rng)).collect();
        let report = exchange.run_update(InitialOp::Insert { relation, values }, &mut resolver)?;
        stats.seed_inserts += 1;
        stats.chase_steps += report.stats.steps;
        stats.frontier_ops += report.stats.frontier_ops;
    }
    debug_assert!(exchange.is_consistent());
    let (db, _) = exchange.into_parts();
    stats.total_tuples = db.total_visible(UpdateId::OMNISCIENT);
    Ok((db, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping_gen::generate_mappings;
    use crate::schema_gen::generate_schema;
    use youtopia_mappings::satisfies_all;

    #[test]
    fn initial_database_satisfies_all_mappings() {
        let config = ExperimentConfig::tiny();
        let schema = generate_schema(&config);
        let mappings = generate_mappings(&config, &schema);
        let (db, stats) = generate_initial_database(&config, &schema, &mappings).unwrap();
        assert_eq!(stats.seed_inserts, config.initial_tuples);
        assert!(stats.total_tuples >= config.initial_tuples);
        assert!(satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), &mappings));
    }

    #[test]
    fn population_is_deterministic_under_the_seed() {
        let config = ExperimentConfig::tiny();
        let schema = generate_schema(&config);
        let mappings = generate_mappings(&config, &schema);
        let (db1, s1) = generate_initial_database(&config, &schema, &mappings).unwrap();
        let (db2, s2) = generate_initial_database(&config, &schema, &mappings).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(
            db1.total_visible(UpdateId::OMNISCIENT),
            db2.total_visible(UpdateId::OMNISCIENT)
        );
    }

    #[test]
    fn chases_do_fire_during_population() {
        // With any non-trivial mapping set, some seed inserts must trigger
        // corrective chase activity (steps beyond the initial write).
        let config = ExperimentConfig::tiny();
        let schema = generate_schema(&config);
        let mappings = generate_mappings(&config, &schema);
        let (_, stats) = generate_initial_database(&config, &schema, &mappings).unwrap();
        assert!(stats.chase_steps > stats.seed_inserts, "{stats:?}");
    }
}
