//! Metrics collected by a concurrent run — the quantities plotted in
//! Figures 3 and 4 of the paper.

use std::time::Duration;

/// Counters and timings for one concurrent execution of a workload.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// Number of updates in the original workload.
    pub workload_size: usize,
    /// Total number of aborts **performed** during the run (first graph of
    /// Figures 3 and 4). Every abort causes the update to restart, so the
    /// total number of update executions is `workload_size + aborts`.
    pub aborts: usize,
    /// Abort requests raised because a write retroactively changed the answer
    /// of a stored read query (a *genuine* conflict).
    pub direct_conflict_requests: usize,
    /// Abort requests raised purely through the read-dependency cascade, i.e.
    /// for updates "not in direct conflict with a just-performed write"
    /// (second graph of Figures 3 and 4).
    pub cascading_abort_requests: usize,
    /// Chase steps executed across all updates (including restarted ones).
    pub steps: usize,
    /// Frontier operations performed by the (simulated) users.
    pub frontier_ops: usize,
    /// Tuple-level changes written.
    pub changes: usize,
    /// Chase steps the deterministic engine pre-executed speculatively
    /// (see `SpeculationMode`). Zero outside speculative mode.
    pub speculations_started: usize,
    /// Speculations whose read sets validated at commit time and whose
    /// buffered outcomes were committed without re-execution.
    pub speculations_committed: usize,
    /// Speculations invalidated by an earlier commit (or failed outright) and
    /// discarded; the step re-executed at the sequencer. The discard *rate* is
    /// `speculations_discarded / speculations_started`.
    pub speculations_discarded: usize,
    /// Frontier requests the lifecycle sweeper re-published at higher
    /// priority (`EscalationPolicy::ReAsk`). Live observability only: re-asks
    /// are not WAL-logged, so the counter restarts at zero after recovery
    /// (like the speculation counters).
    pub re_asks: usize,
    /// Frontier requests the system answered on deadline expiry
    /// (`EscalationPolicy::AutoResolve`). Counted from the answer's logged
    /// `ResolutionOrigin`, so recovery replay reproduces it exactly; included
    /// in `frontier_ops` as well (an auto-resolution *is* a frontier op).
    pub auto_resolutions: usize,
    /// Wall-clock time of the whole run.
    pub wall_time: Duration,
}

impl RunMetrics {
    /// Total number of update executions: the original workload plus one
    /// execution per abort (the paper divides run time by this quantity).
    pub fn updates_run(&self) -> usize {
        self.workload_size + self.aborts
    }

    /// Per-update execution time — the quantity whose ratio between `PRECISE`
    /// and `COARSE` is reported as the *slowdown* in the third graph of
    /// Figures 3 and 4.
    pub fn per_update_time(&self) -> Duration {
        if self.updates_run() == 0 {
            Duration::ZERO
        } else {
            self.wall_time / self.updates_run() as u32
        }
    }

    /// Merges another run's metrics into this one (used when averaging over
    /// repeated runs).
    pub fn accumulate(&mut self, other: &RunMetrics) {
        self.workload_size += other.workload_size;
        self.aborts += other.aborts;
        self.direct_conflict_requests += other.direct_conflict_requests;
        self.cascading_abort_requests += other.cascading_abort_requests;
        self.steps += other.steps;
        self.frontier_ops += other.frontier_ops;
        self.changes += other.changes;
        self.speculations_started += other.speculations_started;
        self.speculations_committed += other.speculations_committed;
        self.speculations_discarded += other.speculations_discarded;
        self.re_asks += other.re_asks;
        self.auto_resolutions += other.auto_resolutions;
        self.wall_time += other.wall_time;
    }

    /// Divides every counter by `n`, producing per-run averages.
    pub fn averaged(&self, n: usize) -> AveragedMetrics {
        let n = n.max(1) as f64;
        AveragedMetrics {
            aborts: self.aborts as f64 / n,
            direct_conflict_requests: self.direct_conflict_requests as f64 / n,
            cascading_abort_requests: self.cascading_abort_requests as f64 / n,
            steps: self.steps as f64 / n,
            frontier_ops: self.frontier_ops as f64 / n,
            changes: self.changes as f64 / n,
            wall_time_secs: self.wall_time.as_secs_f64() / n,
            per_update_time_secs: {
                let runs = self.updates_run() as f64;
                if runs == 0.0 {
                    0.0
                } else {
                    self.wall_time.as_secs_f64() / runs
                }
            },
        }
    }
}

/// Per-run averages over a series of repeated runs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AveragedMetrics {
    /// Average number of aborts per run.
    pub aborts: f64,
    /// Average number of direct-conflict abort requests per run.
    pub direct_conflict_requests: f64,
    /// Average number of cascading abort requests per run.
    pub cascading_abort_requests: f64,
    /// Average number of chase steps per run.
    pub steps: f64,
    /// Average number of frontier operations per run.
    pub frontier_ops: f64,
    /// Average number of tuple changes per run.
    pub changes: f64,
    /// Average wall-clock seconds per run.
    pub wall_time_secs: f64,
    /// Average per-update execution time in seconds (total time over total
    /// update executions, as in Section 6).
    pub per_update_time_secs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_run_counts_restarts() {
        let m = RunMetrics { workload_size: 500, aborts: 70, ..RunMetrics::default() };
        assert_eq!(m.updates_run(), 570);
    }

    #[test]
    fn per_update_time_divides_by_executions() {
        let m = RunMetrics {
            workload_size: 10,
            aborts: 10,
            wall_time: Duration::from_secs(20),
            ..RunMetrics::default()
        };
        assert_eq!(m.per_update_time(), Duration::from_secs(1));
        let empty = RunMetrics::default();
        assert_eq!(empty.per_update_time(), Duration::ZERO);
    }

    #[test]
    fn accumulate_and_average() {
        let mut total = RunMetrics::default();
        for _ in 0..4 {
            total.accumulate(&RunMetrics {
                workload_size: 100,
                aborts: 8,
                direct_conflict_requests: 6,
                cascading_abort_requests: 2,
                steps: 1000,
                frontier_ops: 50,
                changes: 400,
                speculations_started: 12,
                speculations_committed: 9,
                speculations_discarded: 3,
                re_asks: 2,
                auto_resolutions: 1,
                wall_time: Duration::from_millis(500),
            });
        }
        assert_eq!(total.aborts, 32);
        assert_eq!(total.speculations_started, 48);
        assert_eq!(total.speculations_committed, 36);
        assert_eq!(total.speculations_discarded, 12);
        assert_eq!(total.re_asks, 8);
        assert_eq!(total.auto_resolutions, 4);
        let avg = total.averaged(4);
        assert!((avg.aborts - 8.0).abs() < 1e-9);
        assert!((avg.cascading_abort_requests - 2.0).abs() < 1e-9);
        assert!((avg.wall_time_secs - 0.5).abs() < 1e-9);
        assert!(avg.per_update_time_secs > 0.0);
    }
}
