//! Values stored in a Youtopia repository.
//!
//! A Youtopia database contains two kinds of values (Section 2 of the paper):
//!
//! * **constants**, which we intern into cheap [`Symbol`] handles, and
//! * **labeled nulls** (also called *variables* in the paper), identified by a
//!   [`NullId`]. A labeled null stands for a value that is known to exist but
//!   is not yet known to the system; all occurrences of the same labeled null
//!   denote the same (unknown) value, which is what makes *null-replacement*
//!   a global operation.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// An interned constant string.
///
/// Symbols are process-global: two [`Symbol`]s are equal iff they intern the
/// same string, so equality and hashing are O(1) integer operations. The
/// global table only grows; this is acceptable because the set of constants in
/// a repository (and in the synthetic workloads of Section 6) is small.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<Arc<str>>,
    map: HashMap<Arc<str>, u32>,
}

impl Interner {
    fn new() -> Self {
        Interner { names: Vec::new(), map: HashMap::new() }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = self.names.len() as u32;
        let arc: Arc<str> = Arc::from(s);
        self.names.push(arc.clone());
        self.map.insert(arc, id);
        id
    }

    fn resolve(&self, id: u32) -> Arc<str> {
        self.names[id as usize].clone()
    }
}

fn global_interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::new()))
}

impl Symbol {
    /// Interns `s` and returns its symbol.
    pub fn intern(s: &str) -> Symbol {
        // Fast path: read lock only.
        {
            let guard = global_interner().read().expect("interner poisoned");
            if let Some(&id) = guard.map.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = global_interner().write().expect("interner poisoned");
        Symbol(guard.intern(s))
    }

    /// Returns the interned string.
    pub fn as_str(&self) -> Arc<str> {
        global_interner().read().expect("interner poisoned").resolve(self.0)
    }

    /// Raw numeric id, useful for dense side tables.
    pub fn raw(&self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", &*self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", &*self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::intern(&s)
    }
}

/// Identifier of a labeled null ("variable" in the paper, e.g. `x1`, `x2`).
///
/// Labeled nulls are allocated by [`crate::Database::fresh_null`]; ids are
/// unique within a database instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullId(pub u64);

impl fmt::Debug for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A value stored in a tuple: either an (interned) constant or a labeled null.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A known constant.
    Const(Symbol),
    /// A labeled null: a value known to exist but not yet known to the system.
    Null(NullId),
}

impl Value {
    /// Convenience constructor interning `s` as a constant.
    pub fn constant(s: &str) -> Value {
        Value::Const(Symbol::intern(s))
    }

    /// Returns `true` if this value is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// Returns `true` if this value is a labeled null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Returns the null id if this value is a labeled null.
    pub fn as_null(&self) -> Option<NullId> {
        match self {
            Value::Null(n) => Some(*n),
            Value::Const(_) => None,
        }
    }

    /// Returns the constant symbol if this value is a constant.
    pub fn as_const(&self) -> Option<Symbol> {
        match self {
            Value::Const(c) => Some(*c),
            Value::Null(_) => None,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c}"),
            Value::Null(n) => write!(f, "{n}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c}"),
            Value::Null(n) => write!(f, "{n}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::constant(s)
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Self {
        Value::Const(s)
    }
}

impl From<NullId> for Value {
    fn from(n: NullId) -> Self {
        Value::Null(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("Ithaca");
        let b = Symbol::intern("Ithaca");
        assert_eq!(a, b);
        assert_eq!(&*a.as_str(), "Ithaca");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::intern("Ithaca");
        let b = Symbol::intern("Syracuse");
        assert_ne!(a, b);
        assert_eq!(&*b.as_str(), "Syracuse");
    }

    #[test]
    fn value_constructors_and_accessors() {
        let c = Value::constant("XYZ");
        assert!(c.is_const());
        assert!(!c.is_null());
        assert_eq!(c.as_const(), Some(Symbol::intern("XYZ")));
        assert_eq!(c.as_null(), None);

        let n = Value::Null(NullId(7));
        assert!(n.is_null());
        assert_eq!(n.as_null(), Some(NullId(7)));
        assert_eq!(n.as_const(), None);
    }

    #[test]
    fn value_equality_distinguishes_nulls_from_constants() {
        assert_ne!(Value::constant("x1"), Value::Null(NullId(1)));
        assert_ne!(Value::Null(NullId(1)), Value::Null(NullId(2)));
        assert_eq!(Value::Null(NullId(3)), Value::Null(NullId(3)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Value::constant("A")), "A");
        assert_eq!(format!("{}", Value::Null(NullId(4))), "x4");
        assert_eq!(format!("{:?}", NullId(9)), "x9");
    }

    #[test]
    fn symbol_from_conversions() {
        let s: Symbol = "abc".into();
        let v: Value = s.into();
        assert_eq!(v, Value::constant("abc"));
        let v2: Value = "abc".into();
        assert_eq!(v, v2);
        let n: Value = NullId(1).into();
        assert!(n.is_null());
    }

    #[test]
    fn symbols_are_concurrently_internable() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|j| Symbol::intern(&format!("c{}", (i * j) % 50)).raw())
                        .sum::<u32>()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // All threads interned overlapping names without panicking; equality still holds.
        assert_eq!(Symbol::intern("c0"), Symbol::intern("c0"));
    }
}
