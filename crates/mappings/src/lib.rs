//! # youtopia-mappings
//!
//! Schema mappings (tuple-generating dependencies) for the Youtopia
//! reproduction: the mapping AST and textual parser, violation detection with
//! witnesses (Definitions 2.1–2.2), the violation queries a chase step poses
//! (Section 4.2, Example 4.1), delta evaluation of those queries against
//! individual writes (used by conflict detection and the `PRECISE` tracker),
//! and mapping-graph analyses (cycles, weak acyclicity) that contrast
//! Youtopia's unrestricted mappings with classical update exchange.
//!
//! ```
//! use youtopia_storage::{Database, UpdateId};
//! use youtopia_mappings::{MappingSet, find_violations};
//!
//! let mut db = Database::new();
//! db.add_relation("C", ["city"]).unwrap();
//! db.add_relation("S", ["code", "location", "city_served"]).unwrap();
//! let mut mappings = MappingSet::new();
//! mappings.add_parsed(db.catalog(), "sigma1: C(c) -> exists a, l. S(a, l, c)").unwrap();
//!
//! db.insert_by_name("C", &["Ithaca"], UpdateId(1));
//! let snapshot = db.snapshot(UpdateId::OMNISCIENT);
//! assert_eq!(find_violations(&snapshot, &mappings).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod error;
pub mod graph;
pub mod parser;
pub mod plans;
pub mod tgd;
pub mod violation;

pub use delta::{change_affects_query, evaluate_with_change, evaluate_without_change};
pub use error::MappingError;
pub use graph::{is_weakly_acyclic, MappingGraph};
pub use parser::{parse_tgd, ParsedTgd};
pub use plans::{CompiledPlans, PlanRef};
pub use tgd::{MappingId, MappingSet, Tgd};
pub use violation::{
    find_all_violations, find_violations, replan_violation_queries_for_change, satisfies_all,
    violation_queries_for_change, violations_from_change, Violation, ViolationKind, ViolationQuery,
    ViolationSeed,
};
