//! Random schema and constant-pool generation (Section 6).
//!
//! "Our experiments are run on a database of 100 relations, each randomly
//! generated to have between one and six attributes. … Any constants used come
//! from a small (size 50) fixed set of random strings."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use youtopia_storage::{Database, Symbol, Value};

use crate::config::ExperimentConfig;

/// A randomly generated schema plus its constant pool.
#[derive(Clone, Debug)]
pub struct GeneratedSchema {
    /// The database containing only the catalog (no tuples yet).
    pub db: Database,
    /// The fixed pool of constants used by mappings, initial tuples and
    /// workload inserts.
    pub constants: Vec<Symbol>,
}

impl GeneratedSchema {
    /// A uniformly random constant from the pool.
    pub fn random_constant(&self, rng: &mut StdRng) -> Value {
        Value::Const(self.constants[rng.gen_range(0..self.constants.len())])
    }
}

/// Generates the random schema and constant pool of an experiment.
pub fn generate_schema(config: &ExperimentConfig) -> GeneratedSchema {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let mut db = Database::new();
    for r in 0..config.relations {
        let arity = rng.gen_range(config.min_attributes..=config.max_attributes);
        let attrs: Vec<String> = (0..arity).map(|a| format!("a{a}")).collect();
        db.add_relation(format!("R{r}"), attrs).expect("generated names are unique");
    }
    let constants: Vec<Symbol> = (0..config.constant_pool)
        .map(|_| {
            let len = rng.gen_range(4..=8);
            let s: String = (0..len).map(|_| char::from(b'a' + rng.gen_range(0..26u8))).collect();
            Symbol::intern(&format!("k_{s}"))
        })
        .collect();
    GeneratedSchema { db, constants }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_the_requested_shape() {
        let config = ExperimentConfig::quick();
        let schema = generate_schema(&config);
        assert_eq!(schema.db.catalog().len(), config.relations);
        assert_eq!(schema.constants.len(), config.constant_pool);
        for rel in schema.db.catalog().iter() {
            assert!(rel.arity() >= config.min_attributes);
            assert!(rel.arity() <= config.max_attributes);
        }
    }

    #[test]
    fn generation_is_deterministic_under_a_seed() {
        let config = ExperimentConfig::tiny();
        let a = generate_schema(&config);
        let b = generate_schema(&config);
        assert_eq!(a.constants, b.constants);
        let arities_a: Vec<usize> = a.db.catalog().iter().map(|r| r.arity()).collect();
        let arities_b: Vec<usize> = b.db.catalog().iter().map(|r| r.arity()).collect();
        assert_eq!(arities_a, arities_b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_schema(&ExperimentConfig::tiny());
        let b = generate_schema(&ExperimentConfig::tiny().with_seed(99));
        assert_ne!(a.constants, b.constants);
    }

    #[test]
    fn random_constant_draws_from_the_pool() {
        let config = ExperimentConfig::tiny();
        let schema = generate_schema(&config);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let v = schema.random_constant(&mut rng);
            match v {
                Value::Const(sym) => assert!(schema.constants.contains(&sym)),
                Value::Null(_) => panic!("pool constants are never nulls"),
            }
        }
    }
}
