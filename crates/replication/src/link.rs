//! Link-level wiring: who talks to whom ([`Topology`]) and how badly the
//! links behave ([`LinkFaults`]).

/// How the nodes of a [`ReplicaSet`](crate::ReplicaSet) are wired. Sync
/// messages only flow along topology edges (both directions), so sparser
/// topologies propagate events transitively over multiple rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Topology {
    /// Every pair of nodes exchanges directly — one round propagates
    /// everything (absent faults).
    #[default]
    FullMesh,
    /// Node 0 is the hub; spokes only talk to it. Spoke-to-spoke propagation
    /// takes two rounds — the shape of a two-level CUP tree.
    Star,
    /// Node `i` talks to `i + 1` only; worst-case propagation is `n - 1`
    /// rounds — a degenerate CUP tree (a path).
    Chain,
}

impl Topology {
    /// The undirected edges of this topology over `n` nodes.
    pub fn edges(&self, n: usize) -> Vec<(usize, usize)> {
        match self {
            Topology::FullMesh => (0..n).flat_map(|i| (i + 1..n).map(move |j| (i, j))).collect(),
            Topology::Star => (1..n).map(|i| (0, i)).collect(),
            Topology::Chain => (1..n).map(|i| (i - 1, i)).collect(),
        }
    }
}

/// Fault injection on every link of a set. Partitions are not a fault knob
/// but an explicit act: [`ReplicaSet::partition`](crate::ReplicaSet::partition)
/// / [`heal`](crate::ReplicaSet::heal).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Shuffle the round's messages before delivery (so a node may receive a
    /// later suffix before an earlier one — observed as a harmless gap and
    /// re-requested next round).
    pub reorder: bool,
    /// Probability that a message is delivered twice (exercises duplicate
    /// suppression).
    pub duplicate_prob: f64,
}

impl Default for LinkFaults {
    /// Faultless links.
    fn default() -> LinkFaults {
        LinkFaults { reorder: false, duplicate_prob: 0.0 }
    }
}

impl LinkFaults {
    /// Reordering plus 25% duplication — the standard hostile-network preset
    /// used by the convergence tests.
    pub fn hostile() -> LinkFaults {
        LinkFaults { reorder: true, duplicate_prob: 0.25 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_edge_counts() {
        assert_eq!(Topology::FullMesh.edges(4).len(), 6);
        assert_eq!(Topology::Star.edges(4), vec![(0, 1), (0, 2), (0, 3)]);
        assert_eq!(Topology::Chain.edges(4), vec![(0, 1), (1, 2), (2, 3)]);
        assert!(Topology::FullMesh.edges(1).is_empty());
    }
}
