//! # Youtopia — cooperative update exchange (VLDB 2009), reproduced in Rust
//!
//! This crate is the facade of the workspace reproducing *Cooperative Update
//! Exchange in the Youtopia System* (Kot & Koch, VLDB 2009). It re-exports the
//! public API of the five underlying crates:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`storage`] | `youtopia-storage` | labeled nulls, multiversion tuples, conjunctive queries |
//! | [`mappings`] | `youtopia-mappings` | tgds, parser, violations, violation queries, mapping graph |
//! | [`chase`] | `youtopia-core` | the cooperative forward/backward chase, frontier operations, resolvers |
//! | [`concurrency`] | `youtopia-concurrency` | optimistic scheduler, conflict detection, NAIVE/COARSE/PRECISE |
//! | [`workload`] | `youtopia-workload` | Section 6 generators, experiment runner, figure reports |
//!
//! The most common entry points are also re-exported at the top level, so a
//! downstream user can simply:
//!
//! ```
//! use youtopia::{Database, MappingSet, RandomResolver, UpdateExchange};
//!
//! let mut db = Database::new();
//! db.add_relation("C", ["city"]).unwrap();
//! db.add_relation("S", ["code", "location", "city_served"]).unwrap();
//! let mut mappings = MappingSet::new();
//! mappings.add_parsed(db.catalog(), "sigma1: C(c) -> exists a, l. S(a, l, c)").unwrap();
//!
//! let mut repo = UpdateExchange::new(db, mappings);
//! let mut user = RandomResolver::seeded(42);
//! repo.insert_constants("C", &["Ithaca"], &mut user).unwrap();
//! assert!(repo.is_consistent());
//! ```
//!
//! See `examples/` for runnable walk-throughs of the paper's scenarios and
//! `crates/bench` for the Figure 3 / Figure 4 harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The relational storage substrate (re-export of `youtopia-storage`).
pub use youtopia_storage as storage;

/// Schema mappings and violations (re-export of `youtopia-mappings`).
pub use youtopia_mappings as mappings;

/// The cooperative chase (re-export of `youtopia-core`).
pub use youtopia_core as chase;

/// Optimistic concurrency control (re-export of `youtopia-concurrency`).
pub use youtopia_concurrency as concurrency;

/// Synthetic workloads and the Section 6 experiment harness (re-export of
/// `youtopia-workload`).
pub use youtopia_workload as workload;

pub use youtopia_concurrency::{
    ConcurrentRun, ParallelRun, RunMetrics, SchedulerConfig, TrackerKind,
};
pub use youtopia_core::{
    ChaseError, ExpandResolver, FrontierDecision, FrontierRequest, FrontierResolver, InitialOp,
    PositiveAction, RandomResolver, ScriptedResolver, UnifyResolver, UpdateExchange,
    UpdateExecution, UpdateState,
};
pub use youtopia_mappings::{
    find_violations, satisfies_all, MappingGraph, MappingSet, Tgd, Violation, ViolationKind,
};
pub use youtopia_storage::{
    DataView, Database, NullId, RelationId, Snapshot, Symbol, Tuple, TupleId, UpdateId, Value,
    Write,
};
pub use youtopia_workload::{run_experiment, ExperimentConfig, WorkloadKind};
