//! Compiled violation plans: precompiled per-(mapping, atom) violation-query
//! skeletons with a relation → affected-plans index.
//!
//! The chase poses one violation query per (mapping, atom position) the
//! changed relation occurs in (Section 4.2). Rediscovering those positions on
//! every [`TupleChange`](youtopia_storage::TupleChange) — walk the mappings
//! whose side mentions the relation, then walk each mapping's atoms — is pure
//! re-planning work that depends only on the mapping set, not on the change.
//! [`CompiledPlans`] hoists it out of the hot path: when a mapping is added,
//! every (mapping, atom) pair is compiled once into a [`PlanRef`] and filed
//! under its relation, so a change dispatches straight to the plans that can
//! possibly fire with two hash lookups.
//!
//! The cache is owned by [`MappingSet`](crate::MappingSet) and kept in sync
//! by [`MappingSet::add`](crate::MappingSet::add);
//! `violation_queries_for_change` is the consumer.

use std::collections::HashMap;

use youtopia_storage::RelationId;

use crate::tgd::{MappingId, Tgd};

/// A precompiled violation-query skeleton: everything about one
/// (mapping, atom position) pair that does not depend on the seeding tuple.
/// Instantiating the skeleton with a written (or vanished) tuple's values
/// yields the concrete [`ViolationQuery`](crate::ViolationQuery).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanRef {
    /// The mapping to check.
    pub mapping: MappingId,
    /// The atom position (within the LHS for appearing tuples, within the RHS
    /// for vanishing tuples) the seed tuple binds.
    pub atom_index: usize,
    /// Arity of the atom — a seed whose arity differs can never match, so
    /// callers may use this as a zero-cost pre-filter.
    pub arity: usize,
}

/// The relation → affected-plans index for a whole mapping set.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CompiledPlans {
    /// Plans fired by a tuple *appearing* in the relation (LHS seeds).
    lhs_by_relation: HashMap<RelationId, Vec<PlanRef>>,
    /// Plans fired by a tuple *vanishing* from the relation (RHS seeds).
    rhs_by_relation: HashMap<RelationId, Vec<PlanRef>>,
    /// Total number of compiled plans (diagnostics).
    plan_count: usize,
}

impl CompiledPlans {
    /// Compiles every (mapping, atom) pair of `tgds` into an indexed plan set.
    pub fn compile<'a>(tgds: impl IntoIterator<Item = &'a Tgd>) -> CompiledPlans {
        let mut plans = CompiledPlans::default();
        for tgd in tgds {
            plans.add_mapping(tgd);
        }
        plans
    }

    /// Compiles and files the plans of one additional mapping. Plans are
    /// appended in (mapping insertion, atom position) order, which is exactly
    /// the order the uncompiled re-planning path discovers them in — so the
    /// two paths produce identical query sequences.
    pub(crate) fn add_mapping(&mut self, tgd: &Tgd) {
        for (atom_index, atom) in tgd.lhs.iter().enumerate() {
            self.lhs_by_relation.entry(atom.relation).or_default().push(PlanRef {
                mapping: tgd.id,
                atom_index,
                arity: atom.terms.len(),
            });
            self.plan_count += 1;
        }
        for (atom_index, atom) in tgd.rhs.iter().enumerate() {
            self.rhs_by_relation.entry(atom.relation).or_default().push(PlanRef {
                mapping: tgd.id,
                atom_index,
                arity: atom.terms.len(),
            });
            self.plan_count += 1;
        }
    }

    /// Plans that can fire when a tuple of `relation` appears (insert or
    /// post-modification image).
    pub fn lhs_plans(&self, relation: RelationId) -> &[PlanRef] {
        self.lhs_by_relation.get(&relation).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Plans that can fire when a tuple of `relation` vanishes (delete or
    /// pre-modification image).
    pub fn rhs_plans(&self, relation: RelationId) -> &[PlanRef] {
        self.rhs_by_relation.get(&relation).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of compiled plans.
    pub fn len(&self) -> usize {
        self.plan_count
    }

    /// Whether no plans are compiled at all.
    pub fn is_empty(&self) -> bool {
        self.plan_count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tgd::MappingSet;
    use youtopia_storage::Database;

    fn travel() -> (Database, MappingSet) {
        let mut db = Database::new();
        db.add_relation("A", ["location", "name"]).unwrap();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        let mut set = MappingSet::new();
        set.add_parsed_many(
            db.catalog(),
            "
            sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
            copy: R(c, n, r) -> R(c, n, r)
            ",
        )
        .unwrap();
        (db, set)
    }

    #[test]
    fn plans_index_every_atom_under_its_relation() {
        let (db, set) = travel();
        let plans = set.plans();
        let a = db.relation_id("A").unwrap();
        let t = db.relation_id("T").unwrap();
        let r = db.relation_id("R").unwrap();
        let sigma3 = set.by_name("sigma3").unwrap().id;
        let copy = set.by_name("copy").unwrap().id;

        assert_eq!(plans.lhs_plans(a), &[PlanRef { mapping: sigma3, atom_index: 0, arity: 2 }]);
        assert_eq!(plans.lhs_plans(t), &[PlanRef { mapping: sigma3, atom_index: 1, arity: 3 }]);
        // R occurs on σ3's RHS and on both sides of `copy`.
        assert_eq!(plans.lhs_plans(r), &[PlanRef { mapping: copy, atom_index: 0, arity: 3 }]);
        assert_eq!(
            plans.rhs_plans(r),
            &[
                PlanRef { mapping: sigma3, atom_index: 0, arity: 3 },
                PlanRef { mapping: copy, atom_index: 0, arity: 3 },
            ]
        );
        // 2 LHS + 1 RHS atoms of σ3, 1 + 1 of copy.
        assert_eq!(plans.len(), 5);
        assert!(!plans.is_empty());
        assert!(CompiledPlans::default().is_empty());
    }

    #[test]
    fn compile_matches_incremental_construction() {
        let (_, set) = travel();
        let from_scratch = CompiledPlans::compile(set.iter());
        assert_eq!(&from_scratch, set.plans());
    }
}
