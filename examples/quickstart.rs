//! Quickstart: the Figure 2 travel repository.
//!
//! Builds the example repository of the paper (cities, suggested airports,
//! attractions, tours, reviews, conventions and excursion ideas connected by
//! the mappings σ1–σ4), then walks through the paper's running examples:
//!
//! * **Example 1.1** — inserting a new tour makes σ3 fire and the forward
//!   chase adds a review placeholder with a labeled null;
//! * a **null-replacement** later fills the unknown company in;
//! * **Example 2.3** — deleting a review triggers the backward chase, which
//!   asks the user which witness tuple should go.
//!
//! Run with `cargo run --example quickstart`.

use youtopia::chase::{FrontierDecision, FrontierRequest};
use youtopia::{
    DataView, Database, MappingSet, RandomResolver, ScriptedResolver, UpdateExchange, UpdateId,
    Value,
};

fn print_relation(db: &Database, name: &str) {
    let rel = db.relation_id(name).expect("relation exists");
    let schema = db.schema(rel);
    println!("  {name}({})", schema.attributes.join(", "));
    for (_, data) in db.scan(rel, UpdateId::OMNISCIENT) {
        let row: Vec<String> = data.iter().map(|v| v.to_string()).collect();
        println!("    ({})", row.join(", "));
    }
}

fn build_repository() -> UpdateExchange {
    let mut db = Database::new();
    db.add_relation("C", ["city"]).unwrap();
    db.add_relation("S", ["code", "location", "city_served"]).unwrap();
    db.add_relation("A", ["location", "name"]).unwrap();
    db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
    db.add_relation("R", ["company", "attraction", "review"]).unwrap();
    db.add_relation("V", ["city", "convention"]).unwrap();
    db.add_relation("E", ["convention", "attraction"]).unwrap();

    let mut mappings = MappingSet::new();
    mappings
        .add_parsed_many(
            db.catalog(),
            "
            # Figure 2: every city has a suggested airport...
            sigma1: C(c) -> exists a, l. S(a, l, c)
            # ...every airport is located in a city and serves a city...
            sigma2: S(a, c, c2) -> C(c) & C(c2)
            # ...every offered tour is reviewed...
            sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
            # ...and convention attendees get excursion ideas.
            sigma4: V(cv, x) & T(n, c, cv) -> E(x, n)
            ",
        )
        .unwrap();

    println!("Mappings:");
    for tgd in mappings.iter() {
        println!("  {}", tgd.display_with(db.catalog()));
    }
    println!();

    // Seed the Figure 2 data. A simulated user answers any frontier requests.
    let mut exchange = UpdateExchange::new(db, mappings);
    let mut user = RandomResolver::seeded(2009);
    // Reviews, excursion ideas and conventions are seeded before the tour so
    // that σ3 and σ4 are already satisfied when the tour row arrives (the same
    // state Figure 2 shows).
    for (rel, rows) in [
        ("C", vec![vec!["Ithaca"], vec!["Syracuse"]]),
        ("S", vec![vec!["SYR", "Syracuse", "Syracuse"], vec!["SYR", "Syracuse", "Ithaca"]]),
        ("A", vec![vec!["Geneva", "Geneva Winery"], vec!["Niagara Falls", "Niagara Falls"]]),
        ("R", vec![vec!["XYZ", "Geneva Winery", "Great!"]]),
        ("E", vec![vec!["Science Conf", "Geneva Winery"]]),
        ("V", vec![vec!["Syracuse", "Science Conf"]]),
        ("T", vec![vec!["Geneva Winery", "XYZ", "Syracuse"]]),
    ] {
        for row in rows {
            exchange.insert_constants(rel, &row, &mut user).unwrap();
        }
    }
    assert!(exchange.is_consistent());
    exchange
}

fn main() {
    let mut exchange = build_repository();
    let mut user = RandomResolver::seeded(7);

    println!("== Example 1.1: ABC Tours starts running tours to Niagara Falls ==");
    exchange.insert_constants("T", &["Niagara Falls", "ABC Tours", "Toronto"], &mut user).unwrap();
    println!("σ3 fired; the review table now contains a placeholder:");
    print_relation(&exchange.db(), "R");
    assert!(exchange.is_consistent());
    println!();

    println!("== Completing the unknown review through a null-replacement ==");
    let r = exchange.db().relation_id("R").unwrap();
    let placeholder_null = exchange
        .db()
        .scan(r, UpdateId::OMNISCIENT)
        .into_iter()
        .flat_map(|(_, data)| youtopia::storage::nulls_of(&data))
        .next()
        .expect("Example 1.1 created a labeled null");
    exchange
        .replace_null(
            placeholder_null,
            Value::constant("Spectacular — take the boat tour"),
            &mut user,
        )
        .unwrap();
    print_relation(&exchange.db(), "R");
    assert!(exchange.is_consistent());
    println!();

    println!("== Example 2.3: the Geneva Winery review is deleted ==");
    let review = exchange
        .db()
        .scan(r, UpdateId::OMNISCIENT)
        .into_iter()
        .find(|(_, data)| data[0] == Value::constant("XYZ"))
        .map(|(id, _)| id)
        .expect("the XYZ review exists");
    // Drive the backward chase by hand so we can show the negative frontier.
    // A real deployment would surface this request in the UI; here we script
    // the user's answer: delete the Tours tuple, keep the attraction.
    let t = exchange.db().relation_id("T").unwrap();
    let tour_id = exchange
        .db()
        .scan(t, UpdateId::OMNISCIENT)
        .into_iter()
        .find(|(_, data)| data[0] == Value::constant("Geneva Winery"))
        .map(|(id, _)| id)
        .unwrap();
    let mut scripted = ScriptedResolver::new([FrontierDecision::Negative(vec![tour_id])]);
    let report = exchange.delete("R", review, &mut scripted).unwrap();
    println!(
        "backward chase finished after {} steps and {} frontier operation(s)",
        report.stats.steps, report.stats.frontier_ops
    );
    println!("The tour was removed, the attraction kept:");
    print_relation(&exchange.db(), "T");
    print_relation(&exchange.db(), "A");
    assert!(exchange.is_consistent());
    println!();

    println!("== What would the system have asked? ==");
    // Re-create the same situation on a throwaway copy to show the request.
    let mut preview = build_repository();
    let r = preview.db().relation_id("R").unwrap();
    let review = preview
        .db()
        .scan(r, UpdateId::OMNISCIENT)
        .into_iter()
        .find(|(_, data)| data[0] == Value::constant("XYZ"))
        .map(|(id, _)| id)
        .unwrap();
    struct Narrator;
    impl youtopia::FrontierResolver for Narrator {
        fn resolve(&mut self, _view: &dyn DataView, request: &FrontierRequest) -> FrontierDecision {
            match request {
                FrontierRequest::Negative(nf) => {
                    println!("  negative frontier: delete any of these witness tuples:");
                    for (_, id, data) in &nf.candidates {
                        let row: Vec<String> = data.iter().map(|v| v.to_string()).collect();
                        println!("    {id}: ({})", row.join(", "));
                    }
                    FrontierDecision::delete_first(nf)
                }
                FrontierRequest::Positive(pf) => FrontierDecision::expand_all(pf),
            }
        }
    }
    preview.delete("R", review, &mut Narrator).unwrap();
    assert!(preview.is_consistent());
    println!("\nDone: the repository satisfies all mappings after every update.");
}
