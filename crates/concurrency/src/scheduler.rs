//! The optimistic chase scheduler (Algorithms 3 and 4).
//!
//! A [`ConcurrentRun`] executes a batch of updates concurrently, interleaving
//! them at chase-step granularity. Each update sees the database through
//! multiversion visibility (lower-numbered updates' versions plus its own);
//! every step's writes are checked against the stored read queries of
//! higher-numbered updates, and conflicting readers — together with their
//! read-dependents, as determined by the configured tracker — are aborted,
//! rolled back and restarted.

use std::collections::BTreeSet;
use std::time::Instant;

use youtopia_core::{
    ChaseError, ChaseMode, FrontierResolver, InitialOp, ReadQuery, UpdateExecution, UpdateState,
    ViolationStateMode,
};
use youtopia_mappings::MappingSet;
use youtopia_storage::{Database, TupleChange, UpdateId};

use crate::conflict::change_conflicts_with_reader_keyed;
use crate::deps::{DependencyTracker, TrackerKind};
use crate::log::{ReadLog, WriteLog};
use crate::metrics::RunMetrics;

/// How the scheduler interleaves ready updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Round-robin at the granularity of individual chase steps — the policy
    /// used for all experiments in Section 6.
    StepRoundRobin,
    /// Round-robin at the granularity of deterministic strata: a scheduled
    /// update keeps stepping until it blocks on a frontier or terminates.
    StratumRoundRobin,
}

/// Whether the deterministic engine runs chase steps speculatively.
///
/// With speculation on, idle workers execute Ready slots' steps against
/// epoch-stamped snapshot reads *before* the sequencer reaches them; the
/// sequencer still commits in its fixed round-robin order, validating each
/// speculation's read set against the per-relation write epochs and
/// discarding (re-executing) any that a prior commit invalidated. The
/// committed sequence is byte-identical to [`SpeculationMode::Off`] — and to
/// [`ConcurrentRun`] — at any worker count; only wall-clock changes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpeculationMode {
    /// No speculation: the PR 4/5 sequencer as it was, each step executed by
    /// whichever worker wins the commit cursor. The differential baseline.
    Off,
    /// Speculate eagerly: workers that lose the commit cursor pick upcoming
    /// Ready slots and pre-execute their steps against the current database.
    #[default]
    Eager,
}

/// Configuration of a concurrent run.
///
/// For long-lived engines, prefer [`EngineBuilder`](crate::EngineBuilder) —
/// it exposes every one of these knobs without the
/// `EngineConfig`-wraps-`SchedulerConfig` nesting. Batch runs
/// ([`ConcurrentRun`], `ParallelRun`) keep taking this struct directly.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Which cascading-abort tracker to use.
    pub tracker: TrackerKind,
    /// Interleaving policy.
    pub policy: SchedulingPolicy,
    /// Safety valve: maximum total chase steps across the whole run.
    pub max_total_steps: usize,
    /// Number of scheduler rounds an update stays blocked after reaching a
    /// frontier before the (simulated) user answers. `0` answers within the
    /// same round; larger values widen the window in which other updates can
    /// interleave, mimicking slow humans.
    pub frontier_delay_rounds: usize,
    /// How the executions maintain their violation queues (delta-driven by
    /// default; [`ChaseMode::FullRecheck`] is the reference path the
    /// conflict-semantics differential tests compare against).
    pub chase_mode: ChaseMode,
    /// Worker threads for [`crate::ParallelRun`] (ignored by the
    /// single-threaded [`ConcurrentRun`]). `0` means one per available core.
    pub workers: usize,
    /// Whether [`crate::ParallelRun`] commits steps in the fixed round-robin
    /// serialisation order (byte-identical to [`ConcurrentRun`] at any worker
    /// count) or free-runs for throughput. Ignored by [`ConcurrentRun`].
    pub deterministic: bool,
    /// Whether deterministic multi-worker engines pre-execute steps
    /// speculatively (see [`SpeculationMode`]). Ignored by [`ConcurrentRun`],
    /// free-running mode, and single-worker engines, where there is nothing
    /// to overlap.
    pub speculation: SpeculationMode,
    /// Where executions get their change signal from: the engine-shared
    /// violation index's delta feed (the default) or per-update epoch
    /// watermarks, the differential baseline
    /// (see [`ViolationStateMode`]).
    pub violation_state: ViolationStateMode,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            tracker: TrackerKind::Coarse,
            policy: SchedulingPolicy::StepRoundRobin,
            max_total_steps: 5_000_000,
            frontier_delay_rounds: 0,
            chase_mode: ChaseMode::default(),
            workers: 1,
            deterministic: true,
            speculation: SpeculationMode::default(),
            violation_state: ViolationStateMode::default(),
        }
    }
}

impl SchedulerConfig {
    /// A configuration using the given tracker and defaults otherwise.
    pub fn with_tracker(tracker: TrackerKind) -> SchedulerConfig {
        SchedulerConfig { tracker, ..SchedulerConfig::default() }
    }

    // Builder-style setters. Prefer these over field-struct-update
    // construction (`SchedulerConfig { workers: 4, ..Default::default() }`) in
    // new code: they read as a sentence and keep call sites compiling when
    // the struct grows a knob.

    /// Replaces the tracker.
    pub fn tracked_by(mut self, tracker: TrackerKind) -> SchedulerConfig {
        self.tracker = tracker;
        self
    }

    /// Replaces the worker-thread count used by [`crate::ParallelRun`] and
    /// the [`crate::ExchangeEngine`] (0 = one per available core).
    pub fn with_workers(mut self, workers: usize) -> SchedulerConfig {
        self.workers = workers;
        self
    }

    /// Replaces the interleaving policy.
    pub fn with_policy(mut self, policy: SchedulingPolicy) -> SchedulerConfig {
        self.policy = policy;
        self
    }

    /// Switches [`crate::ParallelRun`] / [`crate::ExchangeEngine`] workers to
    /// free-running mode (no sequencer; schedule-dependent but consistent).
    pub fn free_running(mut self) -> SchedulerConfig {
        self.deterministic = false;
        self
    }

    /// Replaces the violation-queue maintenance mode.
    pub fn with_chase_mode(mut self, chase_mode: ChaseMode) -> SchedulerConfig {
        self.chase_mode = chase_mode;
        self
    }

    /// Replaces the deterministic engine's speculation mode.
    pub fn with_speculation(mut self, speculation: SpeculationMode) -> SchedulerConfig {
        self.speculation = speculation;
        self
    }

    /// Replaces the violation-state maintenance mode (shared delta feed vs
    /// the per-update differential baseline).
    pub fn with_violation_state(mut self, violation_state: ViolationStateMode) -> SchedulerConfig {
        self.violation_state = violation_state;
        self
    }

    /// Replaces the simulated-user frontier delay (in scheduler rounds).
    pub fn with_frontier_delay_rounds(mut self, rounds: usize) -> SchedulerConfig {
        self.frontier_delay_rounds = rounds;
        self
    }

    /// Replaces the global step valve.
    pub fn with_max_total_steps(mut self, max_total_steps: usize) -> SchedulerConfig {
        self.max_total_steps = max_total_steps;
        self
    }
}

struct Slot {
    exec: UpdateExecution,
    /// Rounds remaining before a pending frontier request is answered.
    frontier_wait: usize,
}

/// A concurrent execution of a batch of updates over one database.
pub struct ConcurrentRun {
    db: Database,
    mappings: MappingSet,
    slots: Vec<Slot>,
    all_ids: Vec<UpdateId>,
    read_log: ReadLog,
    write_log: WriteLog,
    tracker: Box<dyn DependencyTracker>,
    config: SchedulerConfig,
    metrics: RunMetrics,
}

impl ConcurrentRun {
    /// Creates a run over `db` for the given initial operations. Update
    /// priority numbers are assigned in submission order starting at
    /// `first_update_number` (the natural "timestamp" prioritisation the
    /// paper mentions).
    pub fn new(
        db: Database,
        mappings: MappingSet,
        ops: Vec<InitialOp>,
        first_update_number: u64,
        config: SchedulerConfig,
    ) -> ConcurrentRun {
        let slots: Vec<Slot> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| Slot {
                exec: UpdateExecution::configured(
                    UpdateId(first_update_number + i as u64),
                    op,
                    config.chase_mode,
                    config.violation_state,
                ),
                frontier_wait: 0,
            })
            .collect();
        let all_ids = slots.iter().map(|s| s.exec.id()).collect();
        let metrics = RunMetrics { workload_size: slots.len(), ..RunMetrics::default() };
        ConcurrentRun {
            db,
            mappings,
            slots,
            all_ids,
            read_log: ReadLog::new(),
            write_log: WriteLog::new(),
            tracker: config.tracker.build(),
            config,
            metrics,
        }
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The database (e.g. to inspect the final state after [`Self::run`]).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Consumes the run, returning the database, mappings and metrics.
    pub fn into_parts(self) -> (Database, MappingSet, RunMetrics) {
        (self.db, self.mappings, self.metrics)
    }

    /// Runs every update to termination, consulting `resolver` for frontier
    /// operations, and returns the collected metrics.
    pub fn run(&mut self, resolver: &mut dyn FrontierResolver) -> Result<RunMetrics, ChaseError> {
        let start = Instant::now();
        loop {
            if self.slots.iter().all(|s| s.exec.is_terminated()) {
                break;
            }
            let mut progressed = false;
            for idx in 0..self.slots.len() {
                match self.slots[idx].exec.state() {
                    UpdateState::Terminated => continue,
                    UpdateState::AwaitingFrontier => {
                        if self.slots[idx].frontier_wait > 0 {
                            self.slots[idx].frontier_wait -= 1;
                            progressed = true;
                            continue;
                        }
                        self.answer_frontier(idx, resolver)?;
                        progressed = true;
                    }
                    UpdateState::Ready => {
                        self.run_ready_slot(idx)?;
                        progressed = true;
                    }
                }
            }
            if !progressed {
                // Every non-terminated update is blocked with no way to make
                // progress; this cannot happen with a responsive resolver.
                return Err(ChaseError::InvalidDecision(
                    "scheduler stalled: no update can make progress".into(),
                ));
            }
        }
        self.metrics.wall_time = start.elapsed();
        Ok(self.metrics.clone())
    }

    fn answer_frontier(
        &mut self,
        idx: usize,
        resolver: &mut dyn FrontierResolver,
    ) -> Result<(), ChaseError> {
        let id = self.slots[idx].exec.id();
        let request =
            self.slots[idx].exec.pending_frontier().expect("state is AwaitingFrontier").clone();
        let decision = {
            let snap = self.db.snapshot(id);
            resolver.resolve(&snap, &request)
        };
        let reads = self.slots[idx].exec.resolve_frontier(&self.mappings, decision)?;
        self.metrics.frontier_ops += 1;
        self.record_reads(id, reads);
        Ok(())
    }

    fn run_ready_slot(&mut self, idx: usize) -> Result<(), ChaseError> {
        loop {
            // Safety valve: checked per step so the error names the update
            // that was actually stepping when the limit tripped.
            if self.metrics.steps >= self.config.max_total_steps {
                return Err(ChaseError::StepLimitExceeded {
                    update: self.slots[idx].exec.id(),
                    limit: self.config.max_total_steps,
                });
            }
            let outcome = {
                let slot = &mut self.slots[idx];
                slot.exec.step(&mut self.db, &self.mappings)?
            };
            self.metrics.steps += 1;
            self.metrics.changes += outcome.writes.iter().map(|w| w.changes.len()).sum::<usize>();
            let id = outcome.update;

            // Log writes (for dependency tracking) and reads (for conflicts).
            self.write_log.push_all(&outcome.writes);
            self.tracker.record_writes(id, &outcome.writes);
            self.record_reads(id, outcome.reads.clone());

            // Algorithm 4: check every change against the stored reads of
            // higher-numbered updates; cascade through the tracker.
            let changes: Vec<TupleChange> =
                outcome.writes.iter().flat_map(|w| w.changes.iter().cloned()).collect();
            let to_abort = self.collect_aborts(id, &changes);
            self.perform_aborts(&to_abort);

            if outcome.frontier_request.is_some() {
                self.slots[idx].frontier_wait = self.config.frontier_delay_rounds;
            }
            // Step-level round robin hands control back after one step; the
            // stratum policy keeps going while the update remains ready.
            if self.config.policy == SchedulingPolicy::StepRoundRobin
                || self.slots[idx].exec.state() != UpdateState::Ready
            {
                break;
            }
        }
        Ok(())
    }

    fn record_reads(&mut self, reader: UpdateId, reads: Vec<ReadQuery>) {
        if reads.is_empty() {
            return;
        }
        {
            let snap = self.db.snapshot(reader);
            self.tracker.record_reads(reader, &reads, &self.write_log, &snap, &self.mappings);
        }
        self.read_log.record(reader, reads, &self.mappings);
    }

    /// Computes the consolidated abort set caused by a step's changes: direct
    /// conflicts plus the transitive read-dependents of each directly
    /// conflicting update. Also accounts the request metrics.
    ///
    /// The read log is keyed by relation, so each change only consults the
    /// readers whose stored queries touch the changed relation (plus the
    /// wildcard readers) instead of every higher-numbered reader.
    fn collect_aborts(&mut self, writer: UpdateId, changes: &[TupleChange]) -> BTreeSet<UpdateId> {
        let mut pending: BTreeSet<UpdateId> = BTreeSet::new();
        if changes.is_empty() {
            return pending;
        }
        for change in changes {
            let relation = change.relation();
            for reader in self.read_log.readers_above_touching(writer, relation) {
                if !change_conflicts_with_reader_keyed(
                    &self.db,
                    &self.mappings,
                    change,
                    reader,
                    &self.read_log,
                ) {
                    continue;
                }
                self.metrics.direct_conflict_requests += 1;
                pending.insert(reader);
                // Cascade: everyone who (transitively) read from the aborted
                // reader must abort too. Every such request is counted, even
                // when the target is already marked — matching the paper's
                // description that updates are "frequently marked for abortion
                // multiple times" before the consolidated abort happens.
                let mut stack = vec![reader];
                let mut visited: BTreeSet<UpdateId> = BTreeSet::new();
                visited.insert(reader);
                while let Some(a) = stack.pop() {
                    for dependent in self.tracker.dependents_of(a, &self.all_ids) {
                        if dependent <= writer {
                            continue;
                        }
                        self.metrics.cascading_abort_requests += 1;
                        pending.insert(dependent);
                        if visited.insert(dependent) {
                            stack.push(dependent);
                        }
                    }
                }
            }
        }
        pending
    }

    /// Performs the consolidated aborts: roll back each update's writes, clear
    /// its logs and dependency bookkeeping, and reset it to redo its initial
    /// operation.
    fn perform_aborts(&mut self, to_abort: &BTreeSet<UpdateId>) {
        for &victim in to_abort {
            let Some(slot) = self.slots.iter_mut().find(|s| s.exec.id() == victim) else {
                continue;
            };
            self.db.rollback_update(victim);
            slot.exec.reset_for_restart();
            slot.frontier_wait = 0;
            self.read_log.clear(victim);
            self.write_log.remove_update(victim);
            self.tracker.note_abort(victim);
            self.tracker.clear_update(victim);
            self.metrics.aborts += 1;
        }
    }

    /// Per-update execution statistics (after or during a run).
    pub fn update_stats(&self) -> Vec<(UpdateId, youtopia_core::UpdateStats)> {
        self.slots.iter().map(|s| (s.exec.id(), s.exec.stats())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_core::RandomResolver;
    use youtopia_mappings::satisfies_all;
    use youtopia_storage::{UpdateId, Value};

    /// The Figure 2 repository restricted to the relations Example 3.1 needs.
    fn example_3_1_db() -> (Database, MappingSet) {
        let mut db = Database::new();
        db.add_relation("A", ["location", "name"]).unwrap();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        db.add_relation("V", ["city", "convention"]).unwrap();
        db.add_relation("E", ["convention", "attraction"]).unwrap();
        let mut mappings = MappingSet::new();
        mappings
            .add_parsed_many(
                db.catalog(),
                "
                sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
                sigma4: V(cv, x) & T(n, c, cv) -> E(x, n)
                ",
            )
            .unwrap();
        let u = UpdateId(0);
        db.insert_by_name("A", &["Geneva", "Geneva Winery"], u);
        db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], u);
        db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], u);
        db.insert_by_name("V", &["Syracuse", "Science Conf"], u);
        db.insert_by_name("E", &["Science Conf", "Geneva Winery"], u);
        (db, mappings)
    }

    fn example_3_1_ops(db: &Database) -> Vec<InitialOp> {
        let r = db.relation_id("R").unwrap();
        let v = db.relation_id("V").unwrap();
        let review = db
            .scan(r, UpdateId::OMNISCIENT)
            .into_iter()
            .find(|(_, d)| d[0] == Value::constant("XYZ"))
            .map(|(id, _)| id)
            .unwrap();
        vec![
            // u1: company XYZ discontinues its Geneva Winery tours.
            InitialOp::Delete { relation: r, tuple: review },
            // u2: Math Conf is scheduled in Syracuse.
            InitialOp::Insert {
                relation: v,
                values: vec![Value::constant("Syracuse"), Value::constant("Math Conf")],
            },
        ]
    }

    #[test]
    fn example_3_1_interference_is_detected_and_repaired_by_aborting_u2() {
        let (db, mappings) = example_3_1_db();
        let ops = example_3_1_ops(&db);

        // Delay frontier answers so that u2 runs ahead while u1 waits for the
        // negative frontier operation — exactly the interleaving of the
        // example.
        let config = SchedulerConfig {
            tracker: TrackerKind::Precise,
            frontier_delay_rounds: 3,
            ..SchedulerConfig::default()
        };
        let mut run = ConcurrentRun::new(db, mappings, ops, 1, config);
        // A scripted "user" that always deletes the Tour tuple would require
        // knowing ids up front; the seeded random resolver picks one of the
        // two candidates. Either choice must leave the database consistent.
        let mut resolver = RandomResolver::seeded(1);
        let metrics = run.run(&mut resolver).unwrap();

        let (final_db, mappings, _) = run.into_parts();
        let snap = final_db.snapshot(UpdateId::OMNISCIENT);
        assert!(satisfies_all(&snap, &mappings), "final database must satisfy all mappings");

        // u2 read σ4's violation query before u1's cascading deletion reached
        // T; whenever the user deletes the Tours tuple the premature
        // E(Math Conf, Geneva Winery) insert must have been aborted and
        // re-done. In all cases the E table only contains entries whose tour
        // still exists.
        let e = final_db.relation_id("E").unwrap();
        let t = final_db.relation_id("T").unwrap();
        let tours = final_db.scan(t, UpdateId::OMNISCIENT);
        for (_, excursion) in final_db.scan(e, UpdateId::OMNISCIENT) {
            if excursion[0] == Value::constant("Math Conf") {
                assert!(
                    tours.iter().any(|(_, tour)| tour[0] == excursion[1]),
                    "excursion suggestion must be backed by an existing tour"
                );
            }
        }
        assert!(metrics.steps > 0);
        assert_eq!(metrics.workload_size, 2);
    }

    #[test]
    fn concurrent_inserts_leave_a_consistent_database() {
        let mut db = Database::new();
        db.add_relation("C", ["city"]).unwrap();
        db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        let mut mappings = MappingSet::new();
        mappings
            .add_parsed_many(
                db.catalog(),
                "
                sigma1: C(c) -> exists a, l. S(a, l, c)
                sigma2: S(a, c, c2) -> C(c) & C(c2)
                ",
            )
            .unwrap();
        let c = db.relation_id("C").unwrap();
        let ops: Vec<InitialOp> = (0..8)
            .map(|i| InitialOp::Insert {
                relation: c,
                values: vec![Value::constant(&format!("City{i}"))],
            })
            .collect();
        for tracker in TrackerKind::all() {
            let mut run = ConcurrentRun::new(
                db.clone(),
                mappings.clone(),
                ops.clone(),
                1,
                SchedulerConfig::with_tracker(tracker),
            );
            let mut resolver = RandomResolver::seeded(17);
            let metrics = run.run(&mut resolver).unwrap();
            assert_eq!(metrics.workload_size, 8);
            let (final_db, mappings, _) = run.into_parts();
            assert!(satisfies_all(&final_db.snapshot(UpdateId::OMNISCIENT), &mappings));
            assert!(final_db.visible_count(c, UpdateId::OMNISCIENT) >= 8);
        }
    }

    #[test]
    fn naive_tracker_requests_at_least_as_many_cascading_aborts_as_precise() {
        let (db, mappings) = example_3_1_db();

        let run_with = |tracker: TrackerKind, seed: u64| {
            let ops = example_3_1_ops(&db);
            let mut extra_ops = ops;
            // A few more convention insertions to give the cascade something
            // to chew on.
            let v = db.relation_id("V").unwrap();
            for i in 0..4 {
                extra_ops.push(InitialOp::Insert {
                    relation: v,
                    values: vec![Value::constant("Syracuse"), Value::constant(&format!("Conf{i}"))],
                });
            }
            let config =
                SchedulerConfig { tracker, frontier_delay_rounds: 4, ..SchedulerConfig::default() };
            let mut run = ConcurrentRun::new(db.clone(), mappings.clone(), extra_ops, 1, config);
            let mut resolver = RandomResolver::seeded(seed);
            run.run(&mut resolver).unwrap()
        };

        let naive = run_with(TrackerKind::Naive, 5);
        let precise = run_with(TrackerKind::Precise, 5);
        assert!(
            naive.cascading_abort_requests >= precise.cascading_abort_requests,
            "NAIVE ({}) should request at least as many cascading aborts as PRECISE ({})",
            naive.cascading_abort_requests,
            precise.cascading_abort_requests
        );
        assert!(naive.aborts >= precise.aborts);
    }

    #[test]
    fn stratum_policy_also_terminates() {
        let (db, mappings) = example_3_1_db();
        let ops = example_3_1_ops(&db);
        let config = SchedulerConfig {
            policy: SchedulingPolicy::StratumRoundRobin,
            ..SchedulerConfig::default()
        };
        let mut run = ConcurrentRun::new(db, mappings, ops, 1, config);
        let mut resolver = RandomResolver::seeded(2);
        let metrics = run.run(&mut resolver).unwrap();
        assert!(metrics.steps >= 2);
        assert!(run.update_stats().iter().all(|(_, s)| s.steps > 0));
    }

    #[test]
    fn step_limit_guards_against_runaway_runs() {
        let (db, mappings) = example_3_1_db();
        let ops = example_3_1_ops(&db);
        let config = SchedulerConfig { max_total_steps: 1, ..SchedulerConfig::default() };
        let mut run = ConcurrentRun::new(db, mappings, ops, 1, config);
        let mut resolver = RandomResolver::seeded(2);
        assert!(matches!(run.run(&mut resolver), Err(ChaseError::StepLimitExceeded { .. })));
    }
}
