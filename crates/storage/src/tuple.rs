//! Tuples and the *specificity* relation (Definition 2.4 of the paper).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::schema::RelationId;
use crate::value::{NullId, Value};

/// Identifier of a logical tuple within a [`crate::Database`].
///
/// A logical tuple may have several *versions* (Section 4.1); the id refers to
/// the logical tuple, not to any particular version.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub u64);

impl fmt::Debug for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The data of a tuple: a fixed-arity sequence of [`Value`]s.
///
/// Tuple data is reference-counted so that version chains and read-query logs
/// can share it cheaply.
pub type TupleData = Arc<[Value]>;

/// A tuple together with the relation it belongs to.
///
/// This is the value-level view used throughout the chase; it does not carry
/// version information.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    /// Relation the tuple belongs to.
    pub relation: RelationId,
    /// The attribute values.
    pub values: TupleData,
}

impl Tuple {
    /// Creates a tuple from a relation id and values.
    pub fn new(relation: RelationId, values: impl Into<Vec<Value>>) -> Tuple {
        Tuple { relation, values: values.into().into() }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Returns all labeled nulls occurring in the tuple (with duplicates removed,
    /// in order of first occurrence).
    pub fn nulls(&self) -> Vec<NullId> {
        nulls_of(&self.values)
    }

    /// Returns `true` if the tuple contains no labeled nulls.
    pub fn is_ground(&self) -> bool {
        self.values.iter().all(Value::is_const)
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}{:?}", self.relation, self.values)
    }
}

/// Returns the distinct labeled nulls occurring in `values`, in order of first
/// occurrence.
pub fn nulls_of(values: &[Value]) -> Vec<NullId> {
    let mut seen = Vec::new();
    for v in values {
        if let Value::Null(n) = v {
            if !seen.contains(n) {
                seen.push(*n);
            }
        }
    }
    seen
}

/// Returns `true` if `values` contains the labeled null `null`.
pub fn contains_null(values: &[Value], null: NullId) -> bool {
    values.contains(&Value::Null(null))
}

/// Applies a null substitution to a sequence of values, returning the rewritten
/// values and whether anything changed.
pub fn substitute_nulls(values: &[Value], subst: &HashMap<NullId, Value>) -> (Vec<Value>, bool) {
    let mut changed = false;
    let out = values
        .iter()
        .map(|v| match v {
            Value::Null(n) => match subst.get(n) {
                Some(rep) => {
                    changed = true;
                    *rep
                }
                None => *v,
            },
            Value::Const(_) => *v,
        })
        .collect();
    (out, changed)
}

/// Decides whether `specific` is **more specific than** `general`
/// (Definition 2.4).
///
/// `specific = (a_1, …, a_k)` is more specific than `general = (a'_1, …, a'_k)`
/// iff the map `f(a'_i) = a_i` is a function and `f` is the identity on
/// constants. Intuitively `general` can be turned into `specific` by
/// consistently substituting its labeled nulls.
///
/// Returns the witnessing substitution (from `general`'s nulls to values of
/// `specific`) if the relation holds.
pub fn specialization(general: &[Value], specific: &[Value]) -> Option<HashMap<NullId, Value>> {
    if general.len() != specific.len() {
        return None;
    }
    let mut map: HashMap<NullId, Value> = HashMap::new();
    for (g, s) in general.iter().zip(specific.iter()) {
        match g {
            Value::Const(_) => {
                // f must be the identity on constants.
                if g != s {
                    return None;
                }
            }
            Value::Null(n) => match map.get(n) {
                Some(prev) => {
                    if prev != s {
                        // f would not be a function.
                        return None;
                    }
                }
                None => {
                    map.insert(*n, *s);
                }
            },
        }
    }
    Some(map)
}

/// Convenience wrapper around [`specialization`]: is `specific` more specific
/// than `general`?
pub fn is_more_specific(specific: &[Value], general: &[Value]) -> bool {
    specialization(general, specific).is_some()
}

/// Returns `true` if the two tuples are *homomorphically equivalent* under the
/// specificity relation, i.e. each is more specific than the other.
pub fn specificity_equivalent(a: &[Value], b: &[Value]) -> bool {
    is_more_specific(a, b) && is_more_specific(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value as V;

    fn c(s: &str) -> Value {
        V::constant(s)
    }
    fn n(i: u64) -> Value {
        V::Null(NullId(i))
    }

    #[test]
    fn tuple_basics() {
        let t = Tuple::new(RelationId(0), vec![c("a"), n(1), n(1), c("b")]);
        assert_eq!(t.arity(), 4);
        assert_eq!(t.nulls(), vec![NullId(1)]);
        assert!(!t.is_ground());
        let g = Tuple::new(RelationId(0), vec![c("a")]);
        assert!(g.is_ground());
    }

    #[test]
    fn ground_tuple_more_specific_than_nulled_one() {
        // C(NYC) is more specific than C(x4): example from Section 2.2.
        let specific = [c("NYC")];
        let general = [n(4)];
        assert!(is_more_specific(&specific, &general));
        assert!(!is_more_specific(&general, &specific));
    }

    #[test]
    fn constants_must_match_exactly() {
        let a = [c("NYC"), c("JFK")];
        let b = [c("NYC"), c("LGA")];
        assert!(!is_more_specific(&a, &b));
        assert!(!is_more_specific(&b, &a));
        assert!(is_more_specific(&a, &a));
    }

    #[test]
    fn substitution_must_be_a_function() {
        // general = (x1, x1); specific = (a, b) would need f(x1)=a and f(x1)=b.
        let general = [n(1), n(1)];
        let inconsistent = [c("a"), c("b")];
        let consistent = [c("a"), c("a")];
        assert!(!is_more_specific(&inconsistent, &general));
        assert!(is_more_specific(&consistent, &general));
    }

    #[test]
    fn nulls_can_map_to_other_nulls() {
        let general = [n(1), c("a")];
        let specific = [n(2), c("a")];
        // f(x1) = x2 is a fine function; x2 is "more specific" in the sense of
        // being an already-existing null in the database.
        assert!(is_more_specific(&specific, &general));
        let subst = specialization(&general, &specific).unwrap();
        assert_eq!(subst.get(&NullId(1)), Some(&n(2)));
    }

    #[test]
    fn arity_mismatch_is_never_specific() {
        assert!(!is_more_specific(&[c("a")], &[c("a"), c("b")]));
    }

    #[test]
    fn specificity_is_reflexive_and_transitive_on_examples() {
        let t1 = [n(1), n(2)];
        let t2 = [n(3), c("a")];
        let t3 = [c("b"), c("a")];
        assert!(is_more_specific(&t1, &t1));
        assert!(is_more_specific(&t2, &t1));
        assert!(is_more_specific(&t3, &t2));
        assert!(is_more_specific(&t3, &t1));
    }

    #[test]
    fn specificity_equivalence_detects_renaming() {
        let a = [n(1), n(2), c("k")];
        let b = [n(7), n(8), c("k")];
        assert!(specificity_equivalent(&a, &b));
        let c_ = [n(1), n(1), c("k")];
        assert!(!specificity_equivalent(&a, &c_));
    }

    #[test]
    fn substitute_nulls_rewrites_and_reports_change() {
        let vals = [n(1), c("a"), n(2)];
        let mut subst = HashMap::new();
        subst.insert(NullId(1), c("z"));
        let (out, changed) = substitute_nulls(&vals, &subst);
        assert!(changed);
        assert_eq!(out, vec![c("z"), c("a"), n(2)]);

        let (out2, changed2) = substitute_nulls(&[c("a")], &subst);
        assert!(!changed2);
        assert_eq!(out2, vec![c("a")]);
    }

    #[test]
    fn contains_null_works() {
        let vals = [n(1), c("a")];
        assert!(contains_null(&vals, NullId(1)));
        assert!(!contains_null(&vals, NullId(2)));
    }
}
