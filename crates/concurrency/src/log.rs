//! Write and read logs kept by the optimistic scheduler (Algorithm 4).

use std::collections::HashMap;

use youtopia_core::ReadQuery;
use youtopia_storage::{AppliedWrite, TupleChange, UpdateId};

/// The log of all writes performed so far, used to compute read dependencies
/// (`COARSE` scans it at relation granularity, `PRECISE` re-checks each entry
/// exactly) and to answer "which updates wrote to relation R".
#[derive(Clone, Debug, Default)]
pub struct WriteLog {
    entries: Vec<AppliedWrite>,
}

impl WriteLog {
    /// Creates an empty log.
    pub fn new() -> WriteLog {
        WriteLog::default()
    }

    /// Appends the writes of a chase step.
    pub fn push_all(&mut self, writes: &[AppliedWrite]) {
        self.entries.extend(writes.iter().cloned());
    }

    /// All logged writes.
    pub fn entries(&self) -> &[AppliedWrite] {
        &self.entries
    }

    /// Writes performed by updates with a number strictly below `reader`
    /// (the only writes that can create read dependencies for `reader`).
    pub fn entries_before(&self, reader: UpdateId) -> impl Iterator<Item = &AppliedWrite> {
        self.entries.iter().filter(move |w| w.update < reader)
    }

    /// Tuple-level changes performed by updates below `reader`.
    pub fn changes_before(
        &self,
        reader: UpdateId,
    ) -> impl Iterator<Item = (&AppliedWrite, &TupleChange)> {
        self.entries_before(reader).flat_map(|w| w.changes.iter().map(move |c| (w, c)))
    }

    /// Drops every write logged for `update` (called when the update aborts —
    /// its writes have been rolled back and no longer create dependencies).
    pub fn remove_update(&mut self, update: UpdateId) {
        self.entries.retain(|w| w.update != update);
    }

    /// Number of logged writes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The stored read queries of every update (Algorithm 4: "store Q for future
/// checks").
#[derive(Clone, Debug, Default)]
pub struct ReadLog {
    by_update: HashMap<UpdateId, Vec<ReadQuery>>,
}

impl ReadLog {
    /// Creates an empty log.
    pub fn new() -> ReadLog {
        ReadLog::default()
    }

    /// Logs the read queries an update performed in one step.
    pub fn record(&mut self, update: UpdateId, reads: impl IntoIterator<Item = ReadQuery>) {
        self.by_update.entry(update).or_default().extend(reads);
    }

    /// The stored read queries of one update.
    pub fn reads_of(&self, update: UpdateId) -> &[ReadQuery] {
        self.by_update.get(&update).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Updates (other than the writer) with stored reads and a number strictly
    /// greater than `writer` — the candidates for a direct conflict, in
    /// ascending order.
    pub fn readers_above(&self, writer: UpdateId) -> Vec<UpdateId> {
        let mut ids: Vec<UpdateId> = self
            .by_update
            .iter()
            .filter(|(id, reads)| **id > writer && !reads.is_empty())
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        ids
    }

    /// Clears the stored reads of an update (called when it aborts and
    /// restarts from scratch).
    pub fn clear(&mut self, update: UpdateId) {
        self.by_update.remove(&update);
    }

    /// Total number of stored read queries.
    pub fn len(&self) -> usize {
        self.by_update.values().map(Vec::len).sum()
    }

    /// Whether no reads are stored at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::{NullId, RelationId, Value, Write};

    fn applied(update: u64, seq: u64) -> AppliedWrite {
        AppliedWrite {
            update: UpdateId(update),
            seq,
            write: Write::Insert { relation: RelationId(0), values: vec![Value::constant("v")] },
            changes: vec![TupleChange::Inserted {
                relation: RelationId(0),
                tuple: youtopia_storage::TupleId(seq),
                values: vec![Value::constant("v")].into(),
            }],
        }
    }

    #[test]
    fn write_log_filters_by_reader() {
        let mut log = WriteLog::new();
        log.push_all(&[applied(1, 1), applied(3, 2), applied(5, 3)]);
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        assert_eq!(log.entries_before(UpdateId(4)).count(), 2);
        assert_eq!(log.changes_before(UpdateId(4)).count(), 2);
        assert_eq!(log.entries_before(UpdateId(1)).count(), 0);
        log.remove_update(UpdateId(3));
        assert_eq!(log.len(), 2);
        assert_eq!(log.entries().len(), 2);
    }

    #[test]
    fn read_log_tracks_readers() {
        let mut log = ReadLog::new();
        assert!(log.is_empty());
        log.record(UpdateId(2), vec![ReadQuery::NullOccurrences { null: NullId(1) }]);
        log.record(UpdateId(5), vec![ReadQuery::NullOccurrences { null: NullId(2) }]);
        log.record(UpdateId(5), vec![ReadQuery::NullOccurrences { null: NullId(3) }]);
        assert_eq!(log.len(), 3);
        assert_eq!(log.reads_of(UpdateId(5)).len(), 2);
        assert_eq!(log.reads_of(UpdateId(9)).len(), 0);
        assert_eq!(log.readers_above(UpdateId(1)), vec![UpdateId(2), UpdateId(5)]);
        assert_eq!(log.readers_above(UpdateId(2)), vec![UpdateId(5)]);
        log.clear(UpdateId(5));
        assert_eq!(log.readers_above(UpdateId(1)), vec![UpdateId(2)]);
    }
}
