//! Per-relation tuple storage: version chains plus a column index and a
//! per-reader visible-set cache.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::schema::RelationId;
use crate::tuple::{TupleData, TupleId};
use crate::value::Value;
use crate::version::{TupleVersion, UpdateId, VersionChain};

/// Upper bound on distinct readers memoised per relation between writes. The
/// cache is cleared wholesale on every mutation, so the bound only matters for
/// long read-mostly phases with very many concurrent readers.
const VISIBLE_CACHE_MAX_READERS: usize = 128;

/// The memoised visible rows of one relation for one reader.
type VisibleRows = Arc<Vec<(TupleId, TupleData)>>;

/// Upper bound on memoised `(reader, column, value)` candidate probes per
/// relation between writes. Probes are much more numerous than full scans
/// (every violation-query join leg issues one), so the bound is wider than
/// [`VISIBLE_CACHE_MAX_READERS`].
const CANDIDATE_CACHE_MAX_ENTRIES: usize = 1024;

/// Storage for the tuples of one relation.
///
/// Tuples are kept in a [`BTreeMap`] keyed by [`TupleId`] so iteration order is
/// deterministic (ids are assigned in insertion order), which keeps chase runs
/// and experiments reproducible under a fixed seed.
///
/// Reads are accelerated by a *visible-set cache*: the first
/// [`RelationStore::scan`] (or [`RelationStore::visible_count`]) for a given
/// reader materialises that reader's visible rows once; subsequent reads by
/// the same reader are served from the cache until the next write to this
/// relation invalidates it. Violation-query evaluation performs many scans and
/// candidate probes per chase step between writes, so this removes the
/// walk-every-version-chain cost from the hot read path.
#[derive(Debug)]
pub struct RelationStore {
    id: RelationId,
    arity: usize,
    tuples: BTreeMap<TupleId, VersionChain>,
    /// Column index: for each attribute position, value → tuple ids whose
    /// *some* version carries that value at that position. Entries are never
    /// removed (stale-tolerant); lookups re-check visible data.
    index: Vec<HashMap<Value, Vec<TupleId>>>,
    /// Write epoch: bumped on every mutation of this relation (insert, new
    /// version, rollback). Readers that cached derived state (visible sets,
    /// violation checks, repair plans) validate it with a single integer
    /// compare instead of re-reading the data.
    epoch: u64,
    /// reader → visible rows, invalidated on every mutation *visible to that
    /// reader* (a write by update `w` can only change the visible set of
    /// readers with number ≥ `w`). Behind a mutex (not a `RefCell`) so
    /// `&RelationStore` stays `Sync` and the parallel experiment sweep can
    /// share a fixture database across worker threads.
    visible_cache: Mutex<HashMap<UpdateId, VisibleRows>>,
    /// reader → visible-row count. Separate from the row cache so count-only
    /// paths (`visible_count`, the join planner's `relation_size`) never pay
    /// for materialising rows.
    count_cache: Mutex<HashMap<UpdateId, usize>>,
    /// (reader, column, value) → visible candidate rows: the per-column
    /// *visible-value* memo. Candidate probes dominate the read half of a
    /// chase step (one per join leg per violation query), and between writes
    /// the same probes repeat across steps; memoising them turns the repeated
    /// bucket-walk + version-chain filter into one hash lookup. Invalidated
    /// exactly like the visible-set memos: a write by update `w` drops entries
    /// of readers ≥ `w`.
    candidate_cache: Mutex<HashMap<(UpdateId, usize, Value), VisibleRows>>,
}

impl Clone for RelationStore {
    fn clone(&self) -> RelationStore {
        // The cache is a pure memo: a clone starts cold. The epoch is carried
        // over so epoch-validated state behaves the same on either copy.
        RelationStore {
            id: self.id,
            arity: self.arity,
            tuples: self.tuples.clone(),
            index: self.index.clone(),
            epoch: self.epoch,
            visible_cache: Mutex::new(HashMap::new()),
            count_cache: Mutex::new(HashMap::new()),
            candidate_cache: Mutex::new(HashMap::new()),
        }
    }
}

impl RelationStore {
    /// Creates an empty store for a relation of the given arity.
    pub fn new(id: RelationId, arity: usize) -> RelationStore {
        RelationStore {
            id,
            arity,
            tuples: BTreeMap::new(),
            index: vec![HashMap::new(); arity],
            epoch: 0,
            visible_cache: Mutex::new(HashMap::new()),
            count_cache: Mutex::new(HashMap::new()),
            candidate_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Relation id.
    pub fn id(&self) -> RelationId {
        self.id
    }

    /// Declared arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The relation's write epoch: monotonically increasing, bumped on every
    /// mutation. Equal epochs guarantee identical relation contents, so any
    /// derived state (cached visible sets, still-violated checks, memoised
    /// repair plans) can be validated with one integer compare.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Registers a mutation performed by `writer`: bumps the write epoch and
    /// drops the memoised visible sets and counts of every reader the
    /// mutation is visible to. A version written by update `w` is only ever
    /// visible to readers with number ≥ `w`, so lower-numbered readers' memos
    /// are still exact and survive the write.
    fn note_mutation(&mut self, writer: UpdateId) {
        self.epoch += 1;
        // `get_mut` needs no lock: `&mut self` proves exclusive access.
        self.visible_cache
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|reader, _| *reader < writer);
        self.count_cache
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|reader, _| *reader < writer);
        self.candidate_cache
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|(reader, _, _), _| *reader < writer);
    }

    fn cache(&self) -> MutexGuard<'_, HashMap<UpdateId, VisibleRows>> {
        self.visible_cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The rows visible to `reader`, memoised until the next write.
    fn visible_rows(&self, reader: UpdateId) -> VisibleRows {
        if let Some(rows) = self.cache().get(&reader) {
            return rows.clone();
        }
        let rows: VisibleRows = Arc::new(
            self.tuples
                .iter()
                .filter_map(|(id, chain)| chain.visible_data(reader).map(|d| (*id, d.clone())))
                .collect(),
        );
        let mut cache = self.cache();
        if cache.len() >= VISIBLE_CACHE_MAX_READERS {
            cache.clear();
        }
        cache.insert(reader, rows.clone());
        rows
    }

    /// Registers a brand-new logical tuple with its initial version.
    pub fn insert_new(&mut self, tuple: TupleId, version: TupleVersion) {
        self.note_mutation(version.update);
        if let Some(data) = &version.data {
            self.index_values(tuple, data);
        }
        self.tuples.insert(tuple, VersionChain::new(version));
    }

    /// Appends a version to an existing tuple's chain. Returns `false` if the
    /// tuple is unknown.
    pub fn push_version(&mut self, tuple: TupleId, version: TupleVersion) -> bool {
        match self.tuples.get_mut(&tuple) {
            Some(chain) => {
                let writer = version.update;
                if let Some(data) = &version.data {
                    let data = data.clone();
                    chain.push(version);
                    self.index_values(tuple, &data);
                } else {
                    chain.push(version);
                }
                self.note_mutation(writer);
                true
            }
            None => false,
        }
    }

    fn index_values(&mut self, tuple: TupleId, data: &TupleData) {
        for (col, value) in data.iter().enumerate() {
            let bucket = self.index[col].entry(*value).or_default();
            if bucket.last() != Some(&tuple) {
                bucket.push(tuple);
            }
        }
    }

    /// Whether the logical tuple exists in the store (any version).
    pub fn contains(&self, tuple: TupleId) -> bool {
        self.tuples.contains_key(&tuple)
    }

    /// Returns the version chain of a tuple.
    pub fn chain(&self, tuple: TupleId) -> Option<&VersionChain> {
        self.tuples.get(&tuple)
    }

    /// Data of `tuple` visible to `reader`, if the tuple exists and is not
    /// deleted for that reader.
    pub fn visible(&self, tuple: TupleId, reader: UpdateId) -> Option<TupleData> {
        self.tuples.get(&tuple).and_then(|c| c.visible_data(reader)).cloned()
    }

    /// All tuples visible to `reader`, in tuple-id order.
    pub fn scan(&self, reader: UpdateId) -> Vec<(TupleId, TupleData)> {
        (*self.visible_rows(reader)).clone()
    }

    /// Number of tuples visible to `reader`. Served from the row cache when a
    /// scan already materialised it, and from a count memo otherwise —
    /// counting never materialises rows.
    pub fn visible_count(&self, reader: UpdateId) -> usize {
        if let Some(rows) = self.cache().get(&reader) {
            return rows.len();
        }
        let mut counts = self.count_cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&count) = counts.get(&reader) {
            return count;
        }
        let count = self.tuples.values().filter(|c| c.visible_data(reader).is_some()).count();
        if counts.len() >= VISIBLE_CACHE_MAX_READERS {
            counts.clear();
        }
        counts.insert(reader, count);
        count
    }

    /// Tuples visible to `reader` whose value at `column` equals `value`,
    /// memoised per `(reader, column, value)` until the next write visible to
    /// that reader.
    ///
    /// Uses the column index as a candidate filter and re-checks against the
    /// visible version, so stale index entries are harmless.
    pub fn candidates(
        &self,
        column: usize,
        value: Value,
        reader: UpdateId,
    ) -> Vec<(TupleId, TupleData)> {
        {
            let memo = self.candidate_cache.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(rows) = memo.get(&(reader, column, value)) {
                return (**rows).clone();
            }
        }
        let mut seen = Vec::new();
        let mut out = Vec::new();
        for &tid in self.index_bucket(column, &value) {
            if seen.contains(&tid) {
                continue;
            }
            seen.push(tid);
            if let Some(data) = self.visible(tid, reader) {
                if data.get(column) == Some(&value) {
                    out.push((tid, data));
                }
            }
        }
        let mut memo = self.candidate_cache.lock().unwrap_or_else(|e| e.into_inner());
        if memo.len() >= CANDIDATE_CACHE_MAX_ENTRIES {
            memo.clear();
        }
        memo.insert((reader, column, value), Arc::new(out.clone()));
        out
    }

    /// The raw column-index bucket for `value` at `column`: candidate tuple
    /// ids in *append* order, unfiltered (stale entries included). Speculative
    /// execution replays this exact order — bucket first, overlay appends
    /// second — so candidate iteration matches a post-commit re-execution.
    pub(crate) fn index_bucket(&self, column: usize, value: &Value) -> &[TupleId] {
        self.index.get(column).and_then(|m| m.get(value)).map_or(&[], Vec::as_slice)
    }

    /// Removes every version created by `update`. Returns the ids of logical
    /// tuples that vanished entirely (their only versions belonged to the
    /// aborted update).
    pub fn remove_versions_of(&mut self, update: UpdateId) -> Vec<TupleId> {
        let mut removed = Vec::new();
        let ids: Vec<TupleId> = self.tuples.keys().copied().collect();
        let mut touched = false;
        for id in ids {
            let empty = {
                let chain = self.tuples.get_mut(&id).expect("id listed above");
                if !chain.written_by(update) {
                    continue;
                }
                touched = true;
                chain.remove_versions_of(update)
            };
            if empty {
                self.tuples.remove(&id);
                removed.push(id);
            }
        }
        if touched {
            // Rolling back `update`'s versions can only change what readers
            // numbered ≥ `update` see.
            self.note_mutation(update);
        }
        removed
    }

    /// Total number of logical tuples (including deleted / invisible ones).
    pub fn logical_len(&self) -> usize {
        self.tuples.len()
    }

    /// Iterates over all logical tuple ids (deterministic order).
    pub fn tuple_ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.tuples.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{NullId, Value as V};

    fn data(vals: &[V]) -> TupleData {
        vals.to_vec().into()
    }

    fn version(update: u64, seq: u64, vals: Option<&[V]>) -> TupleVersion {
        TupleVersion { update: UpdateId(update), seq, data: vals.map(data) }
    }

    #[test]
    fn insert_scan_and_candidates() {
        let mut store = RelationStore::new(RelationId(0), 2);
        let a = V::constant("a");
        let b = V::constant("b");
        store.insert_new(TupleId(1), version(1, 1, Some(&[a, b])));
        store.insert_new(TupleId(2), version(1, 2, Some(&[a, a])));

        let scan = store.scan(UpdateId::OMNISCIENT);
        assert_eq!(scan.len(), 2);
        assert_eq!(scan[0].0, TupleId(1));

        let by_a = store.candidates(0, a, UpdateId::OMNISCIENT);
        assert_eq!(by_a.len(), 2);
        let by_b = store.candidates(1, b, UpdateId::OMNISCIENT);
        assert_eq!(by_b.len(), 1);
        assert_eq!(by_b[0].0, TupleId(1));
        assert!(store.candidates(1, V::constant("zzz"), UpdateId::OMNISCIENT).is_empty());
    }

    #[test]
    fn visibility_through_store() {
        let mut store = RelationStore::new(RelationId(0), 1);
        let a = V::constant("a");
        store.insert_new(TupleId(1), version(5, 1, Some(&[a])));
        assert!(store.visible(TupleId(1), UpdateId(4)).is_none());
        assert!(store.visible(TupleId(1), UpdateId(5)).is_some());
        assert_eq!(store.visible_count(UpdateId(4)), 0);
        assert_eq!(store.visible_count(UpdateId(9)), 1);
    }

    #[test]
    fn tombstone_and_candidate_filtering() {
        let mut store = RelationStore::new(RelationId(0), 1);
        let a = V::constant("a");
        store.insert_new(TupleId(1), version(1, 1, Some(&[a])));
        store.push_version(TupleId(1), version(2, 2, None));
        // Reader 1 still sees it, reader 2 does not.
        assert_eq!(store.candidates(0, a, UpdateId(1)).len(), 1);
        assert!(store.candidates(0, a, UpdateId(2)).is_empty());
        assert!(store.scan(UpdateId(2)).is_empty());
    }

    #[test]
    fn stale_index_entries_are_filtered() {
        let mut store = RelationStore::new(RelationId(0), 1);
        let x1 = V::Null(NullId(1));
        let c = V::constant("c");
        store.insert_new(TupleId(1), version(1, 1, Some(&[x1])));
        // Null-replacement: new version with the constant.
        store.push_version(TupleId(1), version(1, 2, Some(&[c])));
        // Old index entry for x1 must not produce a match any more.
        assert!(store.candidates(0, x1, UpdateId::OMNISCIENT).is_empty());
        assert_eq!(store.candidates(0, c, UpdateId::OMNISCIENT).len(), 1);
    }

    #[test]
    fn remove_versions_of_update() {
        let mut store = RelationStore::new(RelationId(0), 1);
        let a = V::constant("a");
        let b = V::constant("b");
        store.insert_new(TupleId(1), version(1, 1, Some(&[a])));
        store.insert_new(TupleId(2), version(2, 2, Some(&[b])));
        store.push_version(TupleId(1), version(2, 3, None));

        let gone = store.remove_versions_of(UpdateId(2));
        assert_eq!(gone, vec![TupleId(2)]);
        assert!(!store.contains(TupleId(2)));
        // Tuple 1 is visible again: update 2's tombstone was rolled back.
        assert!(store.visible(TupleId(1), UpdateId::OMNISCIENT).is_some());
        assert_eq!(store.logical_len(), 1);
    }

    #[test]
    fn push_version_to_unknown_tuple_fails() {
        let mut store = RelationStore::new(RelationId(0), 1);
        assert!(!store.push_version(TupleId(9), version(1, 1, None)));
        assert!(store.chain(TupleId(9)).is_none());
        assert_eq!(store.tuple_ids().count(), 0);
        assert_eq!(store.arity(), 1);
        assert_eq!(store.id(), RelationId(0));
    }

    #[test]
    fn visible_cache_is_invalidated_by_writes_and_rollbacks() {
        let mut store = RelationStore::new(RelationId(0), 1);
        let a = V::constant("a");
        let b = V::constant("b");
        store.insert_new(TupleId(1), version(1, 1, Some(&[a])));
        // Prime the cache, then mutate through every write path and re-check.
        assert_eq!(store.scan(UpdateId::OMNISCIENT).len(), 1);
        store.insert_new(TupleId(2), version(1, 2, Some(&[b])));
        assert_eq!(store.scan(UpdateId::OMNISCIENT).len(), 2);
        store.push_version(TupleId(2), version(2, 3, None));
        assert_eq!(store.scan(UpdateId::OMNISCIENT).len(), 1);
        assert_eq!(store.visible_count(UpdateId(1)), 2);
        store.remove_versions_of(UpdateId(2));
        assert_eq!(store.scan(UpdateId::OMNISCIENT).len(), 2);
        // A clone starts with a cold cache but identical contents.
        let clone = store.clone();
        assert_eq!(clone.scan(UpdateId::OMNISCIENT), store.scan(UpdateId::OMNISCIENT));
    }

    #[test]
    fn epoch_bumps_on_every_mutation() {
        let mut store = RelationStore::new(RelationId(0), 1);
        assert_eq!(store.epoch(), 0);
        store.insert_new(TupleId(1), version(1, 1, Some(&[V::constant("a")])));
        assert_eq!(store.epoch(), 1);
        store.push_version(TupleId(1), version(2, 2, None));
        assert_eq!(store.epoch(), 2);
        // Reads do not move the epoch.
        store.scan(UpdateId::OMNISCIENT);
        store.visible_count(UpdateId(1));
        assert_eq!(store.epoch(), 2);
        store.remove_versions_of(UpdateId(2));
        assert_eq!(store.epoch(), 3);
        // Rolling back an update that never wrote here is a no-op.
        store.remove_versions_of(UpdateId(99));
        assert_eq!(store.epoch(), 3);
        // A failed push (unknown tuple) mutates nothing.
        assert!(!store.push_version(TupleId(77), version(3, 4, None)));
        assert_eq!(store.epoch(), 3);
        // The epoch survives a clone.
        assert_eq!(store.clone().epoch(), 3);
    }

    #[test]
    fn writes_only_invalidate_readers_that_can_see_them() {
        let mut store = RelationStore::new(RelationId(0), 1);
        store.insert_new(TupleId(1), version(1, 1, Some(&[V::constant("a")])));
        // Prime memos for a low-numbered and a high-numbered reader.
        assert_eq!(store.scan(UpdateId(2)).len(), 1);
        assert_eq!(store.scan(UpdateId(9)).len(), 1);
        assert_eq!(store.visible_count(UpdateId(2)), 1);
        assert_eq!(store.cache().len(), 2);

        // A write by update 5 is invisible to reader 2: its memo survives,
        // reader 9's is dropped.
        store.insert_new(TupleId(2), version(5, 2, Some(&[V::constant("b")])));
        {
            let cache = store.cache();
            assert!(cache.contains_key(&UpdateId(2)), "reader 2 cannot see update 5's write");
            assert!(!cache.contains_key(&UpdateId(9)), "reader 9 can see it");
        }
        // The retained memo still answers correctly; the invalidated reader
        // recomputes and sees the new row.
        assert_eq!(store.scan(UpdateId(2)).len(), 1);
        assert_eq!(store.scan(UpdateId(9)).len(), 2);
        assert_eq!(store.visible_count(UpdateId(2)), 1);
        assert_eq!(store.visible_count(UpdateId(9)), 2);

        // Rollback of update 5 likewise only touches readers ≥ 5.
        store.remove_versions_of(UpdateId(5));
        assert!(store.cache().contains_key(&UpdateId(2)));
        assert!(!store.cache().contains_key(&UpdateId(9)));
        assert_eq!(store.scan(UpdateId(9)).len(), 1);
    }

    #[test]
    fn candidate_memo_is_invalidated_per_reader() {
        let mut store = RelationStore::new(RelationId(0), 1);
        let a = V::constant("a");
        store.insert_new(TupleId(1), version(1, 1, Some(&[a])));
        // Prime the memo for a low- and a high-numbered reader.
        assert_eq!(store.candidates(0, a, UpdateId(2)).len(), 1);
        assert_eq!(store.candidates(0, a, UpdateId(9)).len(), 1);
        // A write by update 5 must only invalidate reader 9's memo.
        store.insert_new(TupleId(2), version(5, 2, Some(&[a])));
        {
            let memo = store.candidate_cache.lock().unwrap();
            assert!(memo.contains_key(&(UpdateId(2), 0, a)));
            assert!(!memo.contains_key(&(UpdateId(9), 0, a)));
        }
        assert_eq!(store.candidates(0, a, UpdateId(2)).len(), 1);
        assert_eq!(store.candidates(0, a, UpdateId(9)).len(), 2);
        // Memoised and recomputed answers agree after a rollback, too.
        store.remove_versions_of(UpdateId(5));
        assert_eq!(store.candidates(0, a, UpdateId(9)).len(), 1);
        // A clone starts cold but answers identically.
        let clone = store.clone();
        assert!(clone.candidate_cache.lock().unwrap().is_empty());
        assert_eq!(clone.candidates(0, a, UpdateId(9)), store.candidates(0, a, UpdateId(9)));
    }

    #[test]
    fn candidate_memo_bounds_entries() {
        let mut store = RelationStore::new(RelationId(0), 1);
        let a = V::constant("a");
        store.insert_new(TupleId(1), version(1, 1, Some(&[a])));
        for reader in 0..(2 * CANDIDATE_CACHE_MAX_ENTRIES as u64) {
            let expected = usize::from(reader >= 1);
            assert_eq!(store.candidates(0, a, UpdateId(reader)).len(), expected);
        }
        let memo = store.candidate_cache.lock().unwrap();
        assert!(!memo.is_empty() && memo.len() <= CANDIDATE_CACHE_MAX_ENTRIES);
    }

    #[test]
    fn visible_cache_bounds_reader_entries() {
        let mut store = RelationStore::new(RelationId(0), 1);
        store.insert_new(TupleId(1), version(1, 1, Some(&[V::constant("a")])));
        for reader in 0..(2 * VISIBLE_CACHE_MAX_READERS as u64) {
            let expected = usize::from(reader >= 1);
            // `visible_count` populates the count memo, `scan` the row cache;
            // both must respect the per-relation reader bound.
            assert_eq!(store.visible_count(UpdateId(reader)), expected);
            assert_eq!(store.scan(UpdateId(reader)).len(), expected);
        }
        assert!(store.cache().len() <= VISIBLE_CACHE_MAX_READERS);
        let counts = store.count_cache.lock().unwrap();
        assert!(!counts.is_empty() && counts.len() <= VISIBLE_CACHE_MAX_READERS);
    }
}
