//! Regenerates **Figure 3** of the paper: the all-insert workload, sweeping
//! the number of mappings and comparing the `NAIVE`, `COARSE` and `PRECISE`
//! cascading-abort algorithms on (a) the number of aborts, (b) the number of
//! cascading abort requests and (c) the slowdown of `PRECISE` over `COARSE`.
//!
//! ```text
//! cargo run -p youtopia-bench --bin fig3 --release            # reduced scale
//! cargo run -p youtopia-bench --bin fig3 --release -- --paper # paper scale
//! ```

use youtopia_bench::{parse_figure_options, run_figure};
use youtopia_workload::WorkloadKind;

fn main() {
    let options = match parse_figure_options(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: fig3 [--paper|--quick] [--runs N] [--updates N] [--seed N] [--no-naive] [--threads N] [--chase-threads N] [--csv]"
            );
            std::process::exit(2);
        }
    };
    match run_figure(&options, WorkloadKind::AllInserts, "Figure 3 — all-insert workload") {
        Ok(report) => println!("{report}"),
        Err(message) => {
            eprintln!("experiment failed: {message}");
            std::process::exit(1);
        }
    }
}
