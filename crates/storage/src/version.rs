//! Multiversion tuple storage (Section 4.1 of the paper).
//!
//! For each tuple the database maintains multiple versions; a version is
//! created whenever the tuple is inserted, modified through a
//! null-replacement, or deleted. The *visible* version of a tuple for an
//! update with priority number `j` is the one created by the highest-numbered
//! update with number ≤ `j` (and, among that update's own writes, the latest
//! one).

use std::fmt;

use crate::schema::RelationId;
use crate::tuple::{TupleData, TupleId};
use crate::value::{NullId, Value};

/// Priority number of a Youtopia update (Section 3): a lower number means a
/// higher priority, and serializability is defined with respect to this order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UpdateId(pub u64);

impl UpdateId {
    /// A reader id that sees every committed version (used by single-threaded
    /// update exchange and by test assertions).
    pub const OMNISCIENT: UpdateId = UpdateId(u64::MAX);
}

impl fmt::Debug for UpdateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == UpdateId::OMNISCIENT {
            write!(f, "u∞")
        } else {
            write!(f, "u{}", self.0)
        }
    }
}

impl fmt::Display for UpdateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One version of a logical tuple.
#[derive(Clone, Debug)]
pub struct TupleVersion {
    /// Update that created the version.
    pub update: UpdateId,
    /// Database-global sequence number; orders versions created by the same
    /// update.
    pub seq: u64,
    /// Tuple data; `None` marks a deletion version (tombstone).
    pub data: Option<TupleData>,
}

/// The version chain of one logical tuple.
#[derive(Clone, Debug, Default)]
pub struct VersionChain {
    versions: Vec<TupleVersion>,
}

impl VersionChain {
    /// Creates a chain containing a single initial version.
    pub fn new(initial: TupleVersion) -> VersionChain {
        VersionChain { versions: vec![initial] }
    }

    /// Appends a version to the chain.
    pub fn push(&mut self, version: TupleVersion) {
        self.versions.push(version);
    }

    /// Returns the version visible to `reader`: the maximum by
    /// `(update, seq)` among versions created by updates with number ≤
    /// `reader`.
    pub fn visible(&self, reader: UpdateId) -> Option<&TupleVersion> {
        self.versions.iter().filter(|v| v.update <= reader).max_by_key(|v| (v.update, v.seq))
    }

    /// Returns the visible data (or `None` if the tuple is invisible or
    /// deleted for this reader).
    pub fn visible_data(&self, reader: UpdateId) -> Option<&TupleData> {
        self.visible(reader).and_then(|v| v.data.as_ref())
    }

    /// Removes every version created by `update`; returns `true` if the chain
    /// is now empty (the logical tuple never existed for anyone else).
    pub fn remove_versions_of(&mut self, update: UpdateId) -> bool {
        self.versions.retain(|v| v.update != update);
        self.versions.is_empty()
    }

    /// Whether any version was created by `update`.
    pub fn written_by(&self, update: UpdateId) -> bool {
        self.versions.iter().any(|v| v.update == update)
    }

    /// All versions, oldest first in insertion order.
    pub fn versions(&self) -> &[TupleVersion] {
        &self.versions
    }
}

/// A logical write operation, as issued by a user or by a chase step.
///
/// These are the three database modification operations of Section 2 (tuple
/// insertion, tuple deletion, null-replacement), which are also the only write
/// kinds a chase step may perform (Algorithm 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Write {
    /// Insert a new tuple.
    Insert {
        /// Target relation.
        relation: RelationId,
        /// Attribute values (may contain labeled nulls).
        values: Vec<Value>,
    },
    /// Delete an existing tuple.
    Delete {
        /// Relation the tuple belongs to.
        relation: RelationId,
        /// The tuple to delete.
        tuple: TupleId,
    },
    /// Replace **all** occurrences of a labeled null with another value
    /// (a constant, or another labeled null when performing unification).
    NullReplace {
        /// The labeled null being eliminated.
        null: NullId,
        /// Its replacement.
        replacement: Value,
    },
}

impl Write {
    /// Short human-readable description used in logs and examples.
    pub fn describe(&self) -> String {
        match self {
            Write::Insert { relation, values } => format!("insert {relation}{values:?}"),
            Write::Delete { relation, tuple } => format!("delete {relation}/{tuple}"),
            Write::NullReplace { null, replacement } => {
                format!("replace {null} with {replacement}")
            }
        }
    }
}

/// The concrete effect a [`Write`] had on one tuple.
///
/// Conflict detection treats a modification conservatively as a delete
/// followed by an insert (Section 5), which is why both the old and the new
/// data are recorded.
#[derive(Clone, Debug)]
pub enum TupleChange {
    /// A new tuple appeared.
    Inserted {
        /// Relation of the new tuple.
        relation: RelationId,
        /// Its id.
        tuple: TupleId,
        /// Its values.
        values: TupleData,
    },
    /// An existing tuple disappeared.
    Deleted {
        /// Relation of the deleted tuple.
        relation: RelationId,
        /// Its id.
        tuple: TupleId,
        /// The data it had before deletion (as seen by the writer).
        old: TupleData,
    },
    /// An existing tuple changed its values (null-replacement).
    Modified {
        /// Relation of the modified tuple.
        relation: RelationId,
        /// Its id.
        tuple: TupleId,
        /// Data before the modification.
        old: TupleData,
        /// Data after the modification.
        new: TupleData,
    },
}

impl TupleChange {
    /// Relation affected by the change.
    pub fn relation(&self) -> RelationId {
        match self {
            TupleChange::Inserted { relation, .. }
            | TupleChange::Deleted { relation, .. }
            | TupleChange::Modified { relation, .. } => *relation,
        }
    }

    /// Tuple affected by the change.
    pub fn tuple(&self) -> TupleId {
        match self {
            TupleChange::Inserted { tuple, .. }
            | TupleChange::Deleted { tuple, .. }
            | TupleChange::Modified { tuple, .. } => *tuple,
        }
    }

    /// The tuple image that *appeared* through this change (the inserted
    /// values, or the post-modification values), if any. Appearing images seed
    /// LHS violation queries; a modification is conservatively treated as a
    /// delete followed by an insert (Section 5).
    pub fn appeared(&self) -> Option<&TupleData> {
        match self {
            TupleChange::Inserted { values, .. } => Some(values),
            TupleChange::Modified { new, .. } => Some(new),
            TupleChange::Deleted { .. } => None,
        }
    }

    /// The tuple image that *vanished* through this change (the deleted
    /// values, or the pre-modification values), if any. Vanishing images seed
    /// RHS violation queries.
    pub fn vanished(&self) -> Option<&TupleData> {
        match self {
            TupleChange::Deleted { old, .. } => Some(old),
            TupleChange::Modified { old, .. } => Some(old),
            TupleChange::Inserted { .. } => None,
        }
    }
}

/// A write together with the changes it caused, stamped with the writer and a
/// global sequence number. This is the unit logged by the concurrency layer.
#[derive(Clone, Debug)]
pub struct AppliedWrite {
    /// Update that performed the write.
    pub update: UpdateId,
    /// Global sequence number of the write.
    pub seq: u64,
    /// The logical write.
    pub write: Write,
    /// Per-tuple effects (empty if the write was a no-op).
    pub changes: Vec<TupleChange>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value as V;

    fn data(vals: &[&str]) -> TupleData {
        vals.iter().map(|s| V::constant(s)).collect::<Vec<_>>().into()
    }

    #[test]
    fn visibility_respects_update_numbers() {
        let mut chain = VersionChain::new(TupleVersion {
            update: UpdateId(5),
            seq: 10,
            data: Some(data(&["a"])),
        });
        chain.push(TupleVersion { update: UpdateId(3), seq: 20, data: Some(data(&["b"])) });

        // Reader 2 sees nothing (no version from update <= 2).
        assert!(chain.visible(UpdateId(2)).is_none());
        // Reader 3 and 4 see update 3's version even though update 5 wrote
        // physically earlier.
        assert_eq!(chain.visible_data(UpdateId(3)).unwrap(), &data(&["b"]));
        assert_eq!(chain.visible_data(UpdateId(4)).unwrap(), &data(&["b"]));
        // Reader 5+ sees update 5's version: serial order by update number.
        assert_eq!(chain.visible_data(UpdateId(5)).unwrap(), &data(&["a"]));
        assert_eq!(chain.visible_data(UpdateId::OMNISCIENT).unwrap(), &data(&["a"]));
    }

    #[test]
    fn same_update_later_seq_wins() {
        let mut chain = VersionChain::new(TupleVersion {
            update: UpdateId(1),
            seq: 1,
            data: Some(data(&["old"])),
        });
        chain.push(TupleVersion { update: UpdateId(1), seq: 2, data: Some(data(&["new"])) });
        assert_eq!(chain.visible_data(UpdateId(1)).unwrap(), &data(&["new"]));
    }

    #[test]
    fn tombstone_hides_tuple() {
        let mut chain = VersionChain::new(TupleVersion {
            update: UpdateId(1),
            seq: 1,
            data: Some(data(&["a"])),
        });
        chain.push(TupleVersion { update: UpdateId(2), seq: 2, data: None });
        assert!(chain.visible_data(UpdateId(2)).is_none());
        // Lower-numbered readers still see the old version.
        assert!(chain.visible_data(UpdateId(1)).is_some());
    }

    #[test]
    fn removing_versions_of_an_update() {
        let mut chain = VersionChain::new(TupleVersion {
            update: UpdateId(1),
            seq: 1,
            data: Some(data(&["a"])),
        });
        chain.push(TupleVersion { update: UpdateId(2), seq: 2, data: None });
        assert!(chain.written_by(UpdateId(2)));
        let empty = chain.remove_versions_of(UpdateId(2));
        assert!(!empty);
        assert!(!chain.written_by(UpdateId(2)));
        assert!(chain.visible_data(UpdateId(5)).is_some());
        let empty = chain.remove_versions_of(UpdateId(1));
        assert!(empty);
    }

    #[test]
    fn write_descriptions() {
        let w = Write::Insert { relation: RelationId(0), values: vec![V::constant("a")] };
        assert!(w.describe().contains("insert"));
        let w = Write::Delete { relation: RelationId(0), tuple: TupleId(3) };
        assert!(w.describe().contains("delete"));
        let w = Write::NullReplace { null: NullId(1), replacement: V::constant("c") };
        assert!(w.describe().contains("replace"));
    }

    #[test]
    fn tuple_change_accessors() {
        let ch = TupleChange::Modified {
            relation: RelationId(4),
            tuple: TupleId(9),
            old: data(&["a"]),
            new: data(&["b"]),
        };
        assert_eq!(ch.relation(), RelationId(4));
        assert_eq!(ch.tuple(), TupleId(9));
        assert_eq!(ch.appeared(), Some(&data(&["b"])));
        assert_eq!(ch.vanished(), Some(&data(&["a"])));

        let ins = TupleChange::Inserted {
            relation: RelationId(0),
            tuple: TupleId(1),
            values: data(&["v"]),
        };
        assert_eq!(ins.appeared(), Some(&data(&["v"])));
        assert_eq!(ins.vanished(), None);
        let del =
            TupleChange::Deleted { relation: RelationId(0), tuple: TupleId(1), old: data(&["v"]) };
        assert_eq!(del.appeared(), None);
        assert_eq!(del.vanished(), Some(&data(&["v"])));
    }

    #[test]
    fn update_id_display() {
        assert_eq!(format!("{}", UpdateId(3)), "u3");
        assert_eq!(format!("{}", UpdateId::OMNISCIENT), "u∞");
    }
}
