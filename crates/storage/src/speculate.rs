//! Speculative execution support: the [`ChaseData`] abstraction over what a
//! chase step reads and writes, and [`SpeculativeDb`] — a write overlay that
//! lets a whole chase step run against a *read-locked* base database.
//!
//! The deterministic scheduler commits chase steps in a fixed order, but the
//! steps themselves are pure functions of (a) the data they read and (b) the
//! ids they allocate. A speculative step therefore runs against the committed
//! base through this overlay: writes land in a private buffer that shadows the
//! base tuple-by-tuple, id allocators advance private counters seeded from the
//! base, and *every* base observation — scans, candidate probes, epoch
//! checks, null-occurrence queries — records the touched relation's write
//! epoch into a [`SpeculationReadSet`]. At commit time the sequencer replays
//! the validation in one integer-compare pass: if no recorded epoch (and no
//! consulted allocator) moved since the speculation ran, re-executing the step
//! now would read exactly the same data and produce byte-identical results, so
//! the buffered outcome can be committed as-is; otherwise it is discarded and
//! the step re-executes for real.
//!
//! Exactness matters more than it may look: chase analysis stamps relation
//! epochs into its violation queue and memoised repair plans, and candidate
//! probes observe the column index's *append order* (not tuple-id order). The
//! overlay reproduces both — overlay epochs continue the base epoch per
//! mutation, and candidate iteration walks the base index bucket first and the
//! overlay's appended entries second, with the same first-occurrence dedup the
//! real index uses — so a committed speculation leaves the execution in the
//! same state, bit for bit, as a non-speculative step would have.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::database::Database;
use crate::error::StorageError;
use crate::schema::{Catalog, RelationId};
use crate::snapshot::{DataView, Snapshot};
use crate::tuple::{self, TupleData, TupleId};
use crate::value::{NullId, Value};
use crate::version::{AppliedWrite, TupleChange, UpdateId, Write};

/// What a chase step needs from its data source: visibility-filtered reads,
/// relation write epochs, the committed-delta feed of the shared violation
/// index (the [`ViolationFeed`](crate::feed::ViolationFeed) supertrait), and
/// id allocation. Implemented by [`Database`] (direct execution) and
/// [`SpeculativeDb`] (speculative execution against a read-locked base);
/// `UpdateExecution::begin_step` / `finish_step` are generic over it so both
/// paths run the *same* chase code.
pub trait ChaseData: crate::feed::ViolationFeed {
    /// The read view handed to query evaluation.
    type View<'a>: DataView
    where
        Self: 'a;

    /// A visibility-filtered view for `reader`.
    fn view(&self, reader: UpdateId) -> Self::View<'_>;

    /// The relation's write epoch (see [`Database::relation_epoch`]).
    fn relation_epoch(&self, relation: RelationId) -> u64;

    /// Allocates a fresh labeled null.
    fn fresh_null(&self) -> NullId;

    /// Data of one tuple as visible to `reader`.
    fn visible_tuple(
        &self,
        relation: RelationId,
        tuple: TupleId,
        reader: UpdateId,
    ) -> Option<TupleData>;

    /// Applies a batch of writes on behalf of `writer`.
    fn apply_all_owned(
        &mut self,
        writes: Vec<Write>,
        writer: UpdateId,
    ) -> Result<Vec<AppliedWrite>, StorageError>;
}

impl ChaseData for Database {
    type View<'a> = Snapshot<'a>;

    fn view(&self, reader: UpdateId) -> Snapshot<'_> {
        self.snapshot(reader)
    }

    fn relation_epoch(&self, relation: RelationId) -> u64 {
        Database::relation_epoch(self, relation)
    }

    fn fresh_null(&self) -> NullId {
        Database::fresh_null(self)
    }

    fn visible_tuple(
        &self,
        relation: RelationId,
        tuple: TupleId,
        reader: UpdateId,
    ) -> Option<TupleData> {
        self.visible(relation, tuple, reader)
    }

    fn apply_all_owned(
        &mut self,
        writes: Vec<Write>,
        writer: UpdateId,
    ) -> Result<Vec<AppliedWrite>, StorageError> {
        Database::apply_all_owned(self, writes, writer)
    }
}

/// Everything a speculative step observed, reduced to the integer compares
/// that decide whether its buffered outcome is still exact.
#[derive(Clone, Debug)]
pub struct SpeculationReadSet {
    /// Relation → base write epoch at observation time. Any mutation of a
    /// listed relation since then invalidates the speculation.
    reads: BTreeMap<RelationId, u64>,
    base_tuple: u64,
    tuples_allocated: u64,
    base_null: u64,
    nulls_minted: u64,
}

impl SpeculationReadSet {
    /// Whether re-executing the step against `db` now would read exactly what
    /// the speculation read: no observed relation epoch moved, and — when the
    /// speculation allocated ids — the allocators still sit where it left
    /// them, so the buffered outcome embeds the very ids a real run would
    /// assign.
    pub fn still_valid(&self, db: &Database) -> bool {
        if self.tuples_allocated > 0 && db.wal_counters().0 != self.base_tuple {
            return false;
        }
        if self.nulls_minted > 0 && db.null_counter() != self.base_null {
            return false;
        }
        self.reads.iter().all(|(relation, epoch)| db.relation_epoch(*relation) == *epoch)
    }

    /// Advances the real null allocator past the ids the speculation minted.
    /// Committing re-applies the buffered *writes* (which re-allocates tuple
    /// ids and sequence numbers), but null minting happens during repair
    /// planning, which a commit does not re-run.
    pub fn commit_allocators(&self, db: &Database) {
        for _ in 0..self.nulls_minted {
            db.fresh_null();
        }
    }

    /// Number of relations whose epoch the speculation depends on.
    pub fn relations_read(&self) -> usize {
        self.reads.len()
    }

    /// Number of labeled nulls the speculation minted.
    pub fn nulls_minted(&self) -> u64 {
        self.nulls_minted
    }
}

/// A write overlay over a read-locked [`Database`], recording every base
/// observation. See the module docs for the validation model.
///
/// The overlay is single-consumer by construction (one speculating worker owns
/// it for one step), so observation recording uses `Cell`/`RefCell` rather
/// than locks; views are only ever taken for the speculating update itself.
pub struct SpeculativeDb<'db> {
    base: &'db Database,
    writer: UpdateId,
    /// Tuple → (relation, current overlay data); `None` data is a tombstone.
    /// Only tuples the speculation wrote appear here.
    touched: HashMap<TupleId, (RelationId, Option<TupleData>)>,
    /// Overlay-inserted tuple ids per relation, in id order. All overlay ids
    /// are ≥ the base's `next_tuple`, so they sort after every base row.
    inserted: HashMap<RelationId, BTreeSet<TupleId>>,
    /// Mirror of the column index's *appended* entries: candidate iteration
    /// replays the base bucket first, then these, in application order.
    index_events: HashMap<(RelationId, usize, Value), Vec<TupleId>>,
    /// Mirror of the null-occurrence index for overlay writes.
    null_mentions: HashMap<NullId, BTreeSet<TupleId>>,
    /// Overlay mutations per relation; overlay epoch = base epoch + bumps,
    /// which is exactly where the real epoch lands after a commit.
    epoch_bumps: HashMap<RelationId, u64>,
    base_tuple: u64,
    next_tuple: u64,
    base_null: u64,
    minted_nulls: Cell<u64>,
    next_seq: u64,
    reads: RefCell<BTreeMap<RelationId, u64>>,
}

impl<'db> SpeculativeDb<'db> {
    /// Starts an empty overlay for one step of `writer` against `base`.
    pub fn new(base: &'db Database, writer: UpdateId) -> SpeculativeDb<'db> {
        let (next_tuple, next_null, next_seq) = base.wal_counters();
        SpeculativeDb {
            base,
            writer,
            touched: HashMap::new(),
            inserted: HashMap::new(),
            index_events: HashMap::new(),
            null_mentions: HashMap::new(),
            epoch_bumps: HashMap::new(),
            base_tuple: next_tuple,
            next_tuple,
            base_null: next_null,
            minted_nulls: Cell::new(0),
            next_seq,
            reads: RefCell::new(BTreeMap::new()),
        }
    }

    /// Finishes the speculation, returning what it observed.
    pub fn into_read_set(self) -> SpeculationReadSet {
        SpeculationReadSet {
            reads: self.reads.into_inner(),
            base_tuple: self.base_tuple,
            tuples_allocated: self.next_tuple - self.base_tuple,
            base_null: self.base_null,
            nulls_minted: self.minted_nulls.get(),
        }
    }

    /// Records that the step's outcome depends on `relation`'s base contents.
    fn record(&self, relation: RelationId) {
        let mut reads = self.reads.borrow_mut();
        reads.entry(relation).or_insert_with(|| self.base.relation_epoch(relation));
    }

    /// The read-locked base database this overlay speculates against.
    pub(crate) fn base(&self) -> &Database {
        self.base
    }

    /// Records a base epoch read (the violation feed pins its interest set
    /// through this; see `crate::feed`).
    pub(crate) fn record_read(&self, relation: RelationId) {
        self.record(relation);
    }

    /// Total buffered overlay mutations (epoch bumps across all relations).
    pub(crate) fn overlay_mutations(&self) -> u64 {
        self.epoch_bumps.values().sum()
    }

    /// Whether the overlay itself buffered a mutation of `relation`.
    pub(crate) fn overlay_mutated(&self, relation: RelationId) -> bool {
        self.epoch_bumps.contains_key(&relation)
    }

    /// Records a dependency on *every* relation (null-occurrence queries and
    /// null-replacement writes scan the whole database).
    fn record_all(&self) {
        for relation in self.base.catalog().relation_ids() {
            self.record(relation);
        }
    }

    fn note_overlay_mutation(&mut self, relation: RelationId) {
        *self.epoch_bumps.entry(relation).or_default() += 1;
    }

    fn visible_in(
        &self,
        relation: RelationId,
        tuple: TupleId,
        reader: UpdateId,
    ) -> Option<TupleData> {
        if reader >= self.writer {
            if let Some((rel, data)) = self.touched.get(&tuple) {
                if *rel == relation {
                    return data.clone();
                }
            }
        }
        self.base.visible(relation, tuple, reader)
    }

    fn register_nulls(&mut self, tuple: TupleId, data: &TupleData) {
        for null in tuple::nulls_of(data) {
            self.null_mentions.entry(null).or_default().insert(tuple);
        }
    }

    fn index_values(&mut self, relation: RelationId, tuple: TupleId, data: &TupleData) {
        for (col, value) in data.iter().enumerate() {
            let bucket = self.index_events.entry((relation, col, *value)).or_default();
            if bucket.last() != Some(&tuple) {
                bucket.push(tuple);
            }
        }
    }

    /// Mirrors [`Database::apply`] against the overlay, change for change and
    /// epoch bump for epoch bump.
    fn apply(&mut self, write: &Write) -> Result<Vec<TupleChange>, StorageError> {
        match write {
            Write::Insert { relation, values } => {
                let schema_arity = self.base.catalog().try_schema(*relation)?.arity();
                if values.len() != schema_arity {
                    return Err(StorageError::ArityMismatch {
                        relation: *relation,
                        expected: schema_arity,
                        actual: values.len(),
                    });
                }
                let tuple = TupleId(self.next_tuple);
                self.next_tuple += 1;
                self.next_seq += 1;
                let data: TupleData = values.clone().into();
                self.register_nulls(tuple, &data);
                self.index_values(*relation, tuple, &data);
                self.touched.insert(tuple, (*relation, Some(data.clone())));
                self.inserted.entry(*relation).or_default().insert(tuple);
                self.note_overlay_mutation(*relation);
                Ok(vec![TupleChange::Inserted { relation: *relation, tuple, values: data }])
            }
            Write::Delete { relation, tuple } => {
                // A delete's no-op checks read the target relation.
                self.record(*relation);
                let store = self
                    .base
                    .version_store()
                    .relation(*relation)
                    .ok_or(StorageError::UnknownRelation(*relation))?;
                let known = store.contains(*tuple)
                    || self.touched.get(tuple).is_some_and(|(rel, _)| rel == relation);
                if !known {
                    return Ok(Vec::new());
                }
                let Some(old) = self.visible_in(*relation, *tuple, self.writer) else {
                    return Ok(Vec::new());
                };
                self.next_seq += 1;
                self.touched.insert(*tuple, (*relation, None));
                self.note_overlay_mutation(*relation);
                Ok(vec![TupleChange::Deleted { relation: *relation, tuple: *tuple, old }])
            }
            Write::NullReplace { null, replacement } => {
                // Replacement walks the global null index: depend on everything.
                self.record_all();
                let mut subst = HashMap::new();
                subst.insert(*null, *replacement);
                let mut affected: BTreeSet<TupleId> =
                    self.base.version_store().tuples_mentioning(*null).into_iter().collect();
                if let Some(extra) = self.null_mentions.get(null) {
                    affected.extend(extra.iter().copied());
                }
                let mut changes = Vec::new();
                for tuple in affected {
                    let relation = match self.touched.get(&tuple) {
                        Some((rel, _)) => *rel,
                        None => match self.base.tuple_relation(tuple) {
                            Some(rel) => rel,
                            None => continue,
                        },
                    };
                    let Some(old) = self.visible_in(relation, tuple, self.writer) else {
                        continue;
                    };
                    let (new_values, changed) = tuple::substitute_nulls(&old, &subst);
                    if !changed {
                        continue;
                    }
                    let new: TupleData = new_values.into();
                    self.next_seq += 1;
                    self.register_nulls(tuple, &new);
                    self.index_values(relation, tuple, &new);
                    self.touched.insert(tuple, (relation, Some(new.clone())));
                    self.note_overlay_mutation(relation);
                    changes.push(TupleChange::Modified { relation, tuple, old, new });
                }
                Ok(changes)
            }
        }
    }
}

impl ChaseData for SpeculativeDb<'_> {
    type View<'a>
        = SpeculativeView<'a>
    where
        Self: 'a;

    fn view(&self, reader: UpdateId) -> SpeculativeView<'_> {
        debug_assert_eq!(
            reader, self.writer,
            "speculative views exist only for the speculating update"
        );
        SpeculativeView { db: self, reader }
    }

    fn relation_epoch(&self, relation: RelationId) -> u64 {
        self.record(relation);
        self.base.relation_epoch(relation) + self.epoch_bumps.get(&relation).copied().unwrap_or(0)
    }

    fn fresh_null(&self) -> NullId {
        let minted = self.minted_nulls.get();
        self.minted_nulls.set(minted + 1);
        NullId(self.base_null + minted)
    }

    fn visible_tuple(
        &self,
        relation: RelationId,
        tuple: TupleId,
        reader: UpdateId,
    ) -> Option<TupleData> {
        self.record(relation);
        self.visible_in(relation, tuple, reader)
    }

    fn apply_all_owned(
        &mut self,
        writes: Vec<Write>,
        writer: UpdateId,
    ) -> Result<Vec<AppliedWrite>, StorageError> {
        debug_assert_eq!(writer, self.writer, "overlay writes belong to the speculating update");
        let mut out = Vec::with_capacity(writes.len());
        for w in writes {
            let seq = self.next_seq;
            let changes = self.apply(&w)?;
            out.push(AppliedWrite { update: writer, seq, write: w, changes });
        }
        Ok(out)
    }
}

/// The [`DataView`] over a [`SpeculativeDb`]: base rows with the overlay's
/// writes shadowed in, every access recorded.
pub struct SpeculativeView<'a> {
    db: &'a SpeculativeDb<'a>,
    reader: UpdateId,
}

impl DataView for SpeculativeView<'_> {
    fn catalog(&self) -> &Catalog {
        self.db.base.catalog()
    }

    fn tuple(&self, relation: RelationId, tuple: TupleId) -> Option<TupleData> {
        self.db.record(relation);
        self.db.visible_in(relation, tuple, self.reader)
    }

    fn scan(&self, relation: RelationId) -> Vec<(TupleId, TupleData)> {
        self.db.record(relation);
        let mut rows: Vec<(TupleId, TupleData)> = self
            .db
            .base
            .scan(relation, self.reader)
            .into_iter()
            .filter_map(|(id, data)| match self.db.touched.get(&id) {
                Some((rel, None)) if *rel == relation => None,
                Some((rel, Some(new))) if *rel == relation => Some((id, new.clone())),
                _ => Some((id, data)),
            })
            .collect();
        // Overlay inserts carry ids above every base row: appending them in id
        // order preserves the scan's global id order.
        if let Some(ids) = self.db.inserted.get(&relation) {
            for &id in ids {
                if let Some((_, Some(data))) = self.db.touched.get(&id) {
                    rows.push((id, data.clone()));
                }
            }
        }
        rows
    }

    fn candidates(
        &self,
        relation: RelationId,
        column: usize,
        value: Value,
    ) -> Vec<(TupleId, TupleData)> {
        self.db.record(relation);
        let Some(store) = self.db.base.version_store().relation(relation) else {
            return Vec::new();
        };
        // Candidate order is the index bucket's *append* order, which analysis
        // outcomes depend on: walk the base bucket, then the overlay's
        // appended entries, with the same first-occurrence dedup the real
        // index applies after a commit.
        let events = self.db.index_events.get(&(relation, column, value));
        let mut seen = Vec::new();
        let mut out = Vec::new();
        let bucket = store.index_bucket(column, &value);
        for &tid in bucket.iter().chain(events.into_iter().flatten()) {
            if seen.contains(&tid) {
                continue;
            }
            seen.push(tid);
            if let Some(data) = self.db.visible_in(relation, tid, self.reader) {
                if data.get(column) == Some(&value) {
                    out.push((tid, data));
                }
            }
        }
        out
    }

    fn null_occurrences(&self, null: NullId) -> Vec<(RelationId, TupleId, TupleData)> {
        self.db.record_all();
        let mut affected: BTreeSet<TupleId> =
            self.db.base.version_store().tuples_mentioning(null).into_iter().collect();
        if let Some(extra) = self.db.null_mentions.get(&null) {
            affected.extend(extra.iter().copied());
        }
        let mut out = Vec::new();
        for tuple in affected {
            let relation = match self.db.touched.get(&tuple) {
                Some((rel, _)) => *rel,
                None => match self.db.base.tuple_relation(tuple) {
                    Some(rel) => rel,
                    None => continue,
                },
            };
            if let Some(data) = self.db.visible_in(relation, tuple, self.reader) {
                if tuple::contains_null(&data, null) {
                    out.push((relation, tuple, data));
                }
            }
        }
        out
    }

    fn relation_size(&self, relation: RelationId) -> usize {
        self.db.record(relation);
        let mut count = self.db.base.visible_count(relation, self.reader);
        if self.reader >= self.db.writer {
            for (id, (rel, data)) in &self.db.touched {
                if *rel != relation {
                    continue;
                }
                let overlay_new = id.0 >= self.db.base_tuple;
                match (overlay_new, data) {
                    (true, Some(_)) => count += 1,
                    (false, None) => count -= 1,
                    _ => {}
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value as V;

    fn fixture() -> (Database, RelationId, RelationId) {
        let mut db = Database::new();
        let r = db.add_relation("R", ["a", "b"]).unwrap();
        let s = db.add_relation("S", ["x"]).unwrap();
        db.insert_by_name("R", &["a", "b"], UpdateId(1));
        db.insert_by_name("R", &["a", "c"], UpdateId(1));
        db.insert_by_name("S", &["w"], UpdateId(2));
        (db, r, s)
    }

    /// Applying the same writes to the overlay and to a database clone must
    /// produce identical reads through every view method.
    fn assert_views_match(db: &Database, spec: &SpeculativeDb<'_>, reader: UpdateId) {
        let real = db.snapshot(reader);
        let overlay = spec.view(reader);
        for relation in db.catalog().relation_ids() {
            assert_eq!(real.scan(relation), overlay.scan(relation), "scan {relation:?}");
            assert_eq!(
                real.relation_size(relation),
                overlay.relation_size(relation),
                "size {relation:?}"
            );
            for (_, data) in real.scan(relation) {
                for (col, value) in data.iter().enumerate() {
                    assert_eq!(
                        real.candidates(relation, col, *value),
                        overlay.candidates(relation, col, *value),
                        "candidates {relation:?} {col} {value:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn overlay_insert_matches_real_apply() {
        let (base, r, _) = fixture();
        let mut real = base.clone();
        let mut spec = SpeculativeDb::new(&base, UpdateId(5));
        let writes = vec![
            Write::Insert { relation: r, values: vec![V::constant("n"), V::constant("m")] },
            Write::Insert { relation: r, values: vec![V::constant("a"), V::constant("z")] },
        ];
        let spec_applied = spec.apply_all_owned(writes.clone(), UpdateId(5)).unwrap();
        let real_applied = real.apply_all_owned(writes, UpdateId(5)).unwrap();
        assert_eq!(spec_applied.len(), real_applied.len());
        for (s, r) in spec_applied.iter().zip(real_applied.iter()) {
            assert_eq!(s.seq, r.seq);
            assert_eq!(format!("{:?}", s.changes), format!("{:?}", r.changes));
        }
        assert_eq!(ChaseData::relation_epoch(&spec, r), real.relation_epoch(r));
        assert_views_match(&real, &spec, UpdateId(5));
    }

    #[test]
    fn overlay_delete_and_modify_match_real_apply() {
        let (mut base, r, s) = fixture();
        let x = base.fresh_null();
        base.apply(
            &Write::Insert { relation: r, values: vec![V::Null(x), V::constant("k")] },
            UpdateId(2),
        )
        .unwrap();
        base.apply(&Write::Insert { relation: s, values: vec![V::Null(x)] }, UpdateId(2)).unwrap();
        let victim = base.scan(r, UpdateId::OMNISCIENT)[0].0;

        let mut real = base.clone();
        let mut spec = SpeculativeDb::new(&base, UpdateId(6));
        let writes = vec![
            Write::Delete { relation: r, tuple: victim },
            Write::NullReplace { null: x, replacement: V::constant("NYC") },
            // Deleting an invisible tuple stays a no-op through the overlay.
            Write::Delete { relation: r, tuple: victim },
        ];
        let spec_applied = spec.apply_all_owned(writes.clone(), UpdateId(6)).unwrap();
        let real_applied = real.apply_all_owned(writes, UpdateId(6)).unwrap();
        for (sw, rw) in spec_applied.iter().zip(real_applied.iter()) {
            assert_eq!(format!("{:?}", sw.changes), format!("{:?}", rw.changes));
        }
        for relation in [r, s] {
            assert_eq!(
                ChaseData::relation_epoch(&spec, relation),
                real.relation_epoch(relation),
                "epoch {relation:?}"
            );
        }
        assert_views_match(&real, &spec, UpdateId(6));
        assert_eq!(
            spec.view(UpdateId(6)).null_occurrences(x),
            real.snapshot(UpdateId(6)).null_occurrences(x)
        );
    }

    #[test]
    fn overlay_nulls_and_inserts_feed_later_replacements() {
        let (base, r, _) = fixture();
        let mut real = base.clone();
        let mut spec = SpeculativeDb::new(&base, UpdateId(7));
        // Mint a null exactly as repair planning would, then insert with it
        // and replace it — the replacement must find the overlay insert.
        let spec_null = ChaseData::fresh_null(&spec);
        let real_null = real.fresh_null();
        assert_eq!(spec_null, real_null);
        let writes = vec![
            Write::Insert { relation: r, values: vec![V::Null(spec_null), V::constant("q")] },
            Write::NullReplace { null: spec_null, replacement: V::constant("resolved") },
        ];
        let spec_applied = spec.apply_all_owned(writes.clone(), UpdateId(7)).unwrap();
        let real_applied = real.apply_all_owned(writes, UpdateId(7)).unwrap();
        assert_eq!(spec_applied.len(), real_applied.len());
        assert_eq!(
            format!("{:?}", spec_applied.last().unwrap().changes),
            format!("{:?}", real_applied.last().unwrap().changes),
            "the replacement must rewrite the overlay-inserted tuple"
        );
        assert_views_match(&real, &spec, UpdateId(7));
    }

    #[test]
    fn read_set_validation_detects_conflicting_commits() {
        let (mut base, r, s) = fixture();
        let spec = {
            let spec = SpeculativeDb::new(&base, UpdateId(5));
            let view = spec.view(UpdateId(5));
            view.scan(r);
            spec
        };
        let reads = spec.into_read_set();
        assert!(reads.still_valid(&base));
        assert_eq!(reads.relations_read(), 1, "only R was observed");
        // A commit into the *unread* relation leaves the speculation valid;
        // one into the read relation invalidates it.
        base.insert_by_name("S", &["other"], UpdateId(3));
        assert!(reads.still_valid(&base), "writes to S are irrelevant: {s:?} unread");
        base.insert_by_name("R", &["p", "q"], UpdateId(3));
        assert!(!reads.still_valid(&base));
    }

    #[test]
    fn read_set_validates_allocators() {
        let (base, r, _) = fixture();
        // Tuple allocation: any interleaved insert shifts predicted ids.
        let mut spec = SpeculativeDb::new(&base, UpdateId(5));
        spec.apply_all_owned(
            vec![Write::Insert { relation: r, values: vec![V::constant("x"), V::constant("y")] }],
            UpdateId(5),
        )
        .unwrap();
        let reads = spec.into_read_set();
        let mut moved = base.clone();
        moved.insert_by_name("S", &["w2"], UpdateId(3));
        assert!(!reads.still_valid(&moved), "tuple counter moved");

        // Null minting: validation pins the counter, commit advances it.
        let spec = SpeculativeDb::new(&base, UpdateId(5));
        let _ = ChaseData::fresh_null(&spec);
        let _ = ChaseData::fresh_null(&spec);
        let reads = spec.into_read_set();
        assert_eq!(reads.nulls_minted(), 2);
        assert!(reads.still_valid(&base));
        reads.commit_allocators(&base);
        assert!(!reads.still_valid(&base), "commit consumed the minted ids");
        assert_eq!(base.null_counter(), 2, "the two minted ids are consumed");
    }

    #[test]
    fn epoch_observations_are_recorded_as_reads() {
        let (mut base, r, _) = fixture();
        let spec = SpeculativeDb::new(&base, UpdateId(5));
        // An epoch probe alone (as the violation queue's revalidation does)
        // must pin the relation.
        let _ = ChaseData::relation_epoch(&spec, r);
        let reads = spec.into_read_set();
        assert!(reads.still_valid(&base));
        base.insert_by_name("R", &["e", "f"], UpdateId(3));
        assert!(!reads.still_valid(&base));
    }

    #[test]
    fn candidate_order_follows_index_append_order() {
        // A null replacement re-indexes the rewritten tuple *late*: its bucket
        // position differs from its id order, and the overlay must agree.
        let mut base = Database::new();
        let r = base.add_relation("R", ["a"]).unwrap();
        let x = base.fresh_null();
        base.apply(&Write::Insert { relation: r, values: vec![V::Null(x)] }, UpdateId(1)).unwrap();
        base.insert_by_name("R", &["hit"], UpdateId(1));

        let mut real = base.clone();
        let mut spec = SpeculativeDb::new(&base, UpdateId(4));
        let writes = vec![Write::NullReplace { null: x, replacement: V::constant("hit") }];
        spec.apply_all_owned(writes.clone(), UpdateId(4)).unwrap();
        real.apply_all_owned(writes, UpdateId(4)).unwrap();

        let real_rows = real.snapshot(UpdateId(4)).candidates(r, 0, V::constant("hit"));
        let spec_rows = spec.view(UpdateId(4)).candidates(r, 0, V::constant("hit"));
        assert_eq!(real_rows, spec_rows);
        assert_eq!(real_rows.len(), 2);
        // The rewritten tuple (id 0) was appended after the original hit
        // (id 1): bucket order, not id order.
        assert_eq!(real_rows[0].0, TupleId(1));
        assert_eq!(real_rows[1].0, TupleId(0));
    }
}
