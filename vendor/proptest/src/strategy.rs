//! Value-generation strategies (generation only — no shrinking).

use std::ops::Range;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest, a strategy here is just a deterministic function
/// of the test RNG — there is no value tree and no simplification.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several strategies (the engine of `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.rng.gen_range(0..self.0.len());
        self.0[arm].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}
