//! The [`ViolationFeed`]: the committed-write delta feed the engine-shared
//! violation index is built on.
//!
//! The chase's delta-driven violation queue needs one question answered at the
//! start of every step: *which of the relations my queued violations read were
//! mutated since my previous step?* The original (per-update) answer probes
//! every indexed relation's write epoch and compares it against a per-update
//! watermark — cost proportional to the update's queue footprint, per update,
//! per step. The shared answer is this trait: the store keeps **one**
//! append-only log of committed relation mutations ([`VersionStore`] appends
//! exactly one entry per write-epoch bump), and every live update holds a
//! plain integer cursor into it. A step replays only the window its cursor
//! missed, so the cost of detection bookkeeping depends on *what changed
//! since the update last looked* — independent of how many updates are live,
//! which is what makes detection flat under concurrency.
//!
//! Truncation is always safe: when the backlog no longer reaches back to a
//! cursor (quiescence GC cleared it, or the unconditional cap dropped old
//! entries), [`ViolationFeed::dirty_relations`] answers `None` and the
//! consumer treats its whole interest set as dirty — the per-violation epoch
//! compare downstream then filters exactly what a per-update check would
//! have, so the fallback costs time, never correctness.
//!
//! Implementations:
//!
//! * [`Database`] — the real feed, backed by
//!   [`VersionStore::deltas_since`](crate::VersionStore::deltas_since);
//! * [`SpeculativeDb`](crate::SpeculativeDb) — the speculative overlay.
//!   Its window is the base window plus the overlay's own buffered
//!   mutations, and *every interest relation is recorded as an epoch read*:
//!   if any other update commits into a relation the speculating update's
//!   queue watches, validation discards the buffered outcome, so a committed
//!   speculation's cursor advance can never skip a delta that mattered.

use crate::database::Database;
use crate::schema::RelationId;
use crate::speculate::SpeculativeDb;

/// A source of committed write deltas with stable, monotonically increasing
/// sequence numbers. See the module docs for the maintenance model.
pub trait ViolationFeed {
    /// The current delta sequence number: the total number of relation
    /// mutations committed so far (through this view).
    fn delta_seq(&self) -> u64;

    /// The subset of `interest` (in `interest` order) mutated in the delta
    /// window `[since, delta_seq())`. Returns `None` when the backlog no
    /// longer reaches back to `since`; the caller must then treat all of
    /// `interest` as dirty.
    fn dirty_relations(&self, since: u64, interest: &[RelationId]) -> Option<Vec<RelationId>>;
}

impl ViolationFeed for Database {
    fn delta_seq(&self) -> u64 {
        self.version_store().delta_seq()
    }

    fn dirty_relations(&self, since: u64, interest: &[RelationId]) -> Option<Vec<RelationId>> {
        self.version_store().dirty_in_window(since, interest)
    }
}

impl ViolationFeed for SpeculativeDb<'_> {
    /// Base deltas plus the overlay's own buffered mutations: exactly where
    /// the real sequence lands after this speculation commits (assuming no
    /// interference, which validation guarantees).
    fn delta_seq(&self) -> u64 {
        self.base().version_store().delta_seq() + self.overlay_mutations()
    }

    fn dirty_relations(&self, since: u64, interest: &[RelationId]) -> Option<Vec<RelationId>> {
        // Pin every watched relation as an epoch read: any commit into one of
        // them between this speculation and its validation must discard the
        // buffered outcome, because the discarded deltas would otherwise be
        // skipped when the committed cursor jumps past them.
        for &relation in interest {
            self.record_read(relation);
        }
        let window = self.base().version_store().deltas_since(since)?;
        let window: std::collections::HashSet<RelationId> = window.collect();
        Some(
            interest
                .iter()
                .copied()
                .filter(|r| window.contains(r) || self.overlay_mutated(*r))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speculate::ChaseData;
    use crate::value::Value as V;
    use crate::version::{UpdateId, Write};

    fn fixture() -> (Database, RelationId, RelationId) {
        let mut db = Database::new();
        let r = db.add_relation("R", ["a"]).unwrap();
        let s = db.add_relation("S", ["x"]).unwrap();
        (db, r, s)
    }

    #[test]
    fn deltas_record_every_mutation_in_commit_order() {
        let (mut db, r, s) = fixture();
        assert_eq!(ViolationFeed::delta_seq(&db), 0);
        db.insert_by_name("R", &["a"], UpdateId(1));
        db.insert_by_name("S", &["b"], UpdateId(1));
        let t = db.insert_by_name("R", &["c"], UpdateId(1));
        assert_eq!(ViolationFeed::delta_seq(&db), 3);
        let window: Vec<RelationId> = db.version_store().deltas_since(0).unwrap().collect();
        assert_eq!(window, vec![r, s, r]);
        // Deletes and rollbacks feed the log too.
        db.apply(&Write::Delete { relation: r, tuple: t }, UpdateId(2)).unwrap();
        assert_eq!(ViolationFeed::delta_seq(&db), 4);
        db.rollback_update(UpdateId(2));
        assert_eq!(ViolationFeed::delta_seq(&db), 5);
        // A no-op write (deleting an unknown tuple) records nothing, exactly
        // like the epoch it mirrors.
        db.apply(&Write::Delete { relation: r, tuple: crate::TupleId(99) }, UpdateId(3)).unwrap();
        assert_eq!(ViolationFeed::delta_seq(&db), 5);
    }

    #[test]
    fn dirty_relations_filters_by_interest_and_window() {
        let (mut db, r, s) = fixture();
        db.insert_by_name("R", &["a"], UpdateId(1));
        let cursor = ViolationFeed::delta_seq(&db);
        db.insert_by_name("S", &["b"], UpdateId(1));
        assert_eq!(db.dirty_relations(cursor, &[r, s]), Some(vec![s]));
        assert_eq!(db.dirty_relations(cursor, &[r]), Some(vec![]));
        assert_eq!(db.dirty_relations(ViolationFeed::delta_seq(&db), &[r, s]), Some(vec![]));
    }

    #[test]
    fn truncation_is_detected_not_silently_skipped() {
        let (mut db, r, _) = fixture();
        db.insert_by_name("R", &["a"], UpdateId(1));
        let cursor = 0;
        assert!(db.dirty_relations(cursor, &[r]).is_some());
        db.truncate_delta_backlog();
        assert_eq!(db.delta_backlog_len(), 0);
        // The sequence keeps counting from where it was.
        assert_eq!(ViolationFeed::delta_seq(&db), 1);
        assert_eq!(db.dirty_relations(cursor, &[r]), None, "gap must be observable");
        // A cursor taken after truncation works normally again.
        let fresh = ViolationFeed::delta_seq(&db);
        db.insert_by_name("R", &["b"], UpdateId(1));
        assert_eq!(db.dirty_relations(fresh, &[r]), Some(vec![r]));
        // A cursor from the future (e.g. a mismatched store) is a gap too.
        assert_eq!(db.dirty_relations(1_000, &[r]), None);
    }

    #[test]
    fn speculative_feed_covers_overlay_writes_and_pins_interest() {
        let (mut db, r, s) = fixture();
        db.insert_by_name("S", &["b"], UpdateId(1));
        let cursor = ViolationFeed::delta_seq(&db);

        let mut spec = SpeculativeDb::new(&db, UpdateId(5));
        spec.apply_all_owned(
            vec![Write::Insert { relation: r, values: vec![V::constant("x")] }],
            UpdateId(5),
        )
        .unwrap();
        // The overlay's own write is dirty and advances the overlay sequence.
        assert_eq!(ViolationFeed::delta_seq(&spec), cursor + 1);
        assert_eq!(spec.dirty_relations(cursor, &[r, s]), Some(vec![r]));

        // Asking pinned *both* interest relations as epoch reads: a commit
        // into either invalidates the speculation.
        let reads = spec.into_read_set();
        assert!(reads.still_valid(&db));
        assert_eq!(reads.relations_read(), 2);
        db.insert_by_name("S", &["c"], UpdateId(2));
        assert!(!reads.still_valid(&db), "interest relations are pinned");
    }

    #[test]
    fn backlog_cap_bounds_memory_and_surfaces_as_a_gap() {
        let (mut db, r, _) = fixture();
        // One more mutation than the cap: the very first delta is dropped.
        for _ in 0..(32 * 1024 + 1) {
            db.insert_by_name("R", &["v"], UpdateId(1));
        }
        assert_eq!(db.version_store().delta_backlog_len(), 32 * 1024);
        assert_eq!(db.dirty_relations(0, &[r]), None, "dropped window is a gap");
        assert_eq!(db.dirty_relations(1, &[r]), Some(vec![r]), "the retained window still answers");
    }

    #[test]
    fn backlog_cap_is_configurable_per_store() {
        let (mut db, r, _) = fixture();
        db.set_delta_backlog_cap(4);
        assert_eq!(db.version_store().delta_backlog_cap(), 4);
        for _ in 0..10 {
            db.insert_by_name("R", &["v"], UpdateId(1));
        }
        assert_eq!(db.version_store().delta_backlog_len(), 4);
        assert_eq!(db.dirty_relations(0, &[r]), None, "pre-cap window is a gap");
        assert_eq!(db.dirty_relations(6, &[r]), Some(vec![r]), "retained window answers");
        // The cap clamps to 1: a zero cap would make every window a gap forever.
        db.set_delta_backlog_cap(0);
        db.insert_by_name("R", &["w"], UpdateId(1));
        assert_eq!(db.version_store().delta_backlog_len(), 1);
    }
}
