//! Frontier tuples and frontier operations (Sections 2.2 and 2.3).
//!
//! When a chase cannot proceed deterministically it stops and produces a
//! *frontier request*:
//!
//! * the **forward** chase produces *positive frontier tuples* — generated RHS
//!   tuples that were not inserted because the relation already contains a
//!   tuple *more specific than* them — and asks the user to **expand** (insert
//!   anyway) or **unify** (identify the generated tuple with an existing one);
//! * the **backward** chase produces *negative frontier tuples* — the witness
//!   tuples of an RHS-violation, any of which may be deleted — and asks the
//!   user to pick the subset to delete.

use std::fmt;

use youtopia_mappings::{MappingId, Violation};
use youtopia_storage::{NullId, RelationId, TupleData, TupleId, UpdateId};

/// An opaque ticket identifying one outstanding frontier request in a
/// long-lived exchange service.
///
/// Tokens are minted when a blocked chase publishes its request and die when
/// the request is answered — or when the owning update aborts, in which case
/// the restarted chase publishes a *new* token for whatever frontier it
/// reaches next. Answering a dead token is therefore always detectable (the
/// service reports it as stale) rather than silently resuming the wrong
/// incarnation of an update.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrontierToken(pub u64);

impl fmt::Display for FrontierToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frontier#{}", self.0)
    }
}

/// One outstanding frontier request of a long-lived exchange service: the
/// token to answer it with, the update that is blocked on it, the request
/// itself (the provenance shown to the user), and its lifecycle state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingFrontier {
    /// Ticket to pass back when answering.
    pub token: FrontierToken,
    /// The blocked update.
    pub update: UpdateId,
    /// What the user is being asked.
    pub request: FrontierRequest,
    /// Engine action stamp at which the request was published.
    pub published_at: u64,
    /// Lifecycle sweeps this request has survived unanswered since it was
    /// published (or since its last escalation). The engine's sweeper
    /// escalates a request once its age reaches the policy's deadline.
    pub age: u64,
    /// How many times the request has been escalated (`ReAsk` re-publications
    /// or failed auto-resolutions). Re-asked requests are listed first by
    /// `pending_frontiers()` — the pull-based analogue of "higher priority".
    pub escalations: u32,
}

/// Who supplied a frontier decision.
///
/// Every answer applied by the engine — and every `Answer` record in the
/// write-ahead log — carries its origin, so reports can distinguish decisions
/// humans made from deadline auto-resolutions the system made on their behalf.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResolutionOrigin {
    /// A human (or an external resolver driving `answer`) decided.
    Human,
    /// The engine's lifecycle sweeper auto-resolved an expired frontier.
    System,
}

impl fmt::Display for ResolutionOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolutionOrigin::Human => write!(f, "human"),
            ResolutionOrigin::System => write!(f, "system"),
        }
    }
}

/// What an engine does with a frontier nobody answers.
///
/// Deadlines are measured in **lifecycle sweeps** (each `ExchangeEngine::sweep`
/// call ages every pending request by one tick), not wall clock: the sweep
/// schedule is owned by the caller, and every escalation *outcome* that
/// changes state is logged to the WAL with its action stamp — so recovery
/// replays escalations from the log instead of re-deciding them, and
/// escalation is never a new nondeterminism source.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EscalationPolicy {
    /// Wait indefinitely for a human answer (the pre-lifecycle behavior).
    #[default]
    Wait,
    /// After `after` sweeps, re-publish the token at higher priority: its
    /// escalation count rises (re-asked requests list first in
    /// `pending_frontiers()`), its age resets, and waiters are re-notified.
    ReAsk {
        /// Sweeps a request may stay unanswered before each re-ask.
        after: u64,
    },
    /// After `after` sweeps, the system answers with `decision`, stamped
    /// `ResolutionOrigin::System` and WAL-logged like a human answer.
    AutoResolve {
        /// Sweeps a request may stay unanswered before the system answers.
        after: u64,
        /// The default-decision strategy applied to the expired request.
        decision: AutoDecision,
    },
}

/// The default-decision strategy an [`EscalationPolicy::AutoResolve`]
/// escalation applies to an expired request. A strategy (rather than a stored
/// [`FrontierDecision`]) because the concrete decision depends on the request:
/// one engine-wide literal cannot be valid for every frontier it may expire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AutoDecision {
    /// Positive frontier: expand every generated tuple ("these are new
    /// facts"). Negative frontier: delete the first deletion candidate. The
    /// conservative strategy — it always makes progress and never unifies.
    ExpandOrDeleteFirst,
    /// Positive frontier: unify each tuple with its first candidate when one
    /// exists, expand otherwise. Negative frontier: delete the first
    /// candidate. The dedupe-leaning strategy.
    UnifyOrDeleteFirst,
}

impl AutoDecision {
    /// Materializes the concrete [`FrontierDecision`] for `request`.
    pub fn decide(&self, request: &FrontierRequest) -> FrontierDecision {
        match (self, request) {
            (AutoDecision::ExpandOrDeleteFirst, FrontierRequest::Positive(p)) => {
                FrontierDecision::expand_all(p)
            }
            (AutoDecision::UnifyOrDeleteFirst, FrontierRequest::Positive(p)) => {
                FrontierDecision::Positive(
                    p.tuples
                        .iter()
                        .map(|t| match t.candidates.first() {
                            Some((id, _)) => PositiveAction::Unify { with: *id },
                            None => PositiveAction::Expand,
                        })
                        .collect(),
                )
            }
            (_, FrontierRequest::Negative(n)) => FrontierDecision::delete_first(n),
        }
    }
}

/// A positive frontier tuple: an RHS tuple generated by the forward chase but
/// held back because a more specific tuple already exists (Definition 2.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontierTuple {
    /// Relation the tuple would be inserted into.
    pub relation: RelationId,
    /// The generated values (frontier variables bound from the witness,
    /// existential variables as fresh labeled nulls).
    pub values: TupleData,
    /// Labeled nulls freshly generated for this violation (existential
    /// variables). Unifying these never requires a database write.
    pub fresh_nulls: Vec<NullId>,
    /// Existing tuples in the same relation that are more specific than the
    /// generated tuple — the unification candidates offered to the user.
    pub candidates: Vec<(TupleId, TupleData)>,
}

impl FrontierTuple {
    /// Labeled nulls of the generated tuple that were **not** freshly
    /// generated (they came from the witness). Unifying these requires
    /// correction queries and global null-replacement writes (Section 4.2).
    pub fn inherited_nulls(&self) -> Vec<NullId> {
        youtopia_storage::nulls_of(&self.values)
            .into_iter()
            .filter(|n| !self.fresh_nulls.contains(n))
            .collect()
    }
}

/// A positive frontier request: all RHS tuples generated for one violation of
/// one mapping. Tuples may share freshly generated nulls; frontier operations
/// must treat the shared nulls consistently (Section 2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PositiveFrontier {
    /// The mapping whose violation is being repaired.
    pub mapping: MappingId,
    /// The violation (with its witness) — the provenance shown to the user.
    pub violation: Violation,
    /// The generated tuples, one per RHS atom that still needs repair.
    pub tuples: Vec<FrontierTuple>,
}

/// A negative frontier request: the witness tuples of an RHS-violation, any
/// non-empty subset of which may be deleted to repair it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NegativeFrontier {
    /// The mapping whose violation is being repaired.
    pub mapping: MappingId,
    /// The violation (with its witness).
    pub violation: Violation,
    /// Deletion candidates: `(LHS atom index, tuple id, tuple data)`.
    pub candidates: Vec<(usize, TupleId, TupleData)>,
}

/// A request for human assistance, produced when a chase stops.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrontierRequest {
    /// Forward chase: positive frontier tuples.
    Positive(PositiveFrontier),
    /// Backward chase: negative frontier tuples.
    Negative(NegativeFrontier),
}

impl FrontierRequest {
    /// The mapping being repaired.
    pub fn mapping(&self) -> MappingId {
        match self {
            FrontierRequest::Positive(p) => p.mapping,
            FrontierRequest::Negative(n) => n.mapping,
        }
    }

    /// The violation being repaired.
    pub fn violation(&self) -> &Violation {
        match self {
            FrontierRequest::Positive(p) => &p.violation,
            FrontierRequest::Negative(n) => &n.violation,
        }
    }
}

impl fmt::Display for FrontierRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontierRequest::Positive(p) => {
                write!(f, "positive frontier of {} with {} tuple(s)", p.mapping, p.tuples.len())
            }
            FrontierRequest::Negative(n) => {
                write!(
                    f,
                    "negative frontier of {} with {} candidate(s)",
                    n.mapping,
                    n.candidates.len()
                )
            }
        }
    }
}

/// The user's choice for one positive frontier tuple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PositiveAction {
    /// Insert the generated tuple into the database ("this is a new fact").
    Expand,
    /// Identify the generated tuple with an existing, more specific tuple:
    /// unify its labeled nulls with that tuple's values. The generated tuple
    /// then disappears.
    Unify {
        /// The existing tuple chosen by the user (must be one of the
        /// [`FrontierTuple::candidates`]).
        with: TupleId,
    },
}

/// The user's decision for an entire frontier request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrontierDecision {
    /// One action per positive frontier tuple (same order as
    /// [`PositiveFrontier::tuples`]).
    Positive(Vec<PositiveAction>),
    /// The subset of negative frontier tuples to delete (must be non-empty).
    Negative(Vec<TupleId>),
}

impl FrontierDecision {
    /// Convenience constructor: expand every positive frontier tuple.
    pub fn expand_all(request: &PositiveFrontier) -> FrontierDecision {
        FrontierDecision::Positive(vec![PositiveAction::Expand; request.tuples.len()])
    }

    /// Convenience constructor: delete the first deletion candidate.
    pub fn delete_first(request: &NegativeFrontier) -> FrontierDecision {
        FrontierDecision::Negative(
            request.candidates.first().map(|(_, id, _)| vec![*id]).unwrap_or_default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_mappings::ViolationKind;
    use youtopia_storage::{Bindings, Value};

    fn dummy_violation() -> Violation {
        Violation {
            mapping: MappingId(0),
            kind: ViolationKind::Lhs,
            lhs_bindings: Bindings::new(),
            witness: vec![TupleId(1)],
        }
    }

    #[test]
    fn inherited_nulls_exclude_fresh_ones() {
        let t = FrontierTuple {
            relation: RelationId(0),
            values: vec![Value::Null(NullId(1)), Value::Null(NullId(2)), Value::constant("a")]
                .into(),
            fresh_nulls: vec![NullId(2)],
            candidates: vec![],
        };
        assert_eq!(t.inherited_nulls(), vec![NullId(1)]);
    }

    #[test]
    fn request_accessors_and_display() {
        let pos = FrontierRequest::Positive(PositiveFrontier {
            mapping: MappingId(3),
            violation: dummy_violation(),
            tuples: vec![],
        });
        assert_eq!(pos.mapping(), MappingId(3));
        assert_eq!(pos.violation().witness, vec![TupleId(1)]);
        assert!(pos.to_string().contains("positive"));

        let neg = FrontierRequest::Negative(NegativeFrontier {
            mapping: MappingId(4),
            violation: dummy_violation(),
            candidates: vec![(0, TupleId(7), vec![Value::constant("x")].into())],
        });
        assert_eq!(neg.mapping(), MappingId(4));
        assert!(neg.to_string().contains("negative"));
    }

    #[test]
    fn decision_helpers() {
        let pf = PositiveFrontier {
            mapping: MappingId(0),
            violation: dummy_violation(),
            tuples: vec![
                FrontierTuple {
                    relation: RelationId(0),
                    values: vec![Value::constant("a")].into(),
                    fresh_nulls: vec![],
                    candidates: vec![],
                },
                FrontierTuple {
                    relation: RelationId(1),
                    values: vec![Value::constant("b")].into(),
                    fresh_nulls: vec![],
                    candidates: vec![],
                },
            ],
        };
        match FrontierDecision::expand_all(&pf) {
            FrontierDecision::Positive(actions) => assert_eq!(actions.len(), 2),
            _ => panic!("expected positive decision"),
        }
        let nf = NegativeFrontier {
            mapping: MappingId(0),
            violation: dummy_violation(),
            candidates: vec![
                (0, TupleId(5), vec![Value::constant("a")].into()),
                (1, TupleId(6), vec![Value::constant("b")].into()),
            ],
        };
        match FrontierDecision::delete_first(&nf) {
            FrontierDecision::Negative(ids) => assert_eq!(ids, vec![TupleId(5)]),
            _ => panic!("expected negative decision"),
        }
    }

    #[test]
    fn auto_decision_strategies() {
        let pf = FrontierRequest::Positive(PositiveFrontier {
            mapping: MappingId(0),
            violation: dummy_violation(),
            tuples: vec![
                FrontierTuple {
                    relation: RelationId(0),
                    values: vec![Value::constant("a")].into(),
                    fresh_nulls: vec![],
                    candidates: vec![(TupleId(9), vec![Value::constant("a")].into())],
                },
                FrontierTuple {
                    relation: RelationId(1),
                    values: vec![Value::constant("b")].into(),
                    fresh_nulls: vec![],
                    candidates: vec![],
                },
            ],
        });
        assert_eq!(
            AutoDecision::ExpandOrDeleteFirst.decide(&pf),
            FrontierDecision::Positive(vec![PositiveAction::Expand, PositiveAction::Expand])
        );
        assert_eq!(
            AutoDecision::UnifyOrDeleteFirst.decide(&pf),
            FrontierDecision::Positive(vec![
                PositiveAction::Unify { with: TupleId(9) },
                PositiveAction::Expand,
            ])
        );
        let nf = FrontierRequest::Negative(NegativeFrontier {
            mapping: MappingId(0),
            violation: dummy_violation(),
            candidates: vec![(0, TupleId(5), vec![Value::constant("a")].into())],
        });
        assert_eq!(
            AutoDecision::ExpandOrDeleteFirst.decide(&nf),
            FrontierDecision::Negative(vec![TupleId(5)])
        );
        assert_eq!(
            AutoDecision::UnifyOrDeleteFirst.decide(&nf),
            FrontierDecision::Negative(vec![TupleId(5)])
        );
    }

    #[test]
    fn escalation_policy_defaults_to_wait() {
        assert_eq!(EscalationPolicy::default(), EscalationPolicy::Wait);
        assert_eq!(ResolutionOrigin::Human.to_string(), "human");
        assert_eq!(ResolutionOrigin::System.to_string(), "system");
    }
}
