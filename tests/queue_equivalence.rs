//! Differential tests for delta-driven violation-queue maintenance: the
//! incremental queue (relation-indexed, epoch-validated, memoised repair
//! plans) must behave exactly like the old full `still_violated` retain,
//! which is kept as `UpdateExecution::recheck_all_violations` /
//! `ChaseMode::FullRecheck` — mirroring how PR 2 keeps
//! `replan_violation_queries_for_change` as the compiled-plan reference.
//!
//! Two layers:
//! * after every chase step of an incremental execution, the queue must equal
//!   what a full recheck of the whole queue retains (no stale violation
//!   lingers, no live one is dropped);
//! * whole concurrent runs under `Incremental` and `FullRecheck` must agree
//!   on every conflict-semantics observable — PRECISE/COARSE abort counts,
//!   direct-conflict and cascading-abort requests, steps — and leave
//!   consistent databases.

use proptest::prelude::*;
use youtopia::chase::{ChaseMode, FrontierResolver, UpdateExecution, UpdateState};
use youtopia::concurrency::{ConcurrentRun, RunMetrics, SchedulerConfig};
use youtopia::mappings::satisfies_all;
use youtopia::workload::{build_fixture, generate_workload, ExperimentConfig, WorkloadKind};
use youtopia::{InitialOp, RandomResolver, TrackerKind, UpdateId};

/// Plays a generated workload through manual chase executions and pins the
/// per-step queue invariant: the incremental queue always equals the
/// reference full recheck.
fn incremental_queue_matches_full_recheck(seed: u64, kind: WorkloadKind) {
    let mut config = ExperimentConfig::tiny();
    config.seed = seed;
    let fixture = build_fixture(&config).expect("fixture builds");
    let mappings = fixture.mappings;
    let mut db = fixture.initial_db;
    let ops = generate_workload(&config, &fixture.schema, &db, &mappings, kind, seed);

    let mut resolver = RandomResolver::seeded(seed ^ 0xDE1A);
    let mut steps_checked = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let id = UpdateId(10_000 + i as u64);
        let mut exec = UpdateExecution::new(id, op.clone());
        assert_eq!(exec.mode(), ChaseMode::Incremental);
        while !exec.is_terminated() {
            assert!(steps_checked < 200_000, "seed {seed}: runaway chase");
            match exec.state() {
                UpdateState::Ready => {
                    exec.step(&mut db, &mappings).expect("chase step");
                    steps_checked += 1;
                    let queued = exec.queued_violation_list();
                    let rechecked = exec.recheck_all_violations(&db, &mappings);
                    assert_eq!(
                        queued, rechecked,
                        "seed {seed}, op {i}: after a step the incremental queue must \
                         retain exactly what a full still_violated recheck retains"
                    );
                }
                UpdateState::AwaitingFrontier => {
                    let request = exec.pending_frontier().expect("awaiting frontier").clone();
                    let decision = {
                        let snap = db.snapshot(id);
                        resolver.resolve(&snap, &request)
                    };
                    exec.resolve_frontier(&mappings, decision).expect("frontier decision");
                }
                UpdateState::Terminated => unreachable!(),
            }
        }
    }
    assert!(steps_checked > 0, "seed {seed}: the workload must take at least one step");
}

/// Strips the wall-clock field so metrics compare byte-exactly.
fn scrub(mut m: RunMetrics) -> RunMetrics {
    m.wall_time = std::time::Duration::ZERO;
    m
}

/// Runs one generated workload concurrently under both chase modes and one
/// tracker; every conflict-semantics observable must be identical.
fn concurrent_modes_agree(seed: u64, tracker: TrackerKind, kind: WorkloadKind) {
    let mut config = ExperimentConfig::tiny();
    config.seed = seed;
    let fixture = build_fixture(&config).expect("fixture builds");
    let ops: Vec<InitialOp> = generate_workload(
        &config,
        &fixture.schema,
        &fixture.initial_db,
        &fixture.mappings,
        kind,
        seed,
    )
    .into_iter()
    .take(16)
    .collect();
    let first_number = config.initial_tuples as u64 + 1_000;

    let run_with = |chase_mode: ChaseMode| {
        let scheduler = SchedulerConfig::with_tracker(tracker)
            .with_frontier_delay_rounds(3)
            .with_chase_mode(chase_mode);
        let mut run = ConcurrentRun::new(
            fixture.initial_db.clone(),
            fixture.mappings.clone(),
            ops.clone(),
            first_number,
            scheduler,
        );
        let mut resolver = RandomResolver::seeded(seed ^ 0xC0FFEE);
        let metrics = run.run(&mut resolver).expect("run terminates");
        let (db, mappings, _) = run.into_parts();
        assert!(
            satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), &mappings),
            "seed {seed} ({tracker}, {chase_mode:?}): final database must satisfy all mappings"
        );
        scrub(metrics)
    };

    let incremental = run_with(ChaseMode::Incremental);
    let full = run_with(ChaseMode::FullRecheck);
    assert_eq!(
        incremental, full,
        "seed {seed} ({tracker}): incremental queue maintenance must not change \
         aborts, conflict requests, cascades, steps or frontier counts"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Mixed workloads exercise LHS- and RHS-violations (inserts, deletes,
    /// forward and backward repairs) over random schemas and mapping sets.
    #[test]
    fn mixed_workload_queues_agree(seed in 0u64..10_000) {
        incremental_queue_matches_full_recheck(seed, WorkloadKind::Mixed);
    }

    /// Deep-cascade workloads chain mappings so the queues actually grow —
    /// the case the delta-driven maintenance optimises.
    #[test]
    fn deep_cascade_queues_agree(seed in 0u64..10_000) {
        incremental_queue_matches_full_recheck(seed, WorkloadKind::DeepCascade);
    }

    /// PRECISE abort sets are unchanged by incremental maintenance.
    #[test]
    fn precise_conflict_semantics_unchanged(seed in 0u64..10_000) {
        concurrent_modes_agree(seed, TrackerKind::Precise, WorkloadKind::Mixed);
    }

    /// COARSE abort sets are unchanged by incremental maintenance.
    #[test]
    fn coarse_conflict_semantics_unchanged(seed in 0u64..10_000) {
        concurrent_modes_agree(seed, TrackerKind::Coarse, WorkloadKind::DeepCascade);
    }
}
