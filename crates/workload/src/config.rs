//! Experiment configuration (the parameters of Section 6).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which workload to generate. The first two are the Section 6 workloads of
/// the paper; the last two go beyond the paper's figures to stress the
/// trackers in ways the uniform workloads cannot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// The all-insert workload of Figure 3.
    AllInserts,
    /// The mixed workload of Figure 4: eighty percent inserts, twenty percent
    /// deletes, in randomised order.
    Mixed,
    /// Null-replacement-heavy: half the updates replace labeled nulls of the
    /// initial database with pool constants, the rest are inserts, in
    /// randomised order. Null-replacements touch every relation the null
    /// occurs in and pose the wildcard correction queries, which is the worst
    /// case for relation-granular dependency tracking.
    NullReplacementHeavy,
    /// Skewed (hot-relation): the usual 80/20 insert/delete mix, but eighty
    /// percent of the operations target the single largest relation of the
    /// initial database. Contention concentrates on one relation's mappings,
    /// separating the trackers far more sharply than the uniform choice.
    Skewed,
    /// Deep-cascade: all inserts, with fresh values, and eighty percent of
    /// them aimed at the relations from which the longest mapping chains
    /// start (computed over the mapping graph). Every such insert violates a
    /// mapping whose repair violates the next one, so chases run long and the
    /// violation queues actually grow — the stress case for delta-driven
    /// queue maintenance, where per-step cost must track the *touched*
    /// violations rather than the queue length.
    DeepCascade,
}

impl WorkloadKind {
    /// Fraction of deletes in the workload.
    pub fn delete_fraction(&self) -> f64 {
        match self {
            WorkloadKind::AllInserts
            | WorkloadKind::NullReplacementHeavy
            | WorkloadKind::DeepCascade => 0.0,
            WorkloadKind::Mixed | WorkloadKind::Skewed => 0.2,
        }
    }

    /// Fraction of null-replacement operations in the workload (best effort:
    /// shrinks when the initial database has fewer distinct nulls).
    pub fn null_replace_fraction(&self) -> f64 {
        match self {
            WorkloadKind::NullReplacementHeavy => 0.5,
            _ => 0.0,
        }
    }

    /// Probability that an operation targets the hot relation instead of a
    /// uniformly random one.
    pub fn hot_relation_probability(&self) -> f64 {
        match self {
            WorkloadKind::Skewed => 0.8,
            _ => 0.0,
        }
    }

    /// Probability that an insert targets a relation from which one of the
    /// longest mapping-graph cascades starts.
    pub fn cascade_probability(&self) -> f64 {
        match self {
            WorkloadKind::DeepCascade => 0.8,
            _ => 0.0,
        }
    }

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::AllInserts => "all-insert",
            WorkloadKind::Mixed => "mixed (80% insert / 20% delete)",
            WorkloadKind::NullReplacementHeavy => "null-replacement-heavy (50% replace)",
            WorkloadKind::Skewed => "skewed (80% of ops on the hot relation)",
            WorkloadKind::DeepCascade => "deep-cascade (80% of inserts start long chains)",
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a run's workload updates arrive at the scheduler.
///
/// The paper's experiments hand the scheduler the whole workload up front
/// ([`ArrivalProcess::Batch`]); a live deployment receives updates over time.
/// [`ArrivalProcess::Staggered`] models that with deterministic closed-loop
/// waves: the next wave is admitted once the previous one has fully
/// terminated, so results stay byte-identical at any chase-worker count
/// (pinned by `tests/engine_equivalence.rs`). [`ArrivalProcess::Poisson`]
/// replaces the fixed wave size with an open-loop arrival process: arrival
/// ticks are sampled once, up front, from the seeded generator
/// ([`poisson_arrival_ticks`]), and the updates sharing a tick form one wave
/// — so wave sizes follow the Poisson distribution while the run itself
/// stays deterministic under a fixed seed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ArrivalProcess {
    /// All updates are submitted before the first chase step (the paper's
    /// setting, and the default).
    #[default]
    Batch,
    /// Updates arrive in waves of `wave` through the live engine; each wave
    /// is chased to quiescence before the next is admitted.
    Staggered {
        /// Updates per wave (at least 1).
        wave: usize,
    },
    /// Updates arrive over virtual time with exponential inter-arrival gaps
    /// at `rate` expected arrivals per tick; each tick's arrivals are one
    /// wave. Seeded and deterministic, like everything else in a run.
    Poisson {
        /// Expected arrivals per virtual tick (finite, `> 0`).
        rate: f64,
    },
}

/// The arrival tick of each of `n` updates under a Poisson process with
/// `rate` expected arrivals per tick: cumulative exponential inter-arrival
/// gaps (`-ln(1 - u) / rate`, inverse-transform sampling) floored to integer
/// ticks. Non-decreasing, deterministic under a fixed seed, and sampled from
/// the same vendored generator as the rest of the workload machinery.
pub fn poisson_arrival_ticks(n: usize, rate: f64, seed: u64) -> Vec<u64> {
    assert!(rate.is_finite() && rate > 0.0, "Poisson rate must be finite and positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = 0.0f64;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            // `1 - u` is in (0, 1], so the log is finite and non-positive.
            now += -(1.0 - u).ln() / rate;
            now as u64
        })
        .collect()
}

/// All parameters of a Section 6 experiment.
///
/// [`ExperimentConfig::paper`] reproduces the paper's settings exactly;
/// [`ExperimentConfig::quick`] is a proportionally scaled-down preset used by
/// the test suite and the default benchmark harness so that a full sweep
/// finishes in seconds rather than hours.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentConfig {
    /// Number of relations in the synthetic schema (paper: 100).
    pub relations: usize,
    /// Minimum number of attributes per relation (paper: 1).
    pub min_attributes: usize,
    /// Maximum number of attributes per relation (paper: 6).
    pub max_attributes: usize,
    /// Size of the fixed constant pool (paper: 50 random strings).
    pub constant_pool: usize,
    /// Total number of mappings generated; experiments use monotonically
    /// increasing prefixes of this set (paper: 100).
    pub total_mappings: usize,
    /// Maximum number of atoms on each side of a mapping (paper: 3, with
    /// smaller sizes more probable).
    pub max_atoms_per_side: usize,
    /// The mapping-count sweep — the x axis of Figures 3 and 4
    /// (paper: 20, 40, 60, 80, 100).
    pub mapping_counts: Vec<usize>,
    /// Number of initial tuples inserted through update exchange to build the
    /// initial database (paper: 10 000).
    pub initial_tuples: usize,
    /// Number of updates per workload (paper: 500).
    pub workload_updates: usize,
    /// Probability that an inserted attribute value is fresh rather than drawn
    /// from the constant pool (paper: one half).
    pub fresh_value_probability: f64,
    /// Number of repeated runs per data point (paper: 100).
    pub runs: usize,
    /// Base random seed; every derived generator seeds deterministically from
    /// it.
    pub seed: u64,
    /// Scheduler rounds a frontier request stays unanswered (simulated user
    /// latency). The paper does not model latency explicitly; a small delay
    /// recreates the interference window of Example 3.1.
    pub frontier_delay_rounds: usize,
    /// Worker threads for the experiment sweep: the (density, tracker, run)
    /// grid cells are embarrassingly parallel and every cell derives its own
    /// seed, so the results are identical at any thread count. `0` means "one
    /// per available core".
    pub worker_threads: usize,
    /// Worker threads for the chase scheduler *inside* each run: `0` uses the
    /// single-threaded `ConcurrentRun` reference; `N ≥ 1` uses the
    /// deterministic `ParallelRun` with `N` workers, which commits steps in
    /// the reference serialisation order — results are byte-identical either
    /// way (pinned by `tests/determinism.rs`).
    pub chase_workers: usize,
    /// How workload updates arrive at the scheduler: the paper's up-front
    /// batch, or staggered waves through the live `ExchangeEngine` (staggered
    /// runs always go through the engine, with `chase_workers.max(1)`
    /// workers).
    pub arrival: ArrivalProcess,
}

impl ExperimentConfig {
    /// The paper's exact parameters (Section 6). A full sweep at this scale
    /// takes a long time on a laptop; prefer [`ExperimentConfig::quick`] for
    /// day-to-day use and CI.
    pub fn paper() -> ExperimentConfig {
        ExperimentConfig {
            relations: 100,
            min_attributes: 1,
            max_attributes: 6,
            constant_pool: 50,
            total_mappings: 100,
            max_atoms_per_side: 3,
            mapping_counts: vec![20, 40, 60, 80, 100],
            initial_tuples: 10_000,
            workload_updates: 500,
            fresh_value_probability: 0.5,
            runs: 100,
            seed: 2009,
            frontier_delay_rounds: 2,
            worker_threads: 0,
            chase_workers: 0,
            arrival: ArrivalProcess::Batch,
        }
    }

    /// A proportionally scaled-down configuration that preserves the shape of
    /// the experiment (same relative mapping densities, same workload mix)
    /// while finishing quickly.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            relations: 25,
            min_attributes: 1,
            max_attributes: 5,
            constant_pool: 25,
            total_mappings: 40,
            max_atoms_per_side: 3,
            mapping_counts: vec![8, 16, 24, 32, 40],
            initial_tuples: 400,
            workload_updates: 80,
            fresh_value_probability: 0.5,
            runs: 10,
            seed: 7,
            frontier_delay_rounds: 2,
            worker_threads: 0,
            chase_workers: 0,
            arrival: ArrivalProcess::Batch,
        }
    }

    /// An even smaller configuration for unit tests.
    pub fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            relations: 8,
            min_attributes: 1,
            max_attributes: 3,
            constant_pool: 10,
            total_mappings: 8,
            max_atoms_per_side: 2,
            mapping_counts: vec![4, 8],
            initial_tuples: 40,
            workload_updates: 10,
            fresh_value_probability: 0.5,
            runs: 2,
            seed: 13,
            frontier_delay_rounds: 1,
            worker_threads: 0,
            chase_workers: 0,
            arrival: ArrivalProcess::Batch,
        }
    }

    /// Returns a copy with a different seed (used to average over runs).
    pub fn with_seed(&self, seed: u64) -> ExperimentConfig {
        ExperimentConfig { seed, ..self.clone() }
    }

    /// Basic sanity checks on the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.relations == 0 {
            return Err("at least one relation is required".into());
        }
        if self.min_attributes == 0 || self.min_attributes > self.max_attributes {
            return Err("attribute bounds must satisfy 1 <= min <= max".into());
        }
        if self.constant_pool == 0 {
            return Err("the constant pool must not be empty".into());
        }
        if self.max_atoms_per_side == 0 {
            return Err("mappings need at least one atom per side".into());
        }
        if self.mapping_counts.iter().any(|&m| m > self.total_mappings || m == 0) {
            return Err("every mapping count must be between 1 and total_mappings".into());
        }
        if !(0.0..=1.0).contains(&self.fresh_value_probability) {
            return Err("fresh_value_probability must be a probability".into());
        }
        if self.runs == 0 {
            return Err("at least one run per data point is required".into());
        }
        match self.arrival {
            ArrivalProcess::Batch => {}
            ArrivalProcess::Staggered { wave } => {
                if wave == 0 {
                    return Err("staggered arrival waves must admit at least one update".into());
                }
            }
            ArrivalProcess::Poisson { rate } => {
                if !rate.is_finite() || rate <= 0.0 {
                    return Err("Poisson arrival rate must be finite and positive".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(ExperimentConfig::paper().validate().is_ok());
        assert!(ExperimentConfig::quick().validate().is_ok());
        assert!(ExperimentConfig::tiny().validate().is_ok());
    }

    #[test]
    fn paper_preset_matches_section_6() {
        let p = ExperimentConfig::paper();
        assert_eq!(p.relations, 100);
        assert_eq!(p.constant_pool, 50);
        assert_eq!(p.initial_tuples, 10_000);
        assert_eq!(p.workload_updates, 500);
        assert_eq!(p.mapping_counts, vec![20, 40, 60, 80, 100]);
        assert_eq!(p.runs, 100);
        assert_eq!(p.max_attributes, 6);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let mut c = ExperimentConfig::tiny();
        c.relations = 0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::tiny();
        c.min_attributes = 5;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::tiny();
        c.mapping_counts = vec![999];
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::tiny();
        c.fresh_value_probability = 2.0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::tiny();
        c.runs = 0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::tiny();
        c.constant_pool = 0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::tiny();
        c.max_atoms_per_side = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn workload_kinds() {
        assert_eq!(WorkloadKind::AllInserts.delete_fraction(), 0.0);
        assert!((WorkloadKind::Mixed.delete_fraction() - 0.2).abs() < 1e-9);
        assert!(WorkloadKind::Mixed.to_string().contains("80%"));
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let base = ExperimentConfig::tiny();
        let other = base.with_seed(999);
        assert_eq!(other.seed, 999);
        assert_eq!(other.relations, base.relations);
    }

    #[test]
    fn poisson_rate_is_validated() {
        let mut c = ExperimentConfig::tiny();
        c.arrival = ArrivalProcess::Poisson { rate: 2.0 };
        assert!(c.validate().is_ok());
        c.arrival = ArrivalProcess::Poisson { rate: 0.0 };
        assert!(c.validate().is_err());
        c.arrival = ArrivalProcess::Poisson { rate: f64::INFINITY };
        assert!(c.validate().is_err());
        c.arrival = ArrivalProcess::Staggered { wave: 0 };
        assert!(c.validate().is_err());
    }

    #[test]
    fn poisson_arrivals_are_deterministic_and_plausible() {
        let a = poisson_arrival_ticks(500, 2.0, 42);
        let b = poisson_arrival_ticks(500, 2.0, 42);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "ticks are non-decreasing");
        // 500 arrivals at 2 per tick should take roughly 250 ticks; accept a
        // generous band — this pins the rate parameterisation, not the tail.
        let span = *a.last().unwrap();
        assert!((150..=400).contains(&span), "span = {span}");
        let c = poisson_arrival_ticks(500, 2.0, 43);
        assert_ne!(a, c, "different seeds give different schedules");
        // Higher rate compresses the same count into fewer ticks.
        let fast = poisson_arrival_ticks(500, 20.0, 42);
        assert!(*fast.last().unwrap() < span);
    }
}
