//! The read queries a chase step performs (Section 4.2).
//!
//! A chase step reads the database for two reasons: to discover the new
//! violations its writes caused (*violation queries*) and to gather the
//! information needed to correct a violation (*correction queries*). The
//! concurrency layer logs these queries and later checks whether a write by a
//! lower-numbered update retroactively changes their answers (Algorithm 4).

use youtopia_mappings::{change_affects_query, MappingSet, ViolationQuery};
use youtopia_storage::{
    is_more_specific, DataView, NullId, RelationId, TupleChange, TupleData, TupleId,
};

/// A read query performed by a chase step.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ReadQuery {
    /// A violation query (Section 4.2, Example 4.1): which violations of a
    /// mapping are consistent with a written tuple?
    Violation(ViolationQuery),
    /// Correction query: find the tuples of `relation` that are more specific
    /// than the generated frontier tuple `pattern`.
    MoreSpecific {
        /// Relation of the generated tuple.
        relation: RelationId,
        /// The generated tuple's values.
        pattern: TupleData,
    },
    /// Correction query: find every tuple containing the labeled null `null`
    /// (posed before a unification so all occurrences can be rewritten).
    NullOccurrences {
        /// The null being unified away.
        null: NullId,
    },
}

impl ReadQuery {
    /// The relations this query reads. For violation queries this is every
    /// relation of the mapping (the `COARSE` tracker's granularity); the two
    /// correction-query forms are checked exactly against writes, so the
    /// relation set is only used as a pre-filter.
    pub fn relations_read(&self, mappings: &MappingSet) -> Vec<RelationId> {
        match self {
            ReadQuery::Violation(q) => q.relations_read(mappings),
            ReadQuery::MoreSpecific { relation, .. } => vec![*relation],
            // A null may occur anywhere; callers treat this as "all relations".
            ReadQuery::NullOccurrences { .. } => Vec::new(),
        }
    }

    /// Whether this is a violation query (relation-granular for `COARSE`) or a
    /// correction query (always checked exactly).
    pub fn is_violation_query(&self) -> bool {
        matches!(self, ReadQuery::Violation(_))
    }

    /// Evaluates the query's answer cardinality on a view (used by tests and
    /// diagnostics; the chase itself evaluates the queries inline).
    pub fn answer_size(&self, view: &dyn DataView, mappings: &MappingSet) -> usize {
        match self {
            ReadQuery::Violation(q) => q.evaluate(view, mappings).len(),
            ReadQuery::MoreSpecific { relation, pattern } => view
                .scan(*relation)
                .into_iter()
                .filter(|(_, data)| is_more_specific(data, pattern))
                .count(),
            ReadQuery::NullOccurrences { null } => view.null_occurrences(*null).len(),
        }
    }

    /// Does `change` retroactively change the answer to this query
    /// (Algorithm 4)? Correction queries are checked without touching the
    /// database: "a given tuple write changes the answer to a correction query
    /// either on all databases, or on none" (Section 5). Violation queries are
    /// checked by delta evaluation against the view.
    pub fn affected_by(
        &self,
        view: &dyn DataView,
        mappings: &MappingSet,
        change: &TupleChange,
    ) -> bool {
        match self {
            ReadQuery::Violation(q) => change_affects_query(view, mappings, q, change),
            ReadQuery::MoreSpecific { relation, pattern } => {
                if change.relation() != *relation {
                    return false;
                }
                match change {
                    TupleChange::Inserted { values, .. } => is_more_specific(values, pattern),
                    TupleChange::Deleted { old, .. } => is_more_specific(old, pattern),
                    TupleChange::Modified { old, new, .. } => {
                        is_more_specific(old, pattern) != is_more_specific(new, pattern)
                            || is_more_specific(new, pattern)
                    }
                }
            }
            ReadQuery::NullOccurrences { null } => match change {
                TupleChange::Inserted { values, .. } => {
                    youtopia_storage::contains_null(values, *null)
                }
                TupleChange::Deleted { old, .. } => youtopia_storage::contains_null(old, *null),
                TupleChange::Modified { old, new, .. } => {
                    youtopia_storage::contains_null(old, *null)
                        || youtopia_storage::contains_null(new, *null)
                }
            },
        }
    }
}

/// The answer to the "find more specific tuples" correction query.
pub fn more_specific_tuples(
    view: &dyn DataView,
    relation: RelationId,
    pattern: &TupleData,
) -> Vec<(TupleId, TupleData)> {
    view.scan(relation).into_iter().filter(|(_, data)| is_more_specific(data, pattern)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_mappings::ViolationSeed;
    use youtopia_storage::{Database, UpdateId, Value, Write};

    fn setup() -> (Database, MappingSet) {
        let mut db = Database::new();
        db.add_relation("C", ["city"]).unwrap();
        db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        let mut set = MappingSet::new();
        set.add_parsed(db.catalog(), "sigma1: C(c) -> exists a, l. S(a, l, c)").unwrap();
        (db, set)
    }

    #[test]
    fn more_specific_query_and_affectedness() {
        let (mut db, set) = setup();
        let c = db.relation_id("C").unwrap();
        let x = db.fresh_null();
        let pattern: TupleData = vec![Value::Null(x)].into();
        let q = ReadQuery::MoreSpecific { relation: c, pattern: pattern.clone() };

        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert_eq!(q.answer_size(&snap, &set), 0);
        assert!(!q.is_violation_query());
        assert_eq!(q.relations_read(&set), vec![c]);

        // Inserting any C tuple changes the answer (it is more specific than x).
        let changes = db
            .apply(
                &Write::Insert { relation: c, values: vec![Value::constant("NYC")] },
                UpdateId(1),
            )
            .unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert!(q.affected_by(&snap, &set, &changes[0]));
        assert_eq!(q.answer_size(&snap, &set), 1);
        assert_eq!(more_specific_tuples(&snap, c, &pattern).len(), 1);

        // An insert into an unrelated relation does not affect it.
        let s = db.relation_id("S").unwrap();
        let changes = db
            .apply(
                &Write::Insert {
                    relation: s,
                    values: vec![Value::constant("a"), Value::constant("b"), Value::constant("c")],
                },
                UpdateId(1),
            )
            .unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert!(!q.affected_by(&snap, &set, &changes[0]));
    }

    #[test]
    fn null_occurrence_query_affectedness() {
        let (mut db, _set) = setup();
        let c = db.relation_id("C").unwrap();
        let x = db.fresh_null();
        let q = ReadQuery::NullOccurrences { null: x };
        assert!(q.relations_read(&MappingSet::new()).is_empty());

        let with_null = db
            .apply(&Write::Insert { relation: c, values: vec![Value::Null(x)] }, UpdateId(1))
            .unwrap();
        let without_null = db
            .apply(&Write::Insert { relation: c, values: vec![Value::constant("k")] }, UpdateId(1))
            .unwrap();
        let set = MappingSet::new();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert!(q.affected_by(&snap, &set, &with_null[0]));
        assert!(!q.affected_by(&snap, &set, &without_null[0]));
        assert_eq!(q.answer_size(&snap, &set), 1);

        // Replacing the null modifies the tuple: still affects the query.
        let modified = db
            .apply(&Write::NullReplace { null: x, replacement: Value::constant("z") }, UpdateId(1))
            .unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert!(q.affected_by(&snap, &set, &modified[0]));
    }

    #[test]
    fn violation_query_affectedness_delegates_to_delta_evaluation() {
        let (mut db, set) = setup();
        let c = db.relation_id("C").unwrap();
        let s = db.relation_id("S").unwrap();
        let sigma1 = set.by_name("sigma1").unwrap().id;
        let q = ReadQuery::Violation(ViolationQuery { mapping: sigma1, seed: ViolationSeed::Full });
        assert!(q.is_violation_query());
        assert_eq!(q.relations_read(&set).len(), 2);

        // Inserting a city with no airport changes the (initially empty) answer.
        let changes = db
            .apply(
                &Write::Insert { relation: c, values: vec![Value::constant("Ithaca")] },
                UpdateId(1),
            )
            .unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert!(q.affected_by(&snap, &set, &changes[0]));
        assert_eq!(q.answer_size(&snap, &set), 1);

        // Supplying the airport changes it back.
        let changes = db
            .apply(
                &Write::Insert {
                    relation: s,
                    values: vec![
                        Value::constant("ITH"),
                        Value::constant("Ithaca"),
                        Value::constant("Ithaca"),
                    ],
                },
                UpdateId(1),
            )
            .unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert!(q.affected_by(&snap, &set, &changes[0]));
        assert_eq!(q.answer_size(&snap, &set), 0);
    }
}
