//! Workload generation: the update batches of Section 6.
//!
//! "We show results on two workloads, each of 500 updates. The first consists
//! entirely of inserts, the second of eighty percent inserts and twenty
//! percent deletes. Each update in each workload is started by an insert or
//! delete operation generated randomly and independently. First, the receiving
//! relation is chosen uniformly at random. In the case of inserts, the values
//! in the inserted tuples are chosen with equal probability to be fresh or
//! from the previously mentioned set of constants. In the case of deletes, the
//! tuple to delete is chosen uniformly at random from the relation. In the
//! mixed insert/delete workload, the order of the updates is then randomized."

use std::collections::{BTreeSet, HashMap};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use youtopia_core::InitialOp;
use youtopia_mappings::{MappingGraph, MappingSet};
use youtopia_storage::{nulls_of, Database, NullId, RelationId, UpdateId, Value};

use crate::config::{ExperimentConfig, WorkloadKind};
use crate::schema_gen::GeneratedSchema;

/// The distinct labeled nulls visible anywhere in `db`, in deterministic
/// (ascending id) order — the targets of the null-replacement-heavy workload.
pub fn visible_nulls(db: &Database) -> Vec<NullId> {
    let mut nulls = BTreeSet::new();
    for relation in db.catalog().relation_ids() {
        for (_, data) in db.scan(relation, UpdateId::OMNISCIENT) {
            nulls.extend(nulls_of(&data));
        }
    }
    nulls.into_iter().collect()
}

/// The relation with the most visible tuples in `db` (ties broken by the
/// lower id) — the "hot" relation the skewed workload concentrates on.
pub fn hot_relation(db: &Database) -> Option<RelationId> {
    db.catalog()
        .relation_ids()
        .map(|r| (r, db.visible_count(r, UpdateId::OMNISCIENT)))
        .max_by(|(ra, ca), (rb, cb)| ca.cmp(cb).then(rb.0.cmp(&ra.0)))
        .map(|(r, _)| r)
}

/// For every relation in the mapping graph: the length of the longest
/// forward-cascade chain an insert into it can start (the number of mapping
/// edges a repair can be forced to walk). Relations on a cycle are assigned
/// the node count — a chase there can cascade until a user unifies.
pub fn cascade_depths(mappings: &MappingSet) -> HashMap<RelationId, usize> {
    let graph = MappingGraph::new(mappings);
    let cap = graph.node_count();
    // memo: `None` marks "on the DFS stack" (a cycle when revisited).
    fn depth_of(
        graph: &MappingGraph,
        relation: RelationId,
        cap: usize,
        memo: &mut HashMap<RelationId, Option<usize>>,
    ) -> usize {
        match memo.get(&relation) {
            Some(Some(depth)) => return *depth,
            Some(None) => return cap,
            None => {}
        }
        memo.insert(relation, None);
        let mut best = 0usize;
        for succ in graph.successors(relation) {
            best = best.max(1 + depth_of(graph, succ, cap, memo));
        }
        best = best.min(cap);
        memo.insert(relation, Some(best));
        best
    }
    let mut memo = HashMap::new();
    let mut out = HashMap::new();
    let mut nodes: Vec<RelationId> = graph.nodes().collect();
    nodes.sort();
    for relation in nodes {
        let depth = depth_of(&graph, relation, cap, &mut memo);
        out.insert(relation, depth);
    }
    out
}

/// The relations from which the longest mapping cascades start, in ascending
/// id order — the targets of the deep-cascade workload. Empty when the
/// mapping set is empty.
pub fn cascade_relations(mappings: &MappingSet) -> Vec<RelationId> {
    let depths = cascade_depths(mappings);
    let Some(max) = depths.values().copied().max() else { return Vec::new() };
    let mut out: Vec<RelationId> =
        depths.iter().filter(|(_, d)| **d == max).map(|(r, _)| *r).collect();
    out.sort();
    out
}

/// Generates one workload of `config.workload_updates` initial operations
/// against the (already populated) `initial_db`. `mappings` is the mapping
/// set the workload will run under — the deep-cascade kind aims its inserts
/// at the relations whose mapping chains are longest, the other kinds ignore
/// it. The `variant` index selects a distinct derived seed so repeated runs
/// use independent workloads while remaining reproducible.
pub fn generate_workload(
    config: &ExperimentConfig,
    schema: &GeneratedSchema,
    initial_db: &Database,
    mappings: &MappingSet,
    kind: WorkloadKind,
    variant: u64,
) -> Vec<InitialOp> {
    let seed = config.seed.wrapping_mul(0xC2B2_AE35).wrapping_add(0x9E37 + variant).wrapping_add(
        match kind {
            WorkloadKind::AllInserts => 0,
            WorkloadKind::Mixed => 0x5DEECE66,
            WorkloadKind::NullReplacementHeavy => 0x0BAD_5EED,
            WorkloadKind::Skewed => 0x5EED_CAFE,
            WorkloadKind::DeepCascade => 0x00CA_5CAD,
        },
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let relation_ids: Vec<_> = schema.db.catalog().relation_ids().collect();
    let hot = hot_relation(initial_db);
    let hot_probability = kind.hot_relation_probability();
    let cascade_probability = kind.cascade_probability();
    let cascades = if cascade_probability > 0.0 { cascade_relations(mappings) } else { Vec::new() };
    let pick_relation = |rng: &mut StdRng| {
        if !cascades.is_empty() && rng.gen_bool(cascade_probability) {
            return cascades[rng.gen_range(0..cascades.len())];
        }
        match hot {
            Some(hot) if hot_probability > 0.0 && rng.gen_bool(hot_probability) => hot,
            _ => relation_ids[rng.gen_range(0..relation_ids.len())],
        }
    };
    // Deep cascades need violations to actually fire: a pooled constant can
    // coincide with an existing RHS match and stop the chain, a fresh value
    // cannot.
    let fresh_probability = match kind {
        WorkloadKind::DeepCascade => 1.0,
        _ => config.fresh_value_probability,
    };

    let total = config.workload_updates;
    // Each null can be replaced once, so the null-replacement share is capped
    // by the distinct nulls the initial database actually contains.
    let mut null_pool =
        if kind.null_replace_fraction() > 0.0 { visible_nulls(initial_db) } else { Vec::new() };
    let null_replaces =
        ((total as f64 * kind.null_replace_fraction()).round() as usize).min(null_pool.len());
    let deletes = (total as f64 * kind.delete_fraction()).round() as usize;
    let inserts = total - deletes - null_replaces;

    let mut ops = Vec::with_capacity(total);
    for i in 0..inserts {
        let relation = pick_relation(&mut rng);
        let arity = schema.db.schema(relation).arity();
        let values = (0..arity)
            .map(|pos| {
                if fresh_probability >= 1.0 || rng.gen_bool(fresh_probability) {
                    Value::constant(&format!("fresh_{variant}_{i}_{pos}"))
                } else {
                    schema.random_constant(&mut rng)
                }
            })
            .collect();
        ops.push(InitialOp::Insert { relation, values });
    }
    for _ in 0..null_replaces {
        // Draw a distinct null (uniformly, without replacement) and complete
        // it with a pool constant.
        let null = null_pool.swap_remove(rng.gen_range(0..null_pool.len()));
        let replacement = schema.random_constant(&mut rng);
        ops.push(InitialOp::NullReplace { null, replacement });
    }
    for _ in 0..deletes {
        // Choose a relation (skew-aware), then a tuple uniformly at random
        // from it; fall back to another relation if the chosen one is empty in
        // the initial database.
        let mut op = None;
        for _ in 0..relation_ids.len() * 4 {
            let relation = pick_relation(&mut rng);
            let tuples = initial_db.scan(relation, UpdateId::OMNISCIENT);
            if tuples.is_empty() {
                continue;
            }
            let (tuple, _) = tuples[rng.gen_range(0..tuples.len())].clone();
            op = Some(InitialOp::Delete { relation, tuple });
            break;
        }
        // An entirely empty database degenerates to an extra insert so the
        // workload size stays fixed.
        ops.push(op.unwrap_or_else(|| {
            InitialOp::Insert {
                relation: relation_ids[0],
                values: (0..schema.db.schema(relation_ids[0]).arity())
                    .map(|_| schema.random_constant(&mut rng))
                    .collect(),
            }
        }));
    }
    if kind != WorkloadKind::AllInserts {
        ops.shuffle(&mut rng);
    }
    ops
}

/// Counts the operation mix of a workload (for reports and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkloadMix {
    /// Number of insert operations.
    pub inserts: usize,
    /// Number of delete operations.
    pub deletes: usize,
    /// Number of null-replacement operations.
    pub null_replacements: usize,
}

/// Computes the operation mix of a workload.
pub fn workload_mix(ops: &[InitialOp]) -> WorkloadMix {
    let mut mix = WorkloadMix::default();
    for op in ops {
        match op {
            InitialOp::Insert { .. } => mix.inserts += 1,
            InitialOp::Delete { .. } => mix.deletes += 1,
            InitialOp::NullReplace { .. } => mix.null_replacements += 1,
        }
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_gen::generate_initial_database;
    use crate::mapping_gen::generate_mappings;
    use crate::schema_gen::generate_schema;

    fn setup() -> (ExperimentConfig, GeneratedSchema, Database, MappingSet) {
        let config = ExperimentConfig::tiny();
        let schema = generate_schema(&config);
        let mappings = generate_mappings(&config, &schema);
        let (db, _) = generate_initial_database(&config, &schema, &mappings).unwrap();
        (config, schema, db, mappings)
    }

    #[test]
    fn all_insert_workload_contains_only_inserts() {
        let (config, schema, db, mappings) = setup();
        let ops = generate_workload(&config, &schema, &db, &mappings, WorkloadKind::AllInserts, 0);
        assert_eq!(ops.len(), config.workload_updates);
        let mix = workload_mix(&ops);
        assert_eq!(mix.inserts, config.workload_updates);
        assert_eq!(mix.deletes, 0);
    }

    #[test]
    fn mixed_workload_is_about_twenty_percent_deletes() {
        let (mut config, schema, db, mappings) = setup();
        config.workload_updates = 50;
        let ops = generate_workload(&config, &schema, &db, &mappings, WorkloadKind::Mixed, 0);
        let mix = workload_mix(&ops);
        assert_eq!(mix.inserts + mix.deletes, 50);
        assert_eq!(mix.deletes, 10, "20% of 50");
        // Deletes reference tuples that exist in the initial database.
        for op in &ops {
            if let InitialOp::Delete { relation, tuple } = op {
                assert!(db.visible(*relation, *tuple, UpdateId::OMNISCIENT).is_some());
            }
        }
    }

    #[test]
    fn mixed_workload_order_is_shuffled_but_deterministic() {
        let (mut config, schema, db, mappings) = setup();
        config.workload_updates = 40;
        let a = generate_workload(&config, &schema, &db, &mappings, WorkloadKind::Mixed, 1);
        let b = generate_workload(&config, &schema, &db, &mappings, WorkloadKind::Mixed, 1);
        assert_eq!(a, b, "same variant seed gives the same workload");
        let c = generate_workload(&config, &schema, &db, &mappings, WorkloadKind::Mixed, 2);
        assert_ne!(a, c, "different variants differ");
        // The deletes are not all clumped at the end after shuffling.
        let first_half_deletes =
            a.iter().take(20).filter(|op| matches!(op, InitialOp::Delete { .. })).count();
        assert!(first_half_deletes > 0, "shuffle should spread deletes around");
    }

    #[test]
    fn null_replacement_heavy_workload_targets_initial_nulls() {
        let (config, schema, db, mappings) = setup();
        let nulls = visible_nulls(&db);
        let ops = generate_workload(
            &config,
            &schema,
            &db,
            &mappings,
            WorkloadKind::NullReplacementHeavy,
            0,
        );
        assert_eq!(ops.len(), config.workload_updates);
        let mix = workload_mix(&ops);
        assert_eq!(mix.deletes, 0);
        let expected = ((config.workload_updates as f64 * 0.5).round() as usize).min(nulls.len());
        assert_eq!(mix.null_replacements, expected);
        assert!(
            !nulls.is_empty() && mix.null_replacements > 0,
            "the chase-populated tiny fixture must contain labeled nulls to replace \
             (found {} nulls)",
            nulls.len()
        );
        // Each replacement targets a distinct, existing null.
        let mut seen = Vec::new();
        for op in &ops {
            if let InitialOp::NullReplace { null, replacement } = op {
                assert!(nulls.contains(null), "replacement targets a null of the initial db");
                assert!(!seen.contains(null), "nulls are drawn without replacement");
                assert!(replacement.is_const());
                seen.push(*null);
            }
        }
        // Reproducible under the variant seed.
        let again = generate_workload(
            &config,
            &schema,
            &db,
            &mappings,
            WorkloadKind::NullReplacementHeavy,
            0,
        );
        assert_eq!(ops, again);
    }

    #[test]
    fn skewed_workload_concentrates_on_the_hot_relation() {
        let (mut config, schema, db, mappings) = setup();
        config.workload_updates = 60;
        let hot = hot_relation(&db).expect("populated fixture has relations");
        let ops = generate_workload(&config, &schema, &db, &mappings, WorkloadKind::Skewed, 0);
        assert_eq!(ops.len(), 60);
        let mix = workload_mix(&ops);
        assert_eq!(mix.deletes, 12, "20% of 60");
        let on_hot = ops
            .iter()
            .filter(|op| match op {
                InitialOp::Insert { relation, .. } | InitialOp::Delete { relation, .. } => {
                    *relation == hot
                }
                InitialOp::NullReplace { .. } => false,
            })
            .count();
        assert!(
            on_hot * 2 > ops.len(),
            "most operations should hit the hot relation ({on_hot}/{} did)",
            ops.len()
        );
        // Deletes still reference existing tuples.
        for op in &ops {
            if let InitialOp::Delete { relation, tuple } = op {
                assert!(db.visible(*relation, *tuple, UpdateId::OMNISCIENT).is_some());
            }
        }
    }

    #[test]
    fn deep_cascade_workload_targets_long_mapping_chains() {
        let (mut config, schema, db, mappings) = setup();
        config.workload_updates = 50;
        let targets = cascade_relations(&mappings);
        assert!(!targets.is_empty(), "the generated mapping set is non-empty");
        let depths = cascade_depths(&mappings);
        let max_depth = depths.values().copied().max().unwrap();
        for r in &targets {
            assert_eq!(depths[r], max_depth);
        }

        let ops = generate_workload(&config, &schema, &db, &mappings, WorkloadKind::DeepCascade, 0);
        assert_eq!(ops.len(), 50);
        let mix = workload_mix(&ops);
        assert_eq!(mix.inserts, 50, "deep-cascade is all inserts");
        let on_target = ops
            .iter()
            .filter(|op| match op {
                InitialOp::Insert { relation, .. } => targets.contains(relation),
                _ => false,
            })
            .count();
        assert!(
            on_target * 2 > ops.len(),
            "most inserts start a longest chain ({on_target}/{} did)",
            ops.len()
        );
        // Values are always fresh so the chains actually fire.
        for op in &ops {
            if let InitialOp::Insert { values, .. } = op {
                for v in values {
                    if let Value::Const(sym) = v {
                        assert!(!schema.constants.contains(sym), "deep-cascade values are fresh");
                    }
                }
            }
        }
        // Reproducible, and distinct variants differ.
        let again =
            generate_workload(&config, &schema, &db, &mappings, WorkloadKind::DeepCascade, 0);
        assert_eq!(ops, again);
    }

    #[test]
    fn cascade_depths_follow_the_mapping_graph() {
        // Chain: A → B → C plus an isolated copy D → D (self-cycle).
        let mut db = Database::new();
        for name in ["A", "B", "C", "D"] {
            db.add_relation(name, ["k"]).unwrap();
        }
        let mut set = MappingSet::new();
        set.add_parsed_many(
            db.catalog(),
            "
            ab: A(x) -> B(x)
            bc: B(x) -> C(x)
            dd: D(x) -> D(x)
            ",
        )
        .unwrap();
        let depths = cascade_depths(&set);
        let id = |n: &str| db.relation_id(n).unwrap();
        assert_eq!(depths[&id("A")], 2);
        assert_eq!(depths[&id("B")], 1);
        assert_eq!(depths[&id("C")], 0);
        // The self-cycle is capped at the node count.
        assert_eq!(depths[&id("D")], 4);
        assert_eq!(cascade_relations(&set), vec![id("D")]);
        assert!(cascade_relations(&MappingSet::new()).is_empty());
    }

    #[test]
    fn insert_values_mix_fresh_and_pool_constants() {
        let (config, schema, db, mappings) = setup();
        let ops = generate_workload(&config, &schema, &db, &mappings, WorkloadKind::AllInserts, 3);
        let mut fresh = 0;
        let mut pooled = 0;
        for op in &ops {
            if let InitialOp::Insert { values, .. } = op {
                for v in values {
                    if let Value::Const(sym) = v {
                        if schema.constants.contains(sym) {
                            pooled += 1;
                        } else {
                            fresh += 1;
                        }
                    }
                }
            }
        }
        assert!(fresh > 0 && pooled > 0, "fresh = {fresh}, pooled = {pooled}");
    }
}
