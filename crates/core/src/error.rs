//! Error types for the chase layer.

use std::fmt;

use youtopia_storage::{StorageError, UpdateId};

/// Errors raised while executing a Youtopia update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseError {
    /// An underlying storage error.
    Storage(StorageError),
    /// A frontier decision did not match the pending request (wrong arity,
    /// unification with a tuple that is not more specific, empty deletion
    /// subset, conflicting unifications, …).
    InvalidDecision(String),
    /// [`crate::update::UpdateExecution::step`] was called while the update
    /// was not ready (awaiting a frontier operation, or already terminated).
    NotReady(UpdateId),
    /// [`crate::update::UpdateExecution::resolve_frontier`] was called while
    /// no frontier request was pending.
    NoPendingFrontier(UpdateId),
    /// The configured step limit was exceeded (safety valve for chases that a
    /// resolver never terminates).
    StepLimitExceeded {
        /// The update that exceeded the limit.
        update: UpdateId,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::Storage(e) => write!(f, "storage error: {e}"),
            ChaseError::InvalidDecision(msg) => write!(f, "invalid frontier decision: {msg}"),
            ChaseError::NotReady(u) => write!(f, "update {u} is not ready to take a chase step"),
            ChaseError::NoPendingFrontier(u) => {
                write!(f, "update {u} has no pending frontier request")
            }
            ChaseError::StepLimitExceeded { update, limit } => {
                write!(f, "update {update} exceeded the step limit of {limit}")
            }
        }
    }
}

impl std::error::Error for ChaseError {}

impl From<StorageError> for ChaseError {
    fn from(e: StorageError) -> Self {
        ChaseError::Storage(e)
    }
}

/// Errors raised by keyed per-update lookups (report and stats queries on a
/// long-lived engine).
///
/// With slot-table compaction enabled, an engine retains only a bounded
/// window of terminated update records; looking up an update whose record was
/// compacted away is distinguishable from looking up an update that never
/// existed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupError {
    /// The update terminated and its record was evicted by slot-table
    /// compaction (it fell behind the configured retention horizon). An
    /// [`crate::update::UpdateReport`] for it existed and was durable before
    /// eviction; only the in-memory record is gone.
    SlotEvicted(UpdateId),
    /// No update with this id was ever admitted by the engine.
    UnknownUpdate(UpdateId),
}

impl fmt::Display for LookupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LookupError::SlotEvicted(u) => {
                write!(f, "update {u}'s record was evicted past the retention horizon")
            }
            LookupError::UnknownUpdate(u) => write!(f, "unknown update {u}"),
        }
    }
}

impl std::error::Error for LookupError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: ChaseError = StorageError::UnknownRelation(youtopia_storage::RelationId(1)).into();
        assert!(e.to_string().contains("storage error"));
        assert!(ChaseError::InvalidDecision("bad".into()).to_string().contains("bad"));
        assert!(ChaseError::NotReady(UpdateId(3)).to_string().contains("u3"));
        assert!(ChaseError::NoPendingFrontier(UpdateId(3)).to_string().contains("u3"));
        let e = ChaseError::StepLimitExceeded { update: UpdateId(2), limit: 10 };
        assert!(e.to_string().contains("10"));
    }
}
