//! Multi-threaded stress lane for the free-running [`ParallelRun`]
//! scheduler. `#[ignore]`d in the default suite — CI runs it explicitly with
//! `cargo test --release -- --ignored` in the stress job, where real OS
//! preemption produces interleavings a 1-shot unit test cannot.
//!
//! Each case runs a sizeable workload free-running (no sequencer), inside a
//! watchdog thread: if the scheduler deadlocks or livelocks, the test fails
//! by timeout instead of hanging the suite. Afterwards the system invariants
//! must hold — every update terminated (workload size accounted), the final
//! database satisfies every mapping, and the per-update statistics are sane.

use std::sync::mpsc;
use std::time::Duration;

use youtopia::concurrency::{RunMetrics, SchedulerConfig, SchedulingPolicy};
use youtopia::mappings::satisfies_all;
use youtopia::workload::{build_fixture, generate_workload, ExperimentConfig};
use youtopia::{ParallelRun, RandomResolver, TrackerKind, UpdateId, WorkloadKind};

/// Runs `f` on its own thread and panics if it does not finish in `timeout`
/// (a hung free-running scheduler would otherwise block the whole lane).
fn with_deadline<T: Send + 'static>(
    timeout: Duration,
    label: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(timeout) {
        Ok(result) => {
            handle.join().expect("stress worker panicked");
            result
        }
        Err(_) => panic!("{label}: free-running scheduler did not finish within {timeout:?} — deadlock or livelock"),
    }
}

fn stress_once(
    seed: u64,
    tracker: TrackerKind,
    kind: WorkloadKind,
    policy: SchedulingPolicy,
    updates: usize,
) -> RunMetrics {
    let label = format!("seed {seed}, {tracker}, {kind}, {policy:?}");
    with_deadline(Duration::from_secs(120), &label.clone(), move || {
        let mut config = ExperimentConfig::quick();
        config.seed = seed;
        config.initial_tuples = 300;
        config.workload_updates = updates;
        let fixture = build_fixture(&config).expect("fixture builds");
        let ops = generate_workload(
            &config,
            &fixture.schema,
            &fixture.initial_db,
            &fixture.mappings,
            kind,
            seed,
        );
        assert_eq!(ops.len(), updates);
        let scheduler = SchedulerConfig::with_tracker(tracker)
            .with_policy(policy)
            .with_workers(4)
            .free_running();
        let first_number = config.initial_tuples as u64 + 1_000;
        let mut run = ParallelRun::new(
            fixture.initial_db.clone(),
            fixture.mappings.clone(),
            ops,
            first_number,
            scheduler,
        );
        let metrics = run.run(&mut RandomResolver::seeded(seed ^ 0x57E55)).unwrap();

        // System invariants: every update ran and terminated, restarts match
        // the abort count, and the final repository is consistent.
        assert_eq!(metrics.workload_size, updates, "{label}");
        assert!(metrics.steps >= updates, "{label}: every update steps at least once");
        let stats = run.update_stats();
        assert_eq!(stats.len(), updates, "{label}");
        assert!(stats.iter().all(|(_, s)| s.steps > 0), "{label}: no update may be skipped");
        let restarts: usize = stats.iter().map(|(_, s)| s.restarts).sum();
        assert_eq!(restarts, metrics.aborts, "{label}: every abort restarts its update");
        let (db, mappings, _) = run.into_parts();
        assert!(
            satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), &mappings),
            "{label}: final database must satisfy all mappings"
        );
        metrics
    })
}

/// The headline stress case from the CI lane: 200 updates, 4 free-running
/// workers, the contention-heavy skewed workload.
#[test]
#[ignore = "multi-thread stress lane: run with `cargo test --release -- --ignored`"]
fn free_running_skewed_200_updates_4_workers() {
    let metrics = stress_once(
        1,
        TrackerKind::Coarse,
        WorkloadKind::Skewed,
        SchedulingPolicy::StepRoundRobin,
        200,
    );
    assert!(metrics.changes > 0);
}

/// Deep cascades keep violation queues long across many overlapping read
/// halves; PRECISE exercises exact dependency recording under contention.
#[test]
#[ignore = "multi-thread stress lane: run with `cargo test --release -- --ignored`"]
fn free_running_deep_cascade_precise() {
    stress_once(
        2,
        TrackerKind::Precise,
        WorkloadKind::DeepCascade,
        SchedulingPolicy::StepRoundRobin,
        200,
    );
}

/// The stratum policy under free-running: workers hold updates for whole
/// deterministic strata, widening the owned-slot windows the abort-flag
/// protocol must survive.
#[test]
#[ignore = "multi-thread stress lane: run with `cargo test --release -- --ignored`"]
fn free_running_mixed_stratum_policy() {
    stress_once(
        3,
        TrackerKind::Naive,
        WorkloadKind::Mixed,
        SchedulingPolicy::StratumRoundRobin,
        200,
    );
}

/// Several back-to-back seeds at a smaller size: schedule diversity matters
/// more than workload volume for racing the abort machinery.
#[test]
#[ignore = "multi-thread stress lane: run with `cargo test --release -- --ignored`"]
fn free_running_seed_sweep() {
    for seed in 10..16u64 {
        stress_once(
            seed,
            if seed % 2 == 0 { TrackerKind::Coarse } else { TrackerKind::Precise },
            if seed % 2 == 0 { WorkloadKind::Mixed } else { WorkloadKind::Skewed },
            SchedulingPolicy::StepRoundRobin,
            60,
        );
    }
}
