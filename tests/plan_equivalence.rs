//! Differential tests for the compiled-plan cache: the compiled dispatch path
//! (`violation_queries_for_change`, backed by `CompiledPlans`) must agree with
//! the uncompiled re-planning reference path
//! (`replan_violation_queries_for_change`) on every change — same queries, in
//! the same order, reporting the same violation sets.

use proptest::prelude::*;
use youtopia::mappings::{
    replan_violation_queries_for_change, violation_queries_for_change, violations_from_change,
    Violation,
};
use youtopia::workload::{build_fixture, generate_workload, ExperimentConfig, WorkloadKind};
use youtopia::UpdateId;

/// Plays a generated workload against a generated fixture and checks, for
/// every tuple-level change, that the compiled and re-planning paths produce
/// identical query sequences and identical violation sets.
fn compiled_path_matches_replanning(seed: u64, kind: WorkloadKind) {
    let mut config = ExperimentConfig::tiny();
    config.seed = seed;
    let fixture = build_fixture(&config).expect("fixture builds");
    let mappings = fixture.mappings;
    let mut db = fixture.initial_db;
    let ops = generate_workload(&config, &fixture.schema, &db, &mappings, kind, seed);

    let mut changes_checked = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let writer = UpdateId(10_000 + i as u64);
        let changes = db.apply(&op.to_write(), writer).expect("workload ops apply");
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        for change in &changes {
            let compiled = violation_queries_for_change(&mappings, change);
            let replanned = replan_violation_queries_for_change(&mappings, change);
            assert_eq!(
                compiled, replanned,
                "seed {seed}, op {i}: compiled plans must instantiate the exact query \
                 sequence the re-planning path builds"
            );

            // Violation sets: the production entry point (which uses the
            // compiled path internally) against evaluating the re-planned
            // queries by hand.
            let (_, from_compiled) = violations_from_change(&snap, &mappings, change);
            let mut from_replanned: Vec<Violation> =
                replanned.iter().flat_map(|q| q.evaluate(&snap, &mappings)).collect();
            from_replanned.sort();
            from_replanned.dedup();
            assert_eq!(
                from_compiled, from_replanned,
                "seed {seed}, op {i}: both paths must report identical violation sets"
            );
            changes_checked += 1;
        }
    }
    assert!(changes_checked > 0, "seed {seed}: the workload must exercise at least one change");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mixed workloads exercise the insert (LHS-seed) and delete (RHS-seed)
    /// dispatch paths over randomly generated schemas and mapping sets.
    #[test]
    fn mixed_workload_changes_agree(seed in 0u64..10_000) {
        compiled_path_matches_replanning(seed, WorkloadKind::Mixed);
    }

    /// Null-replacement-heavy workloads produce `Modified` changes, which
    /// dispatch through both the LHS (new image) and RHS (old image) plan
    /// indexes of the same change.
    #[test]
    fn null_replacement_changes_agree(seed in 0u64..10_000) {
        compiled_path_matches_replanning(seed, WorkloadKind::NullReplacementHeavy);
    }
}

/// A handcrafted edge case: a self-joining, self-cyclic mapping whose relation
/// occurs several times on both sides, so one change must fan out to several
/// plans per side — including on mapping sets assembled incrementally and via
/// `prefix` (which rebuilds the compiled cache).
#[test]
fn self_cyclic_mapping_plans_agree() {
    let mut db = youtopia::Database::new();
    db.add_relation("E", ["src", "dst"]).unwrap();
    db.add_relation("N", ["node"]).unwrap();
    let mut mappings = youtopia::MappingSet::new();
    mappings
        .add_parsed_many(
            db.catalog(),
            "
            closure: E(x, y) & E(y, z) -> exists w. E(x, w) & N(z)
            nodes: N(x) -> exists y. E(x, y)
            ",
        )
        .unwrap();

    let u = UpdateId(1);
    db.insert_by_name("E", &["a", "b"], u);
    db.insert_by_name("N", &["a"], u);
    let e = db.relation_id("E").unwrap();
    let changes = db
        .apply(
            &youtopia::Write::Insert {
                relation: e,
                values: vec![youtopia::Value::constant("b"), youtopia::Value::constant("c")],
            },
            UpdateId(2),
        )
        .unwrap();
    let snap = db.snapshot(UpdateId::OMNISCIENT);

    for set in [&mappings, &mappings.prefix(1)] {
        for change in &changes {
            let compiled = violation_queries_for_change(set, change);
            let replanned = replan_violation_queries_for_change(set, change);
            assert_eq!(compiled, replanned);
            // E occurs twice on the closure LHS: both atom positions must fire.
            assert!(
                compiled.len() >= 2,
                "an E insert must seed one query per LHS atom position, got {compiled:?}"
            );
            let (_, violations) = violations_from_change(&snap, set, change);
            let mut by_hand: Vec<Violation> =
                replanned.iter().flat_map(|q| q.evaluate(&snap, set)).collect();
            by_hand.sort();
            by_hand.dedup();
            assert_eq!(violations, by_hand);
        }
    }
}
