//! A small textual syntax for mappings.
//!
//! ```text
//! σ3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
//! ```
//!
//! * An optional mapping name is terminated by `:`.
//! * Atoms are `Relation(term, …)`; atoms are joined with `&`, `,` or `∧`.
//! * The implication arrow is `->` or `→`.
//! * An optional `exists v1, v2.` prefix may name the existential variables of
//!   the right-hand side (purely documentary: any RHS-only variable is
//!   existential regardless).
//! * Quoted tokens (`'Geneva Winery'` or `"XYZ"`) are constants; bare tokens
//!   are variables.

use youtopia_storage::{Atom, Catalog, Term, Value};

use crate::error::MappingError;
use crate::tgd::{MappingId, MappingSet};

/// The result of parsing a single tgd.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedTgd {
    /// Optional mapping name (`σ3` in the example above).
    pub name: Option<String>,
    /// Left-hand side atoms.
    pub lhs: Vec<Atom>,
    /// Right-hand side atoms.
    pub rhs: Vec<Atom>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    Ident(String),
    Quoted(String),
    LParen,
    RParen,
    Comma,
    And,
    Arrow,
    Colon,
    Dot,
}

fn tokenize(input: &str) -> Result<Vec<Token>, MappingError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '&' | '∧' => {
                tokens.push(Token::And);
                i += 1;
            }
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '→' => {
                tokens.push(Token::Arrow);
                i += 1;
            }
            '-' => {
                if chars.get(i + 1) == Some(&'>') {
                    tokens.push(Token::Arrow);
                    i += 2;
                } else {
                    return Err(MappingError::Parse(format!(
                        "unexpected character `-` at offset {i}"
                    )));
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != quote {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(MappingError::Parse("unterminated quoted constant".into()));
                }
                tokens.push(Token::Quoted(chars[start..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_alphanumeric() || c == '_' || c == 'σ' => {
                let start = i;
                let mut j = i;
                while j < chars.len()
                    && (chars[j].is_alphanumeric() || chars[j] == '_' || chars[j] == 'σ')
                {
                    j += 1;
                }
                tokens.push(Token::Ident(chars[start..j].iter().collect()));
                i = j;
            }
            other => {
                return Err(MappingError::Parse(format!(
                    "unexpected character `{other}` at offset {i}"
                )))
            }
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    catalog: &'a Catalog,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, token: &Token, what: &str) -> Result<(), MappingError> {
        match self.bump() {
            Some(ref t) if t == token => Ok(()),
            other => Err(MappingError::Parse(format!("expected {what}, found {other:?}"))),
        }
    }

    fn parse_atom(&mut self) -> Result<Atom, MappingError> {
        let name = match self.bump() {
            Some(Token::Ident(name)) => name,
            other => {
                return Err(MappingError::Parse(format!("expected relation name, found {other:?}")))
            }
        };
        let relation = self
            .catalog
            .relation_id(&name)
            .ok_or_else(|| MappingError::UnknownRelation(name.clone()))?;
        self.expect(&Token::LParen, "`(`")?;
        let mut terms = Vec::new();
        loop {
            match self.bump() {
                Some(Token::Ident(v)) => terms.push(Term::var(&v)),
                Some(Token::Quoted(c)) => terms.push(Term::Const(Value::constant(&c))),
                other => {
                    return Err(MappingError::Parse(format!("expected term, found {other:?}")))
                }
            }
            match self.bump() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => {
                    return Err(MappingError::Parse(format!(
                        "expected `,` or `)`, found {other:?}"
                    )))
                }
            }
        }
        let schema = self.catalog.schema(relation);
        if schema.arity() != terms.len() {
            return Err(MappingError::AtomArityMismatch {
                mapping: String::new(),
                relation: schema.name.clone(),
                expected: schema.arity(),
                actual: terms.len(),
            });
        }
        Ok(Atom::new(relation, terms))
    }

    fn parse_atom_list(&mut self) -> Result<Vec<Atom>, MappingError> {
        let mut atoms = vec![self.parse_atom()?];
        while matches!(self.peek(), Some(Token::And) | Some(Token::Comma)) {
            self.bump();
            atoms.push(self.parse_atom()?);
        }
        Ok(atoms)
    }
}

/// Parses a single tgd against the given catalog.
pub fn parse_tgd(catalog: &Catalog, input: &str) -> Result<ParsedTgd, MappingError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0, catalog };

    // Optional `name :` prefix: an identifier immediately followed by a colon.
    let mut name = None;
    if let (Some(Token::Ident(n)), Some(Token::Colon)) =
        (parser.tokens.first().cloned(), parser.tokens.get(1))
    {
        name = Some(n);
        parser.pos = 2;
    }

    let lhs = parser.parse_atom_list()?;
    parser.expect(&Token::Arrow, "`->`")?;

    // Optional `exists v1, v2.` prefix before the RHS.
    if let Some(Token::Ident(word)) = parser.peek() {
        if word == "exists" {
            parser.bump();
            loop {
                match parser.bump() {
                    Some(Token::Ident(_)) => {}
                    other => {
                        return Err(MappingError::Parse(format!(
                            "expected existential variable, found {other:?}"
                        )))
                    }
                }
                match parser.bump() {
                    Some(Token::Comma) => continue,
                    Some(Token::Dot) => break,
                    other => {
                        return Err(MappingError::Parse(format!(
                            "expected `,` or `.`, found {other:?}"
                        )))
                    }
                }
            }
        }
    }

    let rhs = parser.parse_atom_list()?;
    if parser.peek().is_some() {
        return Err(MappingError::Parse(format!(
            "trailing input starting at {:?}",
            parser.peek().unwrap()
        )));
    }
    Ok(ParsedTgd { name, lhs, rhs })
}

impl MappingSet {
    /// Parses a tgd and adds it to the set. Unnamed mappings are named
    /// `σ<index>`.
    pub fn add_parsed(
        &mut self,
        catalog: &Catalog,
        input: &str,
    ) -> Result<MappingId, MappingError> {
        let parsed = parse_tgd(catalog, input)?;
        let name = parsed.name.unwrap_or_else(|| format!("σ{}", self.len()));
        self.add(name, parsed.lhs, parsed.rhs)
    }

    /// Parses several newline-separated tgds (empty lines and `#` comments are
    /// skipped).
    pub fn add_parsed_many(
        &mut self,
        catalog: &Catalog,
        input: &str,
    ) -> Result<Vec<MappingId>, MappingError> {
        let mut ids = Vec::new();
        for line in input.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            ids.push(self.add_parsed(catalog, line)?);
        }
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::Database;

    fn travel_catalog() -> Database {
        let mut db = Database::new();
        db.add_relation("C", ["city"]).unwrap();
        db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        db.add_relation("A", ["location", "name"]).unwrap();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        db.add_relation("V", ["city", "convention"]).unwrap();
        db.add_relation("E", ["convention", "attraction"]).unwrap();
        db
    }

    #[test]
    fn parses_the_paper_mappings() {
        let db = travel_catalog();
        let mut set = MappingSet::new();
        let text = "
            # Figure 2 mappings
            sigma1: C(c) -> exists a, l. S(a, l, c)
            sigma2: S(a, c, c2) -> C(c) & C(c2)
            sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
            sigma4: V(cv, x) & T(n, c, cv) -> E(x, n)
        ";
        let ids = set.add_parsed_many(db.catalog(), text).unwrap();
        assert_eq!(ids.len(), 4);
        let s3 = set.by_name("sigma3").unwrap();
        assert_eq!(s3.lhs.len(), 2);
        assert_eq!(s3.rhs.len(), 1);
        assert_eq!(s3.existential_vars().len(), 1);
        assert!(set.validate(db.catalog()).is_ok());
    }

    #[test]
    fn parses_constants_and_unicode_arrow() {
        let db = travel_catalog();
        let parsed = parse_tgd(db.catalog(), "T(n, 'XYZ', cs) → R('XYZ', n, r)").unwrap();
        assert_eq!(parsed.name, None);
        assert_eq!(parsed.lhs[0].terms[1], Term::Const(Value::constant("XYZ")));
        assert_eq!(parsed.rhs[0].terms[0], Term::Const(Value::constant("XYZ")));
    }

    #[test]
    fn name_prefix_is_optional() {
        let db = travel_catalog();
        let named = parse_tgd(db.catalog(), "m7: C(c) -> C(c)").unwrap();
        assert_eq!(named.name.as_deref(), Some("m7"));
        let unnamed = parse_tgd(db.catalog(), "C(c) -> C(c)").unwrap();
        assert_eq!(unnamed.name, None);
    }

    #[test]
    fn unknown_relation_is_reported() {
        let db = travel_catalog();
        let err = parse_tgd(db.catalog(), "Zed(x) -> C(x)").unwrap_err();
        assert!(matches!(err, MappingError::UnknownRelation(name) if name == "Zed"));
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let db = travel_catalog();
        let err = parse_tgd(db.catalog(), "C(a, b) -> C(a)").unwrap_err();
        assert!(matches!(err, MappingError::AtomArityMismatch { expected: 1, actual: 2, .. }));
    }

    #[test]
    fn syntax_errors_are_reported() {
        let db = travel_catalog();
        assert!(parse_tgd(db.catalog(), "C(c) C(c)").is_err());
        assert!(parse_tgd(db.catalog(), "C(c -> C(c)").is_err());
        assert!(parse_tgd(db.catalog(), "C(c) -> C(c) trailing").is_err());
        assert!(parse_tgd(db.catalog(), "C('unterminated) -> C(c)").is_err());
        assert!(parse_tgd(db.catalog(), "C(c) - C(c)").is_err());
        assert!(parse_tgd(db.catalog(), "").is_err());
    }

    #[test]
    fn quoted_constants_may_contain_spaces() {
        let db = travel_catalog();
        let parsed =
            parse_tgd(db.catalog(), "A(l, 'Geneva Winery') -> A(l, 'Geneva Winery')").unwrap();
        assert_eq!(parsed.lhs[0].terms[1], Term::Const(Value::constant("Geneva Winery")));
    }

    #[test]
    fn add_parsed_assigns_default_names() {
        let db = travel_catalog();
        let mut set = MappingSet::new();
        set.add_parsed(db.catalog(), "C(c) -> C(c)").unwrap();
        assert_eq!(set.by_name("σ0").unwrap().lhs.len(), 1);
    }

    #[test]
    fn comment_only_input_yields_no_mappings() {
        let db = travel_catalog();
        let mut set = MappingSet::new();
        let ids = set.add_parsed_many(db.catalog(), "# nothing here\n\n").unwrap();
        assert!(ids.is_empty());
    }
}
