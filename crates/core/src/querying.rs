//! Querying the repository over incomplete data (Section 1.2).
//!
//! A Youtopia repository routinely contains labeled nulls, so its query engine
//! offers two answer semantics:
//!
//! * a **certain** semantics "that guarantees correctness while potentially
//!   omitting some results" — for conjunctive queries over a database with
//!   labeled nulls (a naïve table) the certain answers are exactly the
//!   null-free rows obtained by evaluating the query directly;
//! * a **best-effort** semantics "that includes all potentially relevant
//!   results at the risk of some incorrectness" — every homomorphic answer,
//!   including rows that mention labeled nulls.
//!
//! The module also provides the keyword-search entry point mentioned in the
//! same section: scanning the repository for tuples whose constants contain a
//! keyword.

use std::collections::BTreeSet;

use youtopia_storage::{evaluate, Atom, Bindings, DataView, RelationId, Symbol, TupleId, Value};

/// Which answer semantics to use when querying incomplete data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QuerySemantics {
    /// Only answers guaranteed to hold in every completion of the incomplete
    /// database (no labeled nulls in the projected columns).
    Certain,
    /// All answers produced by homomorphisms into the current database,
    /// including ones that mention labeled nulls.
    BestEffort,
}

/// A structured (conjunctive) query against the repository: a set of atoms and
/// the distinguished variables to project onto.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepositoryQuery {
    /// The query body (joined atoms).
    pub atoms: Vec<Atom>,
    /// The projected (distinguished) variables, in output order.
    pub distinguished: Vec<Symbol>,
}

impl RepositoryQuery {
    /// Creates a query projecting the given variable names.
    pub fn new(atoms: Vec<Atom>, distinguished: &[&str]) -> RepositoryQuery {
        RepositoryQuery {
            atoms,
            distinguished: distinguished.iter().map(|v| Symbol::intern(v)).collect(),
        }
    }
}

/// One answer row.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AnswerRow {
    /// The projected values, in the order of
    /// [`RepositoryQuery::distinguished`].
    pub values: Vec<Value>,
    /// Whether the row is a certain answer (contains no labeled nulls).
    pub certain: bool,
}

/// Answers a repository query under the chosen semantics. Rows are
/// de-duplicated and returned in a deterministic order.
pub fn answer(
    view: &dyn DataView,
    query: &RepositoryQuery,
    semantics: QuerySemantics,
) -> Vec<AnswerRow> {
    let mut rows: BTreeSet<AnswerRow> = BTreeSet::new();
    for m in evaluate(view, &query.atoms, &Bindings::new(), None) {
        let values: Vec<Value> = query
            .distinguished
            .iter()
            // A distinguished variable that does not occur in the body can never
            // be bound; surface it as a (stable) constant named after itself.
            .map(|v| m.bindings.get(v).copied().unwrap_or(Value::Const(*v)))
            .collect();
        let certain = values.iter().all(Value::is_const);
        if semantics == QuerySemantics::Certain && !certain {
            continue;
        }
        rows.insert(AnswerRow { values, certain });
    }
    rows.into_iter().collect()
}

/// A keyword-search hit: a tuple with at least one constant containing the
/// keyword (case-insensitive).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeywordHit {
    /// The relation the tuple belongs to.
    pub relation: RelationId,
    /// The matching tuple.
    pub tuple: TupleId,
    /// Attribute positions whose constants matched.
    pub columns: Vec<usize>,
}

/// Scans every relation for tuples whose constants contain `keyword`
/// (case-insensitive substring match) — the unstructured half of Youtopia's
/// query interface.
pub fn keyword_search(view: &dyn DataView, keyword: &str) -> Vec<KeywordHit> {
    let needle = keyword.to_lowercase();
    let mut hits = Vec::new();
    if needle.is_empty() {
        return hits;
    }
    for relation in view.catalog().relation_ids().collect::<Vec<_>>() {
        for (tuple, data) in view.scan(relation) {
            let columns: Vec<usize> = data
                .iter()
                .enumerate()
                .filter_map(|(i, v)| match v {
                    Value::Const(sym) if sym.as_str().to_lowercase().contains(&needle) => Some(i),
                    _ => None,
                })
                .collect();
            if !columns.is_empty() {
                hits.push(KeywordHit { relation, tuple, columns });
            }
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::{Database, Term, UpdateId, Write};

    fn incomplete_db() -> Database {
        let mut db = Database::new();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        let u = UpdateId(0);
        db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], u);
        db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], u);
        // The Niagara Falls tour has an unknown company and review (Figure 2).
        let x1 = db.fresh_null();
        let x2 = db.fresh_null();
        let t = db.relation_id("T").unwrap();
        let r = db.relation_id("R").unwrap();
        db.apply(
            &Write::Insert {
                relation: t,
                values: vec![
                    Value::constant("Niagara Falls"),
                    Value::Null(x1),
                    Value::constant("Toronto"),
                ],
            },
            u,
        )
        .unwrap();
        db.apply(
            &Write::Insert {
                relation: r,
                values: vec![Value::Null(x1), Value::constant("Niagara Falls"), Value::Null(x2)],
            },
            u,
        )
        .unwrap();
        db
    }

    fn reviews_query(db: &Database) -> RepositoryQuery {
        // "Which companies tour which attractions, and what is the review?"
        let t = db.relation_id("T").unwrap();
        let r = db.relation_id("R").unwrap();
        RepositoryQuery::new(
            vec![
                Atom::new(t, vec![Term::var("n"), Term::var("c"), Term::var("s")]),
                Atom::new(r, vec![Term::var("c"), Term::var("n"), Term::var("rev")]),
            ],
            &["n", "c", "rev"],
        )
    }

    #[test]
    fn certain_answers_omit_rows_with_nulls() {
        let db = incomplete_db();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let query = reviews_query(&db);
        let certain = answer(&snap, &query, QuerySemantics::Certain);
        assert_eq!(certain.len(), 1);
        assert!(certain[0].certain);
        assert_eq!(certain[0].values[0], Value::constant("Geneva Winery"));
        assert_eq!(certain[0].values[2], Value::constant("Great!"));
    }

    #[test]
    fn best_effort_answers_include_incomplete_rows() {
        let db = incomplete_db();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let query = reviews_query(&db);
        let all = answer(&snap, &query, QuerySemantics::BestEffort);
        assert_eq!(all.len(), 2);
        assert_eq!(all.iter().filter(|r| r.certain).count(), 1);
        let incomplete = all.iter().find(|r| !r.certain).unwrap();
        assert_eq!(incomplete.values[0], Value::constant("Niagara Falls"));
        assert!(incomplete.values[1].is_null(), "the unknown company is reported as a null");
    }

    #[test]
    fn answers_are_deduplicated_and_ordered() {
        let mut db = incomplete_db();
        // A duplicate review row yields the same projected answer only once.
        db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], UpdateId(0));
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let query = reviews_query(&db);
        let certain = answer(&snap, &query, QuerySemantics::Certain);
        assert_eq!(certain.len(), 1);
        let best = answer(&snap, &query, QuerySemantics::BestEffort);
        let mut sorted = best.clone();
        sorted.sort();
        assert_eq!(best, sorted);
    }

    #[test]
    fn unbound_distinguished_variables_do_not_panic() {
        let db = incomplete_db();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let t = db.relation_id("T").unwrap();
        let query = RepositoryQuery::new(
            vec![Atom::new(t, vec![Term::var("n"), Term::var("c"), Term::var("s")])],
            &["n", "ghost"],
        );
        let rows = answer(&snap, &query, QuerySemantics::BestEffort);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn keyword_search_finds_constants_case_insensitively() {
        let db = incomplete_db();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let hits = keyword_search(&snap, "geneva");
        assert_eq!(hits.len(), 2, "the winery appears in T and R");
        assert!(hits.iter().all(|h| !h.columns.is_empty()));
        assert!(keyword_search(&snap, "zzzz-nothing").is_empty());
        assert!(keyword_search(&snap, "").is_empty());
        // Labeled nulls never match keywords.
        let hits = keyword_search(&snap, "x1");
        assert!(hits.is_empty());
    }
}
