//! Conjunctive queries and their evaluation over a [`DataView`].
//!
//! Mappings (tgds), violation queries and correction queries are all built
//! from conjunctions of relational atoms. Evaluation finds homomorphisms from
//! the atoms into the database, exactly the satisfaction criterion used by the
//! paper (following Fagin et al.'s data-exchange semantics): query variables
//! may bind to constants *or* labeled nulls.

use std::collections::BTreeMap;
use std::fmt;

use crate::schema::RelationId;
use crate::snapshot::DataView;
use crate::tuple::{TupleData, TupleId};
use crate::value::{Symbol, Value};

/// A term of an atom: a variable or a constant value.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A query variable (interned by name).
    Var(Symbol),
    /// A constant value. Note that a [`Value::Null`] may also appear here:
    /// violation and correction queries are frequently seeded with labeled
    /// nulls taken from existing tuples.
    Const(Value),
}

impl Term {
    /// Convenience constructor for a variable.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::intern(name))
    }

    /// Convenience constructor for a constant.
    pub fn constant(value: &str) -> Term {
        Term::Const(Value::constant(value))
    }

    /// Returns the variable symbol if this term is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "'{c}'"),
        }
    }
}

/// A relational atom `R(t_1, …, t_k)`.
#[derive(Clone, PartialEq, Eq)]
pub struct Atom {
    /// The relation.
    pub relation: RelationId,
    /// Terms, one per attribute.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: RelationId, terms: Vec<Term>) -> Atom {
        Atom { relation, terms }
    }

    /// The distinct variables of the atom, in order of first occurrence.
    pub fn variables(&self) -> Vec<Symbol> {
        let mut vars = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !vars.contains(v) {
                    vars.push(*v);
                }
            }
        }
        vars
    }

    /// Attempts to match the atom against concrete tuple data under the given
    /// bindings, returning the extended bindings on success.
    pub fn match_tuple(&self, data: &[Value], bindings: &Bindings) -> Option<Bindings> {
        if data.len() != self.terms.len() {
            return None;
        }
        let mut extended = bindings.clone();
        for (term, value) in self.terms.iter().zip(data.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        return None;
                    }
                }
                Term::Var(v) => match extended.get(v) {
                    Some(bound) => {
                        if bound != value {
                            return None;
                        }
                    }
                    None => {
                        extended.insert(*v, *value);
                    }
                },
            }
        }
        Some(extended)
    }

    /// Instantiates the atom under `bindings`, calling `fresh` for every
    /// unbound variable (used to generate RHS tuples with fresh labeled
    /// nulls). Repeated unbound variables receive the same fresh value within
    /// a single call only if the caller's `fresh` function memoises — the
    /// chase layer does this per violation.
    pub fn instantiate(
        &self,
        bindings: &Bindings,
        mut fresh: impl FnMut(Symbol) -> Value,
    ) -> Vec<Value> {
        self.terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => match bindings.get(v) {
                    Some(val) => *val,
                    None => fresh(*v),
                },
            })
            .collect()
    }

    /// Renders the atom using catalog names (for diagnostics).
    pub fn display_with(&self, catalog: &crate::schema::Catalog) -> String {
        let name = &catalog.schema(self.relation).name;
        let terms: Vec<String> = self
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => v.to_string(),
                Term::Const(c) => format!("'{c}'"),
            })
            .collect();
        format!("{name}({})", terms.join(", "))
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t:?}")?;
        }
        write!(f, ")")
    }
}

/// Variable bindings: variable symbol → value. A [`BTreeMap`] keeps iteration
/// deterministic so that chase runs are reproducible.
pub type Bindings = BTreeMap<Symbol, Value>;

/// One homomorphism found by query evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryMatch {
    /// The variable bindings of the homomorphism.
    pub bindings: Bindings,
    /// The matched tuple ids, one per atom, in atom order.
    pub tuples: Vec<TupleId>,
}

/// Evaluates the conjunction of `atoms` over `view`, starting from the `seed`
/// bindings. Returns at most `limit` matches (or all matches when `limit` is
/// `None`).
///
/// Evaluation is a backtracking join: at each step the engine picks the
/// unprocessed atom with the most bound terms and uses the column index for
/// candidate retrieval when possible.
pub fn evaluate(
    view: &dyn DataView,
    atoms: &[Atom],
    seed: &Bindings,
    limit: Option<usize>,
) -> Vec<QueryMatch> {
    let mut results = Vec::new();
    if atoms.is_empty() {
        results.push(QueryMatch { bindings: seed.clone(), tuples: Vec::new() });
        return results;
    }
    let mut chosen: Vec<Option<TupleId>> = vec![None; atoms.len()];
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    search(view, atoms, seed.clone(), &mut remaining, &mut chosen, limit, &mut results);
    results
}

/// Returns `true` iff the conjunction of `atoms` has at least one match under
/// the seed bindings.
pub fn satisfiable(view: &dyn DataView, atoms: &[Atom], seed: &Bindings) -> bool {
    !evaluate(view, atoms, seed, Some(1)).is_empty()
}

fn bound_term_value(term: &Term, bindings: &Bindings) -> Option<Value> {
    match term {
        Term::Const(c) => Some(*c),
        Term::Var(v) => bindings.get(v).copied(),
    }
}

/// Scores an atom for join ordering: atoms with more bound terms first;
/// ties broken by smaller relation.
fn atom_score(view: &dyn DataView, atom: &Atom, bindings: &Bindings) -> (usize, usize) {
    let bound = atom.terms.iter().filter(|t| bound_term_value(t, bindings).is_some()).count();
    // Negate boundness by subtracting from a large constant so that a smaller
    // score is better (we sort ascending).
    (usize::MAX - bound, view.relation_size(atom.relation))
}

fn candidate_tuples(
    view: &dyn DataView,
    atom: &Atom,
    bindings: &Bindings,
) -> Vec<(TupleId, TupleData)> {
    // Use the first bound column as an index probe if there is one.
    for (col, term) in atom.terms.iter().enumerate() {
        if let Some(value) = bound_term_value(term, bindings) {
            return view.candidates(atom.relation, col, value);
        }
    }
    view.scan(atom.relation)
}

#[allow(clippy::too_many_arguments)]
fn search(
    view: &dyn DataView,
    atoms: &[Atom],
    bindings: Bindings,
    remaining: &mut Vec<usize>,
    chosen: &mut Vec<Option<TupleId>>,
    limit: Option<usize>,
    results: &mut Vec<QueryMatch>,
) {
    if let Some(l) = limit {
        if results.len() >= l {
            return;
        }
    }
    if remaining.is_empty() {
        let tuples = chosen.iter().map(|t| t.expect("all atoms matched")).collect();
        results.push(QueryMatch { bindings, tuples });
        return;
    }
    // Pick the most constrained remaining atom.
    let (pos_in_remaining, &atom_idx) = remaining
        .iter()
        .enumerate()
        .min_by_key(|(_, &idx)| atom_score(view, &atoms[idx], &bindings))
        .expect("remaining not empty");
    remaining.swap_remove(pos_in_remaining);

    let atom = &atoms[atom_idx];
    for (tid, data) in candidate_tuples(view, atom, &bindings) {
        if let Some(extended) = atom.match_tuple(&data, &bindings) {
            chosen[atom_idx] = Some(tid);
            search(view, atoms, extended, remaining, chosen, limit, results);
            chosen[atom_idx] = None;
            if let Some(l) = limit {
                if results.len() >= l {
                    break;
                }
            }
        }
    }
    remaining.push(atom_idx);
}

/// Collects the distinct variables of a sequence of atoms, in order of first
/// occurrence.
pub fn variables_of(atoms: &[Atom]) -> Vec<Symbol> {
    let mut vars = Vec::new();
    for atom in atoms {
        for v in atom.variables() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    vars
}

/// Restricts bindings to the given variables.
pub fn restrict(bindings: &Bindings, vars: &[Symbol]) -> Bindings {
    bindings.iter().filter(|(k, _)| vars.contains(k)).map(|(k, v)| (*k, *v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::value::{NullId, Value as V};
    use crate::version::UpdateId;

    fn travel_db() -> Database {
        let mut db = Database::new();
        db.add_relation("A", ["location", "name"]).unwrap();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        let u = UpdateId(0);
        db.insert_by_name("A", &["Geneva", "Geneva Winery"], u);
        db.insert_by_name("A", &["Niagara Falls", "Niagara Falls"], u);
        db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], u);
        db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], u);
        db
    }

    fn var(s: &str) -> Term {
        Term::var(s)
    }

    #[test]
    fn single_atom_scan() {
        let db = travel_db();
        let a = db.relation_id("A").unwrap();
        let atom = Atom::new(a, vec![var("l"), var("n")]);
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let matches = evaluate(&snap, &[atom], &Bindings::new(), None);
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn join_across_atoms() {
        let db = travel_db();
        let a = db.relation_id("A").unwrap();
        let t = db.relation_id("T").unwrap();
        // A(l, n) ∧ T(n, c, cs): the join of attractions with their tours.
        let atoms = vec![
            Atom::new(a, vec![var("l"), var("n")]),
            Atom::new(t, vec![var("n"), var("c"), var("cs")]),
        ];
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let matches = evaluate(&snap, &atoms, &Bindings::new(), None);
        assert_eq!(matches.len(), 1);
        let m = &matches[0];
        assert_eq!(m.bindings.get(&Symbol::intern("n")), Some(&V::constant("Geneva Winery")));
        assert_eq!(m.tuples.len(), 2);
    }

    #[test]
    fn constants_restrict_matches() {
        let db = travel_db();
        let a = db.relation_id("A").unwrap();
        let atom = Atom::new(a, vec![Term::constant("Geneva"), var("n")]);
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let matches = evaluate(&snap, std::slice::from_ref(&atom), &Bindings::new(), None);
        assert_eq!(matches.len(), 1);
        let atom2 = Atom::new(a, vec![Term::constant("Nowhere"), var("n")]);
        assert!(!satisfiable(&snap, &[atom2], &Bindings::new()));
        assert!(satisfiable(&snap, &[atom], &Bindings::new()));
    }

    #[test]
    fn seed_bindings_are_respected() {
        let db = travel_db();
        let t = db.relation_id("T").unwrap();
        let atom = Atom::new(t, vec![var("n"), var("c"), var("s")]);
        let mut seed = Bindings::new();
        seed.insert(Symbol::intern("c"), V::constant("XYZ"));
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let matches = evaluate(&snap, std::slice::from_ref(&atom), &seed, None);
        assert_eq!(matches.len(), 1);
        seed.insert(Symbol::intern("c"), V::constant("ABC"));
        assert!(evaluate(&snap, &[atom], &seed, None).is_empty());
    }

    #[test]
    fn repeated_variables_force_equality() {
        let mut db = Database::new();
        let s = db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        let u = UpdateId(0);
        db.insert_by_name("S", &["SYR", "Syracuse", "Syracuse"], u);
        db.insert_by_name("S", &["SYR", "Syracuse", "Ithaca"], u);
        // S(a, c, c): the airport is located in the city it serves.
        let atom = Atom::new(s, vec![var("a"), var("c"), var("c")]);
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let matches = evaluate(&snap, &[atom], &Bindings::new(), None);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].bindings.get(&Symbol::intern("c")), Some(&V::constant("Syracuse")));
    }

    #[test]
    fn variables_bind_to_labeled_nulls() {
        let mut db = Database::new();
        let r = db.add_relation("R", ["a", "b"]).unwrap();
        let x = db.fresh_null();
        db.apply(
            &crate::version::Write::Insert {
                relation: r,
                values: vec![V::constant("k"), V::Null(x)],
            },
            UpdateId(0),
        )
        .unwrap();
        let atom = Atom::new(r, vec![var("p"), var("q")]);
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let matches = evaluate(&snap, &[atom], &Bindings::new(), None);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].bindings.get(&Symbol::intern("q")), Some(&V::Null(x)));
    }

    #[test]
    fn limit_stops_early() {
        let mut db = Database::new();
        db.add_relation("R", ["a"]).unwrap();
        for i in 0..10 {
            db.insert_by_name("R", &[&format!("v{i}")], UpdateId(0));
        }
        let r = db.relation_id("R").unwrap();
        let atom = Atom::new(r, vec![var("x")]);
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert_eq!(
            evaluate(&snap, std::slice::from_ref(&atom), &Bindings::new(), Some(3)).len(),
            3
        );
        assert_eq!(evaluate(&snap, &[atom], &Bindings::new(), None).len(), 10);
    }

    #[test]
    fn empty_query_yields_seed() {
        let db = travel_db();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let matches = evaluate(&snap, &[], &Bindings::new(), None);
        assert_eq!(matches.len(), 1);
        assert!(matches[0].tuples.is_empty());
    }

    #[test]
    fn instantiate_generates_fresh_values_for_unbound_vars() {
        let db = travel_db();
        let r = db.relation_id("R").unwrap();
        let atom = Atom::new(r, vec![var("c"), var("n"), var("review")]);
        let mut bindings = Bindings::new();
        bindings.insert(Symbol::intern("c"), V::constant("ABC"));
        bindings.insert(Symbol::intern("n"), V::constant("Niagara Falls"));
        let mut next = 100;
        let values = atom.instantiate(&bindings, |_| {
            next += 1;
            V::Null(NullId(next))
        });
        assert_eq!(values[0], V::constant("ABC"));
        assert_eq!(values[1], V::constant("Niagara Falls"));
        assert!(values[2].is_null());
    }

    #[test]
    fn variables_of_and_restrict() {
        let db = travel_db();
        let a = db.relation_id("A").unwrap();
        let t = db.relation_id("T").unwrap();
        let atoms = vec![
            Atom::new(a, vec![var("l"), var("n")]),
            Atom::new(t, vec![var("n"), var("c"), Term::constant("Syracuse")]),
        ];
        let vars = variables_of(&atoms);
        assert_eq!(vars, vec![Symbol::intern("l"), Symbol::intern("n"), Symbol::intern("c")]);
        let mut b = Bindings::new();
        b.insert(Symbol::intern("l"), V::constant("Geneva"));
        b.insert(Symbol::intern("zzz"), V::constant("unused"));
        let r = restrict(&b, &vars);
        assert_eq!(r.len(), 1);
        assert!(r.contains_key(&Symbol::intern("l")));
    }

    #[test]
    fn atom_display_with_catalog() {
        let db = travel_db();
        let a = db.relation_id("A").unwrap();
        let atom = Atom::new(a, vec![var("l"), Term::constant("Geneva Winery")]);
        let s = atom.display_with(db.catalog());
        assert_eq!(s, "A(l, 'Geneva Winery')");
    }
}
