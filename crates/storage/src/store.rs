//! The multiversion tuple store, split out of [`crate::Database`].
//!
//! [`VersionStore`] owns everything that holds tuple *data*: the per-relation
//! [`RelationStore`]s (version chains, column indexes and the per-reader
//! visible-set caches), the tuple → relation map and the labeled-null
//! occurrence index. [`crate::Database`] keeps the catalog and the id
//! allocators and delegates all data access here. The split gives the read
//! path a single owner: every mutation funnels through `VersionStore`, which
//! is what lets the visible-set caches be invalidated exactly once per write.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use crate::relation::RelationStore;
use crate::schema::RelationId;
use crate::tuple::{self, TupleData, TupleId};
use crate::value::NullId;
use crate::version::{TupleVersion, UpdateId, VersionChain};

/// Default upper bound on retained write deltas. The backlog is normally
/// truncated at engine quiescence; the cap is the unconditional backstop for
/// engines that never go quiescent. Consumers whose cursor falls behind the
/// truncation point fall back to treating every indexed relation as dirty,
/// which the per-entry epoch compare then filters exactly — truncation is
/// always safe, only (slightly) slower. Per-store override:
/// [`VersionStore::set_delta_backlog_cap`] (surfaced as
/// `EngineBuilder::delta_backlog_cap`).
pub const DELTA_BACKLOG_CAP: usize = 32 * 1024;

/// Versioned tuple storage for all relations of one database.
#[derive(Clone, Debug)]
pub struct VersionStore {
    relations: Vec<RelationStore>,
    /// Which relation each tuple id belongs to.
    tuple_locations: HashMap<TupleId, RelationId>,
    /// Tuples whose some version contains a given labeled null
    /// (stale-tolerant: lookups re-check visible data).
    null_occurrences: HashMap<NullId, BTreeSet<TupleId>>,
    /// Delta number of the oldest retained entry of `deltas`: entry `i` of the
    /// queue is delta `delta_base + i`. Monotonically increasing; advanced by
    /// truncation (and by the cap) so cursors can detect a gap.
    delta_base: u64,
    /// The committed write-delta log: one relation id per relation mutation,
    /// in commit order — the feed the shared violation index replays. Every
    /// mutation that bumps a relation's write epoch appends exactly one entry,
    /// so a cursor over this queue sees precisely the epoch moves it missed.
    deltas: VecDeque<RelationId>,
    /// This store's backlog bound (defaults to [`DELTA_BACKLOG_CAP`]).
    delta_backlog_cap: usize,
}

impl Default for VersionStore {
    fn default() -> VersionStore {
        VersionStore {
            relations: Vec::new(),
            tuple_locations: HashMap::new(),
            null_occurrences: HashMap::new(),
            delta_base: 0,
            deltas: VecDeque::new(),
            delta_backlog_cap: DELTA_BACKLOG_CAP,
        }
    }
}

impl VersionStore {
    /// Creates an empty store.
    pub fn new() -> VersionStore {
        VersionStore::default()
    }

    /// This store's delta-backlog bound.
    pub fn delta_backlog_cap(&self) -> usize {
        self.delta_backlog_cap
    }

    /// Overrides the delta-backlog bound (minimum 1). Shrinking below the
    /// current backlog takes effect on the next mutation; consumers behind the
    /// new truncation point observe a gap, exactly as under the default cap.
    pub fn set_delta_backlog_cap(&mut self, cap: usize) {
        self.delta_backlog_cap = cap.max(1);
    }

    /// Registers storage for a newly added relation.
    pub fn add_relation(&mut self, id: RelationId, arity: usize) {
        self.relations.push(RelationStore::new(id, arity));
    }

    /// The per-relation store, if the relation exists.
    pub fn relation(&self, relation: RelationId) -> Option<&RelationStore> {
        self.relations.get(relation.0 as usize)
    }

    /// Number of relations with storage.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// The write epoch of a relation: bumped on every mutation of that
    /// relation (insert, new version, rollback), `0` for unknown relations.
    /// Equal epochs guarantee identical relation contents, which lets derived
    /// state — the chase's violation queue, memoised repair plans, readers'
    /// visible-set memos — validate with an integer compare instead of
    /// re-evaluating queries.
    pub fn relation_epoch(&self, relation: RelationId) -> u64 {
        self.relation(relation).map(|s| s.epoch()).unwrap_or(0)
    }

    /// Appends one entry to the write-delta log, enforcing the backlog cap.
    fn note_delta(&mut self, relation: RelationId) {
        if self.deltas.len() >= self.delta_backlog_cap {
            let drop = self.deltas.len() - self.delta_backlog_cap + 1;
            self.deltas.drain(..drop);
            self.delta_base += drop as u64;
        }
        self.deltas.push_back(relation);
    }

    /// The global delta sequence number: the number of relation mutations
    /// committed so far. A consumer that remembers this value can later ask
    /// [`VersionStore::deltas_since`] which relations changed in between.
    pub fn delta_seq(&self) -> u64 {
        self.delta_base + self.deltas.len() as u64
    }

    /// The relation mutations committed in the window `[since, delta_seq())`,
    /// in commit order. Returns `None` when the backlog no longer reaches back
    /// to `since` (it was truncated, or `since` is from a different store
    /// history): the caller must then treat everything it watches as dirty.
    pub fn deltas_since(&self, since: u64) -> Option<impl Iterator<Item = RelationId> + '_> {
        if since < self.delta_base || since > self.delta_seq() {
            return None;
        }
        let skip = (since - self.delta_base) as usize;
        Some(self.deltas.iter().skip(skip).copied())
    }

    /// The subset of `interest` (in `interest` order) mutated in the window
    /// `[since, delta_seq())`, or `None` when the backlog was truncated past
    /// `since` (see [`VersionStore::deltas_since`]).
    pub fn dirty_in_window(&self, since: u64, interest: &[RelationId]) -> Option<Vec<RelationId>> {
        let window: HashSet<RelationId> = self.deltas_since(since)?.collect();
        Some(interest.iter().copied().filter(|r| window.contains(r)).collect())
    }

    /// Drops the whole delta backlog, advancing the base watermark so stale
    /// cursors observe a gap (and fall back to full revalidation) instead of
    /// silently missing deltas. Called at engine quiescence, where no live
    /// cursor exists.
    pub fn truncate_delta_backlog(&mut self) {
        self.delta_base += self.deltas.len() as u64;
        self.deltas.clear();
    }

    /// Number of retained delta entries (diagnostics and memory-bound tests).
    pub fn delta_backlog_len(&self) -> usize {
        self.deltas.len()
    }

    /// Registers a brand-new logical tuple.
    pub(crate) fn insert_new(
        &mut self,
        relation: RelationId,
        tuple: TupleId,
        version: TupleVersion,
    ) {
        if let Some(data) = &version.data {
            self.register_nulls(tuple, data);
        }
        self.relations[relation.0 as usize].insert_new(tuple, version);
        self.tuple_locations.insert(tuple, relation);
        self.note_delta(relation);
    }

    /// Appends a version to an existing tuple, keeping the null index fresh.
    pub(crate) fn push_version(
        &mut self,
        relation: RelationId,
        tuple: TupleId,
        version: TupleVersion,
    ) -> bool {
        if let Some(data) = &version.data {
            self.register_nulls(tuple, data);
        }
        let pushed = self.relations[relation.0 as usize].push_version(tuple, version);
        if pushed {
            self.note_delta(relation);
        }
        pushed
    }

    /// Records which tuples mention which labeled nulls.
    pub(crate) fn register_nulls(&mut self, tuple: TupleId, data: &TupleData) {
        for null in tuple::nulls_of(data) {
            self.null_occurrences.entry(null).or_default().insert(tuple);
        }
    }

    /// Data of a tuple as visible to `reader`.
    pub fn visible(
        &self,
        relation: RelationId,
        tuple: TupleId,
        reader: UpdateId,
    ) -> Option<TupleData> {
        self.relation(relation).and_then(|s| s.visible(tuple, reader))
    }

    /// The relation a tuple id belongs to (regardless of visibility).
    pub fn tuple_relation(&self, tuple: TupleId) -> Option<RelationId> {
        self.tuple_locations.get(&tuple).copied()
    }

    /// All tuples of `relation` visible to `reader`.
    pub fn scan(&self, relation: RelationId, reader: UpdateId) -> Vec<(TupleId, TupleData)> {
        self.relation(relation).map(|s| s.scan(reader)).unwrap_or_default()
    }

    /// Tuples of `relation` visible to `reader` with `value` at `column`.
    pub fn candidates(
        &self,
        relation: RelationId,
        column: usize,
        value: crate::value::Value,
        reader: UpdateId,
    ) -> Vec<(TupleId, TupleData)> {
        self.relation(relation).map(|s| s.candidates(column, value, reader)).unwrap_or_default()
    }

    /// Number of tuples of `relation` visible to `reader`.
    pub fn visible_count(&self, relation: RelationId, reader: UpdateId) -> usize {
        self.relation(relation).map(|s| s.visible_count(reader)).unwrap_or(0)
    }

    /// Total number of visible tuples across all relations.
    pub fn total_visible(&self, reader: UpdateId) -> usize {
        self.relations.iter().map(|s| s.visible_count(reader)).sum()
    }

    /// The full version chain of a tuple (diagnostics and tests).
    pub fn version_chain(&self, relation: RelationId, tuple: TupleId) -> Option<&VersionChain> {
        self.relation(relation).and_then(|s| s.chain(tuple))
    }

    /// Tuples visible to `reader` that contain the labeled null `null`,
    /// across all relations.
    pub fn null_occurrences(
        &self,
        null: NullId,
        reader: UpdateId,
    ) -> Vec<(RelationId, TupleId, TupleData)> {
        let Some(set) = self.null_occurrences.get(&null) else { return Vec::new() };
        let mut out = Vec::new();
        for &tuple in set {
            let Some(&relation) = self.tuple_locations.get(&tuple) else { continue };
            if let Some(data) = self.visible(relation, tuple, reader) {
                if tuple::contains_null(&data, null) {
                    out.push((relation, tuple, data));
                }
            }
        }
        out
    }

    /// Tuple ids whose some version mentions `null` (unfiltered; callers
    /// re-check visibility).
    pub(crate) fn tuples_mentioning(&self, null: NullId) -> Vec<TupleId> {
        self.null_occurrences.get(&null).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    /// Removes every version written by `update`; returns the ids of logical
    /// tuples that disappeared entirely.
    pub fn rollback_update(&mut self, update: UpdateId) -> Vec<TupleId> {
        let mut vanished = Vec::new();
        for idx in 0..self.relations.len() {
            let store = &mut self.relations[idx];
            let before = store.epoch();
            let removed = store.remove_versions_of(update);
            let touched = store.epoch() != before;
            let relation = store.id();
            for id in removed {
                self.tuple_locations.remove(&id);
                vanished.push(id);
            }
            if touched {
                self.note_delta(relation);
            }
        }
        vanished
    }
}
