//! Write and read logs kept by the optimistic scheduler (Algorithm 4).
//!
//! Both logs are keyed by relation: the write log keeps a relation →
//! (entry, change) index so dependency trackers only examine writes that
//! touch the relations a read query reads, and the read log keeps a relation
//! → readers index so conflict detection only consults readers whose stored
//! queries touch a changed relation — instead of every higher-numbered reader
//! × every change. Queries whose relation set is unknown up front
//! ([`ReadQuery::NullOccurrences`] — a null may occur anywhere) are filed as
//! *wildcards* and consulted for every change.

use std::collections::{BTreeSet, HashMap, HashSet};

use youtopia_core::ReadQuery;
use youtopia_mappings::MappingSet;
use youtopia_storage::{AppliedWrite, RelationId, TupleChange, UpdateId};

/// The log of all writes performed so far, used to compute read dependencies
/// (`COARSE` scans it at relation granularity, `PRECISE` re-checks each entry
/// exactly) and to answer "which updates wrote to relation R".
#[derive(Clone, Debug, Default)]
pub struct WriteLog {
    entries: Vec<AppliedWrite>,
    /// relation → (entry index, change index) pairs of changes touching it,
    /// in log order.
    by_relation: HashMap<RelationId, Vec<(u32, u32)>>,
}

impl WriteLog {
    /// Creates an empty log.
    pub fn new() -> WriteLog {
        WriteLog::default()
    }

    /// Appends the writes of a chase step.
    pub fn push_all(&mut self, writes: &[AppliedWrite]) {
        for w in writes {
            let entry = self.entries.len() as u32;
            for (c, change) in w.changes.iter().enumerate() {
                self.by_relation.entry(change.relation()).or_default().push((entry, c as u32));
            }
            self.entries.push(w.clone());
        }
    }

    /// All logged writes.
    pub fn entries(&self) -> &[AppliedWrite] {
        &self.entries
    }

    /// Writes performed by updates with a number strictly below `reader`
    /// (the only writes that can create read dependencies for `reader`).
    pub fn entries_before(&self, reader: UpdateId) -> impl Iterator<Item = &AppliedWrite> {
        self.entries.iter().filter(move |w| w.update < reader)
    }

    /// Tuple-level changes performed by updates below `reader`.
    pub fn changes_before(
        &self,
        reader: UpdateId,
    ) -> impl Iterator<Item = (&AppliedWrite, &TupleChange)> {
        self.entries_before(reader).flat_map(|w| w.changes.iter().map(move |c| (w, c)))
    }

    /// Tuple-level changes performed by updates below `reader` that touch one
    /// of `relations`, in log order. An empty relation list means "could read
    /// anything" (the wildcard correction queries) and returns every change.
    /// This is the per-relation fast path the dependency trackers use: a read
    /// query's dependencies can only come from writes to relations it reads.
    pub fn changes_before_touching(
        &self,
        reader: UpdateId,
        relations: &[RelationId],
    ) -> Vec<(&AppliedWrite, &TupleChange)> {
        if relations.is_empty() {
            return self.changes_before(reader).collect();
        }
        // A change touches exactly one relation and `relations` has no
        // duplicates, so the merged index pairs are distinct; sorting restores
        // log order across relations. The reader filter is applied while
        // collecting so the sort only sees the (usually small) relevant
        // prefix, not the whole per-relation history.
        let mut refs: Vec<(u32, u32)> = Vec::new();
        for relation in relations {
            if let Some(pairs) = self.by_relation.get(relation) {
                refs.extend(
                    pairs
                        .iter()
                        .copied()
                        .filter(|&(e, _)| self.entries[e as usize].update < reader),
                );
            }
        }
        refs.sort_unstable();
        refs.into_iter()
            .map(|(e, c)| {
                let entry = &self.entries[e as usize];
                (entry, &entry.changes[c as usize])
            })
            .collect()
    }

    /// Drops every write logged for `update` (called when the update aborts —
    /// its writes have been rolled back and no longer create dependencies).
    pub fn remove_update(&mut self, update: UpdateId) {
        self.entries.retain(|w| w.update != update);
        // Entry indices shifted: rebuild the relation index.
        self.by_relation.clear();
        for (entry, w) in self.entries.iter().enumerate() {
            for (c, change) in w.changes.iter().enumerate() {
                self.by_relation
                    .entry(change.relation())
                    .or_default()
                    .push((entry as u32, c as u32));
            }
        }
    }

    /// Number of logged writes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Read access to the logged tuple changes of lower-numbered updates.
///
/// Dependency trackers only ever ask one question of the write log: "which
/// changes, performed by updates numbered below this reader and touching one
/// of these relations, exist — in log order?". Abstracting that question lets
/// the trackers work over both the single-threaded [`WriteLog`] and the
/// lock-striped parallel write log (whose entries live behind per-relation
/// stripe locks and cannot be borrowed out).
pub trait ChangeSource {
    /// Invokes `f` with `(writer, change)` for every logged change of an
    /// update numbered strictly below `reader` that touches one of
    /// `relations`, in log order. An empty relation list is the wildcard: all
    /// changes qualify.
    fn for_each_change_before(
        &self,
        reader: UpdateId,
        relations: &[RelationId],
        f: &mut dyn FnMut(UpdateId, &TupleChange),
    );
}

impl ChangeSource for WriteLog {
    fn for_each_change_before(
        &self,
        reader: UpdateId,
        relations: &[RelationId],
        f: &mut dyn FnMut(UpdateId, &TupleChange),
    ) {
        for (w, change) in self.changes_before_touching(reader, relations) {
            f(w.update, change);
        }
    }
}

/// One stored read query together with its precomputed relation footprint.
#[derive(Clone, Debug)]
struct StoredRead {
    query: ReadQuery,
    /// Relations the query reads; empty means "unknown / any relation"
    /// (wildcard).
    relations: Vec<RelationId>,
}

/// The stored read queries of every update (Algorithm 4: "store Q for future
/// checks"), indexed by the relations each query reads.
///
/// Stored reads are *retained*: once recorded they stay live — and keep
/// participating in conflict checks — until the update aborts
/// ([`ReadLog::clear`]) or the run ends. This is what lets the chase memoise
/// a violation's repair plan across steps: the plan's correction queries were
/// logged when the plan was computed, and a later write that retroactively
/// changes one of their answers still aborts the owner even though the plan
/// is never re-executed. Exact duplicates are stored once (the reference
/// full-recheck chase re-poses identical correction queries every step;
/// collapsing them keeps the log small without changing any conflict
/// decision, which is per-query set membership).
#[derive(Clone, Debug, Default)]
pub struct ReadLog {
    by_update: HashMap<UpdateId, Vec<StoredRead>>,
    /// update → the distinct queries already stored for it (duplicate filter).
    seen_by_update: HashMap<UpdateId, HashSet<ReadQuery>>,
    /// relation → updates with at least one stored query reading it.
    readers_by_relation: HashMap<RelationId, BTreeSet<UpdateId>>,
    /// Updates with at least one wildcard query (consulted for every change).
    wildcard_readers: BTreeSet<UpdateId>,
}

impl ReadLog {
    /// Creates an empty log.
    pub fn new() -> ReadLog {
        ReadLog::default()
    }

    /// Logs the read queries an update performed in one step, skipping exact
    /// duplicates of queries already stored for the update. The mapping set
    /// is needed to resolve each query's relation footprint once, at record
    /// time, so later conflict checks are index lookups.
    pub fn record(
        &mut self,
        update: UpdateId,
        reads: impl IntoIterator<Item = ReadQuery>,
        mappings: &MappingSet,
    ) {
        let entry = self.by_update.entry(update).or_default();
        let seen = self.seen_by_update.entry(update).or_default();
        for query in reads {
            if !seen.insert(query.clone()) {
                continue;
            }
            let relations = query.relations_read(mappings);
            if relations.is_empty() {
                self.wildcard_readers.insert(update);
            } else {
                for &relation in &relations {
                    self.readers_by_relation.entry(relation).or_default().insert(update);
                }
            }
            entry.push(StoredRead { query, relations });
        }
    }

    /// The stored read queries of one update.
    pub fn reads_of(&self, update: UpdateId) -> impl Iterator<Item = &ReadQuery> {
        self.by_update.get(&update).into_iter().flatten().map(|r| &r.query)
    }

    /// The stored read queries of `update` that could be affected by a write
    /// to `relation`: queries whose footprint contains the relation, plus the
    /// wildcard queries.
    pub fn reads_touching(
        &self,
        update: UpdateId,
        relation: RelationId,
    ) -> impl Iterator<Item = &ReadQuery> {
        self.by_update
            .get(&update)
            .into_iter()
            .flatten()
            .filter(move |r| r.relations.is_empty() || r.relations.contains(&relation))
            .map(|r| &r.query)
    }

    /// Updates (other than the writer) with stored reads and a number strictly
    /// greater than `writer` — the candidates for a direct conflict, in
    /// ascending order.
    pub fn readers_above(&self, writer: UpdateId) -> Vec<UpdateId> {
        let mut ids: Vec<UpdateId> = self
            .by_update
            .iter()
            .filter(|(id, reads)| **id > writer && !reads.is_empty())
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        ids
    }

    /// Updates above `writer` with at least one stored query that a write to
    /// `relation` could affect (queries reading the relation, plus wildcard
    /// readers), in ascending order. This is the keyed fast path of the
    /// Algorithm 4 conflict check: readers whose queries cannot touch the
    /// changed relation are never consulted.
    pub fn readers_above_touching(&self, writer: UpdateId, relation: RelationId) -> Vec<UpdateId> {
        let mut ids: Vec<UpdateId> =
            self.wildcard_readers.iter().copied().filter(|u| *u > writer).collect();
        if let Some(readers) = self.readers_by_relation.get(&relation) {
            for &u in readers {
                if u > writer && !ids.contains(&u) {
                    ids.push(u);
                }
            }
        }
        ids.sort();
        ids
    }

    /// Clears the stored reads of an update (called when it aborts and
    /// restarts from scratch). This is the only way retained reads die: a
    /// memoised repair plan's queries must outlive the plan's computation
    /// step, so per-step expiry would lose conflicts.
    pub fn clear(&mut self, update: UpdateId) {
        self.by_update.remove(&update);
        self.seen_by_update.remove(&update);
        self.wildcard_readers.remove(&update);
        for readers in self.readers_by_relation.values_mut() {
            readers.remove(&update);
        }
    }

    /// Total number of stored read queries.
    pub fn len(&self) -> usize {
        self.by_update.values().map(Vec::len).sum()
    }

    /// Whether no reads are stored at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::{NullId, RelationId, Value, Write};

    fn applied(update: u64, seq: u64) -> AppliedWrite {
        applied_to(update, seq, RelationId(0))
    }

    fn applied_to(update: u64, seq: u64, relation: RelationId) -> AppliedWrite {
        AppliedWrite {
            update: UpdateId(update),
            seq,
            write: Write::Insert { relation, values: vec![Value::constant("v")] },
            changes: vec![TupleChange::Inserted {
                relation,
                tuple: youtopia_storage::TupleId(seq),
                values: vec![Value::constant("v")].into(),
            }],
        }
    }

    #[test]
    fn write_log_filters_by_reader() {
        let mut log = WriteLog::new();
        log.push_all(&[applied(1, 1), applied(3, 2), applied(5, 3)]);
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        assert_eq!(log.entries_before(UpdateId(4)).count(), 2);
        assert_eq!(log.changes_before(UpdateId(4)).count(), 2);
        assert_eq!(log.entries_before(UpdateId(1)).count(), 0);
        log.remove_update(UpdateId(3));
        assert_eq!(log.len(), 2);
        assert_eq!(log.entries().len(), 2);
    }

    #[test]
    fn write_log_relation_index_filters_changes() {
        let r0 = RelationId(0);
        let r1 = RelationId(1);
        let r2 = RelationId(2);
        let mut log = WriteLog::new();
        log.push_all(&[applied_to(1, 1, r0), applied_to(2, 2, r1), applied_to(3, 3, r0)]);

        // Keyed lookups agree with filtering the full log.
        let touching_r0 = log.changes_before_touching(UpdateId(9), &[r0]);
        assert_eq!(touching_r0.len(), 2);
        assert!(touching_r0.iter().all(|(_, c)| c.relation() == r0));
        // Log order is preserved across the index.
        assert_eq!(touching_r0[0].0.seq, 1);
        assert_eq!(touching_r0[1].0.seq, 3);
        assert_eq!(log.changes_before_touching(UpdateId(3), &[r0]).len(), 1);
        assert!(log.changes_before_touching(UpdateId(9), &[r2]).is_empty());
        // Several relations merge in log order.
        let merged = log.changes_before_touching(UpdateId(9), &[r1, r0]);
        assert_eq!(merged.iter().map(|(w, _)| w.seq).collect::<Vec<_>>(), vec![1, 2, 3]);
        // The empty relation list is the wildcard: every change qualifies.
        assert_eq!(log.changes_before_touching(UpdateId(9), &[]).len(), 3);
        // The index survives removals.
        log.remove_update(UpdateId(1));
        assert_eq!(log.changes_before_touching(UpdateId(9), &[r0]).len(), 1);
        assert_eq!(log.changes_before_touching(UpdateId(9), &[r1]).len(), 1);
    }

    #[test]
    fn read_log_tracks_readers() {
        let mappings = MappingSet::new();
        let mut log = ReadLog::new();
        assert!(log.is_empty());
        log.record(UpdateId(2), vec![ReadQuery::NullOccurrences { null: NullId(1) }], &mappings);
        log.record(UpdateId(5), vec![ReadQuery::NullOccurrences { null: NullId(2) }], &mappings);
        log.record(UpdateId(5), vec![ReadQuery::NullOccurrences { null: NullId(3) }], &mappings);
        assert_eq!(log.len(), 3);
        assert_eq!(log.reads_of(UpdateId(5)).count(), 2);
        assert_eq!(log.reads_of(UpdateId(9)).count(), 0);
        assert_eq!(log.readers_above(UpdateId(1)), vec![UpdateId(2), UpdateId(5)]);
        assert_eq!(log.readers_above(UpdateId(2)), vec![UpdateId(5)]);
        log.clear(UpdateId(5));
        assert_eq!(log.readers_above(UpdateId(1)), vec![UpdateId(2)]);
    }

    #[test]
    fn read_log_stores_duplicate_queries_once() {
        let mappings = MappingSet::new();
        let mut log = ReadLog::new();
        let q = ReadQuery::MoreSpecific {
            relation: RelationId(0),
            pattern: vec![Value::constant("a")].into(),
        };
        // The reference full-recheck chase re-poses the same correction query
        // every step; the log keeps one copy but the read stays live.
        log.record(UpdateId(4), vec![q.clone()], &mappings);
        log.record(UpdateId(4), vec![q.clone(), q.clone()], &mappings);
        assert_eq!(log.len(), 1);
        assert_eq!(log.reads_of(UpdateId(4)).count(), 1);
        assert_eq!(log.readers_above_touching(UpdateId(0), RelationId(0)), vec![UpdateId(4)]);
        // A different query for the same update still records.
        log.record(UpdateId(4), vec![ReadQuery::NullOccurrences { null: NullId(1) }], &mappings);
        assert_eq!(log.len(), 2);
        // After a clear the same query records afresh.
        log.clear(UpdateId(4));
        assert!(log.is_empty());
        log.record(UpdateId(4), vec![q], &mappings);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn read_log_relation_index_routes_readers() {
        let mappings = MappingSet::new();
        let r0 = RelationId(0);
        let r1 = RelationId(1);
        let mut log = ReadLog::new();
        // Update 3 reads relation 0 (exact footprint), update 4 is a wildcard
        // reader, update 5 reads relation 1.
        log.record(
            UpdateId(3),
            vec![ReadQuery::MoreSpecific {
                relation: r0,
                pattern: vec![Value::constant("a")].into(),
            }],
            &mappings,
        );
        log.record(UpdateId(4), vec![ReadQuery::NullOccurrences { null: NullId(7) }], &mappings);
        log.record(
            UpdateId(5),
            vec![ReadQuery::MoreSpecific {
                relation: r1,
                pattern: vec![Value::constant("b")].into(),
            }],
            &mappings,
        );

        // A write to r0 consults the r0 reader and the wildcard reader only.
        assert_eq!(log.readers_above_touching(UpdateId(0), r0), vec![UpdateId(3), UpdateId(4)]);
        assert_eq!(log.readers_above_touching(UpdateId(0), r1), vec![UpdateId(4), UpdateId(5)]);
        // The writer filter still applies.
        assert_eq!(log.readers_above_touching(UpdateId(4), r0), vec![]);
        // Per-reader query filtering matches the footprints.
        assert_eq!(log.reads_touching(UpdateId(3), r0).count(), 1);
        assert_eq!(log.reads_touching(UpdateId(3), r1).count(), 0);
        assert_eq!(log.reads_touching(UpdateId(4), r1).count(), 1, "wildcards always qualify");
        // Clearing removes the update from every index.
        log.clear(UpdateId(4));
        assert_eq!(log.readers_above_touching(UpdateId(0), r1), vec![UpdateId(5)]);
    }
}
