//! The Section 6 experiment driver: sweep mapping density, run each workload
//! under each tracker, average over repeated runs.

use std::time::Instant;

use youtopia_concurrency::{
    AveragedMetrics, ConcurrentRun, RunMetrics, SchedulerConfig, TrackerKind,
};
use youtopia_core::{ChaseError, RandomResolver};
use youtopia_mappings::{satisfies_all, MappingSet};
use youtopia_storage::{Database, UpdateId};

use crate::config::{ExperimentConfig, WorkloadKind};
use crate::data_gen::{generate_initial_database, InitialDataStats};
use crate::mapping_gen::generate_mappings;
use crate::schema_gen::{generate_schema, GeneratedSchema};
use crate::update_gen::generate_workload;

/// One data point of a figure: a (mapping count, tracker) pair with averaged
/// metrics over `runs` repetitions.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentPoint {
    /// Number of mappings active in this setting (the x axis).
    pub mappings: usize,
    /// The cascading-abort tracker used.
    pub tracker: TrackerKind,
    /// Number of runs averaged.
    pub runs: usize,
    /// Averaged metrics.
    pub avg: AveragedMetrics,
}

/// The complete result of one figure's experiment (one workload, all trackers,
/// all mapping densities).
#[derive(Clone, Debug)]
pub struct ExperimentResults {
    /// Which workload was used.
    pub workload: WorkloadKind,
    /// The configuration the experiment ran with.
    pub config: ExperimentConfig,
    /// Statistics about the shared initial database.
    pub initial_data: InitialDataStats,
    /// All data points, ordered by (mapping count, tracker).
    pub points: Vec<ExperimentPoint>,
    /// Total wall-clock seconds spent running the experiment.
    pub total_seconds: f64,
}

impl ExperimentResults {
    /// The data point for a given mapping count and tracker.
    pub fn point(&self, mappings: usize, tracker: TrackerKind) -> Option<&ExperimentPoint> {
        self.points.iter().find(|p| p.mappings == mappings && p.tracker == tracker)
    }

    /// The slowdown of `PRECISE` relative to `COARSE` at a given mapping
    /// count: the ratio of per-update execution times (third panel of
    /// Figures 3 and 4).
    pub fn precise_slowdown(&self, mappings: usize) -> Option<f64> {
        let precise = self.point(mappings, TrackerKind::Precise)?;
        let coarse = self.point(mappings, TrackerKind::Coarse)?;
        if coarse.avg.per_update_time_secs == 0.0 {
            return None;
        }
        Some(precise.avg.per_update_time_secs / coarse.avg.per_update_time_secs)
    }

    /// The series of (mapping count, average aborts) for one tracker (first
    /// panel of Figures 3 and 4).
    pub fn abort_series(&self, tracker: TrackerKind) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .filter(|p| p.tracker == tracker)
            .map(|p| (p.mappings, p.avg.aborts))
            .collect()
    }

    /// The series of (mapping count, average cascading abort requests) for one
    /// tracker (second panel of Figures 3 and 4).
    pub fn cascading_series(&self, tracker: TrackerKind) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .filter(|p| p.tracker == tracker)
            .map(|p| (p.mappings, p.avg.cascading_abort_requests))
            .collect()
    }
}

/// The shared experiment fixture: schema, full mapping set and the initial
/// database (which satisfies *all* mappings, as in the paper).
pub struct ExperimentFixture {
    /// The generated schema and constant pool.
    pub schema: GeneratedSchema,
    /// The full mapping set (experiments use prefixes of it).
    pub mappings: MappingSet,
    /// The populated initial database.
    pub initial_db: Database,
    /// Statistics of the population phase.
    pub initial_data: InitialDataStats,
}

/// Builds the experiment fixture for a configuration.
pub fn build_fixture(config: &ExperimentConfig) -> Result<ExperimentFixture, ChaseError> {
    config.validate().map_err(ChaseError::InvalidDecision)?;
    let schema = generate_schema(config);
    let mappings = generate_mappings(config, &schema);
    let (initial_db, initial_data) = generate_initial_database(config, &schema, &mappings)?;
    Ok(ExperimentFixture { schema, mappings, initial_db, initial_data })
}

/// Runs one concurrent execution of one workload variant under one tracker and
/// mapping prefix, returning its metrics. Exposed for benchmarks.
pub fn run_single(
    fixture: &ExperimentFixture,
    config: &ExperimentConfig,
    kind: WorkloadKind,
    mapping_count: usize,
    tracker: TrackerKind,
    variant: u64,
) -> Result<RunMetrics, ChaseError> {
    let mappings = fixture.mappings.prefix(mapping_count);
    let ops = generate_workload(config, &fixture.schema, &fixture.initial_db, kind, variant);
    let scheduler = SchedulerConfig {
        tracker,
        frontier_delay_rounds: config.frontier_delay_rounds,
        ..SchedulerConfig::default()
    };
    // Workload updates get priority numbers above every update that built the
    // initial database.
    let first_number = config.initial_tuples as u64 + 1_000;
    let mut run =
        ConcurrentRun::new(fixture.initial_db.clone(), mappings, ops, first_number, scheduler);
    let mut resolver = RandomResolver::seeded(config.seed ^ (variant.wrapping_mul(0x9E37_79B9)));
    let metrics = run.run(&mut resolver)?;
    debug_assert!({
        let (db, mappings, _) = run.into_parts();
        satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), &mappings)
    });
    Ok(metrics)
}

/// Runs the full experiment for one workload: every mapping density, every
/// requested tracker, `config.runs` repetitions each. `progress` (if given) is
/// called after every completed (density, tracker) cell.
pub fn run_experiment(
    config: &ExperimentConfig,
    kind: WorkloadKind,
    trackers: &[TrackerKind],
    mut progress: Option<&mut dyn FnMut(&ExperimentPoint)>,
) -> Result<ExperimentResults, ChaseError> {
    let started = Instant::now();
    let fixture = build_fixture(config)?;
    let mut points = Vec::new();
    for &mapping_count in &config.mapping_counts {
        for &tracker in trackers {
            let mut total = RunMetrics::default();
            for run_index in 0..config.runs {
                let metrics =
                    run_single(&fixture, config, kind, mapping_count, tracker, run_index as u64)?;
                total.accumulate(&metrics);
            }
            let point = ExperimentPoint {
                mappings: mapping_count,
                tracker,
                runs: config.runs,
                avg: total.averaged(config.runs),
            };
            if let Some(cb) = progress.as_deref_mut() {
                cb(&point);
            }
            points.push(point);
        }
    }
    Ok(ExperimentResults {
        workload: kind,
        config: config.clone(),
        initial_data: fixture.initial_data,
        points,
        total_seconds: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_experiment_produces_a_full_grid_of_points() {
        let config = ExperimentConfig::tiny();
        let trackers = [TrackerKind::Coarse, TrackerKind::Precise];
        let mut seen = 0usize;
        let mut progress = |_: &ExperimentPoint| seen += 1;
        let results =
            run_experiment(&config, WorkloadKind::AllInserts, &trackers, Some(&mut progress))
                .unwrap();
        assert_eq!(results.points.len(), config.mapping_counts.len() * trackers.len());
        assert_eq!(seen, results.points.len());
        for &m in &config.mapping_counts {
            for &t in &trackers {
                let p = results.point(m, t).unwrap();
                assert_eq!(p.runs, config.runs);
                assert!(p.avg.steps > 0.0);
            }
            assert!(results.precise_slowdown(m).is_some());
        }
        assert_eq!(results.abort_series(TrackerKind::Coarse).len(), config.mapping_counts.len());
        assert_eq!(
            results.cascading_series(TrackerKind::Precise).len(),
            config.mapping_counts.len()
        );
        assert!(results.total_seconds > 0.0);
        assert_eq!(results.workload, WorkloadKind::AllInserts);
    }

    #[test]
    fn mixed_workload_runs_and_leaves_consistent_databases() {
        let mut config = ExperimentConfig::tiny();
        config.runs = 1;
        config.mapping_counts = vec![config.total_mappings];
        let results =
            run_experiment(&config, WorkloadKind::Mixed, &[TrackerKind::Coarse], None).unwrap();
        assert_eq!(results.points.len(), 1);
        let p = &results.points[0];
        assert!(p.avg.frontier_ops >= 0.0);
        assert!(p.avg.changes > 0.0);
    }

    #[test]
    fn single_runs_are_reproducible() {
        let config = ExperimentConfig::tiny();
        let fixture = build_fixture(&config).unwrap();
        let a = run_single(&fixture, &config, WorkloadKind::AllInserts, 4, TrackerKind::Precise, 0)
            .unwrap();
        let b = run_single(&fixture, &config, WorkloadKind::AllInserts, 4, TrackerKind::Precise, 0)
            .unwrap();
        assert_eq!(a.aborts, b.aborts);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.cascading_abort_requests, b.cascading_abort_requests);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut config = ExperimentConfig::tiny();
        config.runs = 0;
        assert!(run_experiment(&config, WorkloadKind::AllInserts, &[TrackerKind::Coarse], None)
            .is_err());
    }
}
