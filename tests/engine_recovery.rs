//! Crash-recovery and retention tests for the **durable** [`ExchangeEngine`].
//!
//! * **Prefix byte-equality** — for a durable reference run whose write-ahead
//!   log is the full interaction trace, cutting the log at *every* record
//!   boundary, recovering, and re-feeding the remaining records through the
//!   public API must reproduce the reference byte-exactly: the same database
//!   rendering, the same [`RunMetrics`] (modulo wall clock), the same
//!   per-update statistics and abort set — and the same WAL bytes, which pins
//!   the replayed action stamps themselves.
//! * **Torn tails** — truncating the log at every byte offset *inside* its
//!   final record drops exactly that record (never more, never garbage), and
//!   recovery plus a re-feed of the dropped record is again byte-identical.
//! * **Snapshots** — the same equality holds when periodic snapshots have
//!   folded most of the log away, so recovery starts from snapshot state.
//! * **Retention** — with a finite [`EngineConfig::retention_horizon`] the
//!   slot table stays O(horizon) across tens of thousands of
//!   submit/terminate cycles; evicted ids report
//!   [`LookupError::SlotEvicted`] (not a panic or a hang) while live handles
//!   keep answering from their pinned cells.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use youtopia::chase::{ChaseMode, UpdateStats};
use youtopia::concurrency::SchedulingPolicy;
use youtopia::concurrency::{decode_record, WalRecord};
use youtopia::mappings::satisfies_all;
use youtopia::storage::wal::{read_wal, WalWriter};
use youtopia::workload::{build_fixture, generate_workload, ExperimentConfig, WorkloadKind};
use youtopia::{
    AnswerOutcome, AutoDecision, Database, DurabilityConfig, EngineConfig, EscalationPolicy,
    ExchangeEngine, FrontierResolver, FrontierToken, InitialOp, LookupError, MappingSet,
    RandomResolver, RecoveryError, ResolutionOrigin, ResolverPump, RunMetrics, SchedulerConfig,
    TrackerKind, UpdateId, UpdateStatus, Value,
};

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// A self-deleting scratch directory (no tempfile dependency).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("youtopia-recovery-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Strips the wall-clock field — and the speculation counters, which measure
/// *pre*-execution attempts and so vary with worker timing (and reset to zero
/// across a recovery) — so metrics compare byte-exactly. Re-asks are likewise
/// advisory (never logged) and restart at zero after a crash, so they are
/// scrubbed too; `auto_resolutions` is deliberately **not** scrubbed — system
/// answers are WAL records, so the recovered count must match the original.
fn scrub(mut m: RunMetrics) -> RunMetrics {
    m.wall_time = Duration::ZERO;
    m.speculations_started = 0;
    m.speculations_committed = 0;
    m.speculations_discarded = 0;
    m.re_asks = 0;
    m
}

/// Byte-exact rendering of every relation's visible contents plus the null
/// counter — the "final database state" equality is pinned on.
fn render(db: &Database) -> String {
    let mut out = String::new();
    for relation in db.catalog().relation_ids() {
        out.push_str(&format!("{relation:?}: {:?}\n", db.scan(relation, UpdateId::OMNISCIENT)));
    }
    out.push_str(&format!("nulls: {}\n", db.null_counter()));
    out
}

/// Everything observable about one finished durable run, plus its on-disk
/// durable artifacts.
struct ReferenceRun {
    render: String,
    metrics: RunMetrics,
    stats: Vec<(UpdateId, UpdateStats)>,
    aborts: BTreeSet<UpdateId>,
    /// Decoded payloads of the final `wal.log` (element 0 is the header).
    records: Vec<Vec<u8>>,
    /// Raw bytes of the final `wal.log`.
    wal_bytes: Vec<u8>,
    mappings: MappingSet,
    config: EngineConfig,
    snapshot_every: u64,
    group_commit: usize,
}

fn abort_set(stats: &[(UpdateId, UpdateStats)]) -> BTreeSet<UpdateId> {
    stats.iter().filter(|(_, s)| s.restarts > 0).map(|(id, _)| *id).collect()
}

/// Runs a generated workload through a durable deterministic engine in
/// `dir`, submitting in small waves with a resolver pump in between so the
/// log interleaves `Submit` and `Answer` records, and returns the reference
/// observables plus the surviving durable artifacts.
fn reference_run(seed: u64, dir: &Path, snapshot_every: u64, group_commit: usize) -> ReferenceRun {
    let mut experiment = ExperimentConfig::tiny();
    experiment.seed = seed;
    let fixture = build_fixture(&experiment).expect("fixture builds");
    let ops: Vec<InitialOp> = generate_workload(
        &experiment,
        &fixture.schema,
        &fixture.initial_db,
        &fixture.mappings,
        WorkloadKind::Mixed,
        seed,
    )
    .into_iter()
    .take(10)
    .collect();
    let first_number = experiment.initial_tuples as u64 + 1_000;
    let config = EngineConfig::default()
        .with_scheduler(
            SchedulerConfig::with_tracker(TrackerKind::Precise)
                .with_policy(SchedulingPolicy::StepRoundRobin)
                .with_chase_mode(ChaseMode::Incremental)
                .with_frontier_delay_rounds(3)
                .with_workers(2),
        )
        .with_first_update_number(first_number);
    let durability = DurabilityConfig::new(dir)
        .with_snapshot_every(snapshot_every)
        .with_group_commit(group_commit);
    let engine = ExchangeEngine::new_durable(
        fixture.initial_db.clone(),
        fixture.mappings.clone(),
        config,
        durability,
    )
    .expect("durable engine starts");

    let mut resolver = RandomResolver::seeded(seed ^ 0xE61E);
    for wave in ops.chunks(3) {
        engine.submit_batch(wave.to_vec()).expect("uncapped submission");
        ResolverPump::new(&engine, &mut resolver).run_until_quiescent().unwrap();
    }
    assert!(engine.is_quiescent(), "reference run must end quiescent");
    let stats = engine.update_stats();
    let aborts = abort_set(&stats);
    let (db, mappings, metrics) = engine.shutdown();
    assert!(satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), &mappings));

    let wal_bytes = std::fs::read(dir.join("wal.log")).expect("wal survives shutdown");
    let records = read_wal(&dir.join("wal.log")).expect("wal parses").records;
    assert!(!records.is_empty(), "log always holds at least its header");
    ReferenceRun {
        render: render(&db),
        metrics: scrub(metrics),
        stats,
        aborts,
        records,
        wal_bytes,
        mappings,
        config,
        snapshot_every,
        group_commit,
    }
}

/// A record payload with its action stamp zeroed. Stamps record the exact
/// serialization point an event landed at, which races benignly with
/// autonomous worker progress (the deterministic sequencer makes the *state*
/// independent of that race), so a re-fed log matches the reference
/// record-for-record only once stamps are scrubbed.
fn scrub_stamp(payload: &[u8]) -> Vec<u8> {
    let mut bytes = payload.to_vec();
    if let Some(&tag) = bytes.first() {
        // Submit { first: u64, stamp: u64, .. } / Answer { token: u64,
        // stamp: u64, .. } — the stamp is bytes 9..17 either way.
        if (tag == 1 || tag == 2) && bytes.len() >= 17 {
            bytes[9..17].fill(0);
        }
    }
    bytes
}

/// Asserts the re-fed log in `dir` carries the same record sequence as the
/// reference — same headers, same submissions (ids and operations), same
/// answers (tokens and decisions), in the same order — modulo action stamps.
fn assert_log_matches_reference(dir: &Path, reference: &ReferenceRun, label: &str) {
    let refed = read_wal(&dir.join("wal.log")).expect("re-fed wal parses").records;
    let lhs: Vec<Vec<u8>> = refed.iter().map(|p| scrub_stamp(p)).collect();
    let rhs: Vec<Vec<u8>> = reference.records.iter().map(|p| scrub_stamp(p)).collect();
    assert_eq!(lhs, rhs, "{label}: re-fed log records (stamps scrubbed)");
}

/// Byte offsets of each record-frame boundary in a log holding `records`:
/// `boundaries[k]` is the file length after the first `k + 1` records. Built
/// by re-framing the payloads through a scratch [`WalWriter`], which writes
/// the identical bytes (asserted by the callers against the real file).
fn frame_boundaries(records: &[Vec<u8>], scratch: &Path) -> Vec<u64> {
    let mut writer = WalWriter::create(scratch).expect("scratch wal");
    records
        .iter()
        .map(|payload| {
            writer.append(payload).expect("scratch append");
            writer.position()
        })
        .collect()
}

/// Waits (with a deadline) until the engine reaches quiescence on its own.
fn await_quiescence(engine: &ExchangeEngine, label: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !engine.is_quiescent() {
        if let Some(e) = engine.error() {
            panic!("{label}: engine failed while settling: {e}");
        }
        assert!(Instant::now() < deadline, "{label}: engine never became quiescent");
        std::thread::sleep(Duration::from_micros(50));
    }
}

/// Re-feeds decoded WAL tail records through the **public** API: submissions
/// via [`ExchangeEngine::submit_batch`] (asserting the engine re-assigns the
/// logged ids) and answers via [`ExchangeEngine::answer_with_origin`] once
/// the same token is republished by the recovered chase. System-origin
/// answers are replayed verbatim with their logged origin — the harness
/// never calls [`ExchangeEngine::sweep`], so a decision the sweeper made
/// before the crash can only re-enter the run as a replayed log record,
/// never as a fresh decision.
fn refeed(engine: &ExchangeEngine, tail: &[WalRecord], label: &str) {
    for record in tail {
        match record {
            WalRecord::Header { .. } => panic!("{label}: tail contains a header record"),
            WalRecord::Submit { first, ops, .. } => {
                // The reference submits each wave to a quiescent engine, so
                // re-feed under the same arrival discipline: without this,
                // the resubmission would join the live set while recovered
                // mid-flight work is still settling — a different run.
                await_quiescence(engine, label);
                let handles = engine.submit_batch(ops.clone()).expect("re-submission admitted");
                assert_eq!(
                    handles.first().map(|h| h.id()),
                    Some(UpdateId(*first)),
                    "{label}: recovered engine must re-assign the logged update ids"
                );
            }
            WalRecord::Answer { token, decision, origin, .. } => {
                let deadline = Instant::now() + Duration::from_secs(30);
                loop {
                    if engine.pending_frontiers().iter().any(|pf| pf.token.0 == *token) {
                        break;
                    }
                    if let Some(e) = engine.error() {
                        panic!("{label}: engine failed before republishing token {token}: {e}");
                    }
                    assert!(
                        Instant::now() < deadline,
                        "{label}: token {token} was never republished after recovery"
                    );
                    std::thread::yield_now();
                }
                let outcome = engine
                    .answer_with_origin(FrontierToken(*token), decision.clone(), *origin)
                    .expect("logged decision re-applies");
                assert_eq!(outcome, AnswerOutcome::Applied, "{label}: token {token}");
            }
        }
    }
    await_quiescence(engine, label);
}

/// Recovers from `dir`, re-feeds `tail`, and asserts every observable is
/// byte-identical to the reference.
fn recover_refeed_and_compare(
    reference: &ReferenceRun,
    dir: &Path,
    tail: &[WalRecord],
    label: &str,
) {
    let durability = DurabilityConfig::new(dir)
        .with_snapshot_every(reference.snapshot_every)
        .with_group_commit(reference.group_commit);
    let engine = ExchangeEngine::recover(reference.mappings.clone(), reference.config, durability)
        .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
    refeed(&engine, tail, label);

    let stats = engine.update_stats();
    assert_eq!(stats, reference.stats, "{label}: per-update stats");
    assert_eq!(abort_set(&stats), reference.aborts, "{label}: abort set");
    let (db, _, metrics) = engine.shutdown();
    assert_eq!(scrub(metrics), reference.metrics, "{label}: metrics");
    assert_eq!(render(&db), reference.render, "{label}: final database state");
}

// ---------------------------------------------------------------------------
// Prefix byte-equality
// ---------------------------------------------------------------------------

/// Cuts the reference log after each record, recovers from the prefix, and
/// re-feeds the suffix. With `snapshot_every` large enough that only
/// snapshot 0 exists, this covers **every** prefix of the logged run.
fn sweep_every_boundary(reference: &ReferenceRun, ref_dir: &Path, tag: &str) {
    let n = reference.records.len();

    let scratch = TempDir::new("scratch");
    let boundaries = frame_boundaries(&reference.records, &scratch.path().join("reframe.log"));
    assert_eq!(
        std::fs::read(scratch.path().join("reframe.log")).unwrap(),
        reference.wal_bytes,
        "re-framed payloads must reproduce the log bytes exactly"
    );

    let tail: Vec<WalRecord> = reference.records[1..]
        .iter()
        .map(|payload| decode_record(payload).expect("logged record decodes"))
        .collect();

    for keep in 1..=n {
        let cut_dir = TempDir::new("cut");
        std::fs::copy(ref_dir.join("snapshot.bin"), cut_dir.path().join("snapshot.bin")).unwrap();
        let prefix = &reference.wal_bytes[..boundaries[keep - 1] as usize];
        std::fs::write(cut_dir.path().join("wal.log"), prefix).unwrap();
        let label = format!("{tag}, {keep}/{n} records");
        recover_refeed_and_compare(reference, cut_dir.path(), &tail[keep - 1..], &label);

        // After the re-feed the recovered log must carry the same record
        // sequence as the reference — so a second recovery would replay the
        // same history. (Only comparable while no snapshot fired during the
        // re-feed and truncated the log.)
        if reference.snapshot_every as usize > n {
            assert_log_matches_reference(cut_dir.path(), reference, &label);
        }
    }
}

fn recovery_matches_reference_at_every_boundary(
    seed: u64,
    snapshot_every: u64,
    group_commit: usize,
) {
    let ref_dir = TempDir::new("ref");
    let reference = reference_run(seed, ref_dir.path(), snapshot_every, group_commit);
    sweep_every_boundary(
        &reference,
        ref_dir.path(),
        &format!("seed {seed}, snapshot_every {snapshot_every}"),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Crash at any acknowledged record: recover + re-feed ≡ never crashed.
    #[test]
    fn recovery_is_byte_identical_at_every_record_boundary(seed in 0u64..10_000) {
        recovery_matches_reference_at_every_boundary(seed, 1_000_000, 1);
    }

    /// The same prefix sweep with a group-commit window: batched fsyncs must
    /// not change a single byte of what gets logged or recovered — the window
    /// only moves *when* records become durable, never what they say. The
    /// reference's clean shutdown flushes its open window, so the final log
    /// is complete and every boundary is still reachable.
    #[test]
    fn recovery_is_byte_identical_with_group_commit(seed in 0u64..10_000) {
        recovery_matches_reference_at_every_boundary(seed, 1_000_000, 8);
    }

    /// The same equality when snapshots have folded most of the log away:
    /// recovery starts from mid-run snapshot state, not the initial database.
    #[test]
    fn recovery_is_byte_identical_across_snapshots(seed in 0u64..10_000) {
        recovery_matches_reference_at_every_boundary(seed, 3, 1);
    }

    /// Snapshots and group commit together: the snapshot path force-flushes
    /// the open window before folding the log away, so a snapshot can never
    /// claim to cover records that were not yet on disk.
    #[test]
    fn recovery_across_snapshots_with_group_commit(seed in 0u64..10_000) {
        recovery_matches_reference_at_every_boundary(seed, 3, 8);
    }

    /// Torn tail: truncating the log at **every byte offset** inside its
    /// final record drops exactly that record, and recovery plus a re-feed
    /// of the dropped record is byte-identical to the reference.
    #[test]
    fn torn_final_record_is_dropped_exactly_and_replayable(seed in 0u64..10_000) {
        let ref_dir = TempDir::new("torn-ref");
        let reference = reference_run(seed, ref_dir.path(), 1_000_000, 1);
        let n = reference.records.len();
        assert!(n >= 2, "a non-empty workload always logs past the header");

        let scratch = TempDir::new("torn-scratch");
        let boundaries =
            frame_boundaries(&reference.records, &scratch.path().join("reframe.log"));
        prop_assert_eq!(
            std::fs::read(scratch.path().join("reframe.log")).unwrap(),
            reference.wal_bytes.clone()
        );
        let last_start = boundaries[n - 2] as usize;
        let file_len = reference.wal_bytes.len();
        assert_eq!(boundaries[n - 1] as usize, file_len);
        let dropped =
            vec![decode_record(&reference.records[n - 1]).expect("final record decodes")];

        for cut in last_start..file_len {
            let cut_dir = TempDir::new("torn-cut");
            std::fs::copy(
                ref_dir.path().join("snapshot.bin"),
                cut_dir.path().join("snapshot.bin"),
            )
            .unwrap();
            std::fs::write(cut_dir.path().join("wal.log"), &reference.wal_bytes[..cut]).unwrap();

            // The torn bytes must cost exactly the final record, no more.
            let torn = read_wal(&cut_dir.path().join("wal.log")).unwrap();
            assert_eq!(torn.records.len(), n - 1, "cut at byte {cut}");
            assert_eq!(torn.valid_len as usize, last_start, "cut at byte {cut}");

            let label = format!("seed {seed}, torn at byte {cut}/{file_len}");
            recover_refeed_and_compare(&reference, cut_dir.path(), &dropped, &label);
            assert_log_matches_reference(cut_dir.path(), &reference, &label);
        }
    }
}

// ---------------------------------------------------------------------------
// Escalated runs: system answers are replayed, never re-decided
// ---------------------------------------------------------------------------

/// Settles the engine to quiescence while deliberately starving some frontier
/// requests so the lifecycle sweeper must escalate them. Under `AutoResolve`
/// the harness answers only even-numbered tokens by hand, leaving the odd
/// ones to expire into system answers; under `ReAsk` it answers a request
/// only once the sweeper has escalated it at least once (re-asks are
/// advisory, so a human must still decide). Under `Wait` everything is
/// answered on first sight — the sweep is pure aging.
fn settle_with_escalations(
    engine: &ExchangeEngine,
    resolver: &mut RandomResolver,
    policy: EscalationPolicy,
) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !engine.is_quiescent() {
        if let Some(e) = engine.error() {
            panic!("escalated reference: engine failed while settling: {e}");
        }
        assert!(Instant::now() < deadline, "escalated reference never became quiescent");
        for pf in engine.pending_frontiers() {
            let by_hand = match policy {
                EscalationPolicy::Wait => true,
                EscalationPolicy::ReAsk { .. } => pf.escalations >= 1,
                EscalationPolicy::AutoResolve { .. } => pf.token.0 % 2 == 0,
            };
            if !by_hand {
                continue;
            }
            let decision = engine.read(|db| resolver.resolve(&db.snapshot(pf.update), &pf.request));
            engine.answer(pf.token, decision).expect("hand answer applies");
        }
        engine.sweep();
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// [`reference_run`] under an escalation policy: the same workload, but the
/// settling loop starves requests (see [`settle_with_escalations`]) so the
/// final log interleaves Human- and System-origin answer records. Returns
/// the reference plus the **unscrubbed** live metrics, so callers can pin
/// escalation counts that `scrub` erases.
fn escalated_reference_run(
    seed: u64,
    dir: &Path,
    policy: EscalationPolicy,
) -> (ReferenceRun, RunMetrics) {
    let mut experiment = ExperimentConfig::tiny();
    experiment.seed = seed;
    let fixture = build_fixture(&experiment).expect("fixture builds");
    let ops: Vec<InitialOp> = generate_workload(
        &experiment,
        &fixture.schema,
        &fixture.initial_db,
        &fixture.mappings,
        WorkloadKind::Mixed,
        seed,
    )
    .into_iter()
    .take(10)
    .collect();
    let first_number = experiment.initial_tuples as u64 + 1_000;
    let config = EngineConfig::default()
        .with_scheduler(
            SchedulerConfig::with_tracker(TrackerKind::Precise)
                .with_policy(SchedulingPolicy::StepRoundRobin)
                .with_chase_mode(ChaseMode::Incremental)
                .with_frontier_delay_rounds(3)
                .with_workers(2),
        )
        .with_first_update_number(first_number)
        .with_escalation_policy(policy);
    let durability = DurabilityConfig::new(dir).with_snapshot_every(1_000_000).with_group_commit(1);
    let engine = ExchangeEngine::new_durable(
        fixture.initial_db.clone(),
        fixture.mappings.clone(),
        config,
        durability,
    )
    .expect("durable engine starts");

    let mut resolver = RandomResolver::seeded(seed ^ 0xE61E);
    for wave in ops.chunks(3) {
        engine.submit_batch(wave.to_vec()).expect("uncapped submission");
        settle_with_escalations(&engine, &mut resolver, policy);
    }
    assert!(engine.is_quiescent(), "escalated reference run must end quiescent");
    let stats = engine.update_stats();
    let aborts = abort_set(&stats);
    let (db, mappings, metrics) = engine.shutdown();
    assert!(satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), &mappings));

    let wal_bytes = std::fs::read(dir.join("wal.log")).expect("wal survives shutdown");
    let records = read_wal(&dir.join("wal.log")).expect("wal parses").records;
    let reference = ReferenceRun {
        render: render(&db),
        metrics: scrub(metrics.clone()),
        stats,
        aborts,
        records,
        wal_bytes,
        mappings,
        config,
        snapshot_every: 1_000_000,
        group_commit: 1,
    };
    (reference, metrics)
}

/// Counts (human, system) answer records in a decoded log.
fn count_answer_origins(records: &[Vec<u8>]) -> (usize, usize) {
    records[1..].iter().fold((0, 0), |(h, s), payload| {
        match decode_record(payload).expect("logged record decodes") {
            WalRecord::Answer { origin: ResolutionOrigin::Human, .. } => (h + 1, s),
            WalRecord::Answer { origin: ResolutionOrigin::System, .. } => (h, s + 1),
            _ => (h, s),
        }
    })
}

/// A pinned auto-resolving run: seed 4242 is known to block on frontiers, so
/// the log *must* carry System-origin answer records, the live
/// `auto_resolutions` metric must count exactly those records — and the full
/// boundary sweep must hold with system answers in the replayed tail. The
/// metrics equality inside the sweep is what pins "replayed, never
/// re-decided": `scrub` keeps `auto_resolutions`, so a recovery that dropped
/// or re-made even one system decision would miscount.
#[test]
fn auto_resolved_runs_recover_byte_identically() {
    let policy =
        EscalationPolicy::AutoResolve { after: 2, decision: AutoDecision::ExpandOrDeleteFirst };
    let dir = TempDir::new("auto-ref");
    let (reference, live) = escalated_reference_run(4242, dir.path(), policy);
    let (human, system) = count_answer_origins(&reference.records);
    assert!(system > 0, "the starved odd-token requests must have auto-resolved");
    assert!(human > 0, "the even-token requests must still be human answers");
    assert_eq!(live.auto_resolutions, system, "live metric counts the logged system answers");
    assert_eq!(
        reference.metrics.auto_resolutions, system,
        "auto_resolutions survives the scrub — recovery must reproduce it"
    );
    sweep_every_boundary(&reference, dir.path(), "auto-resolve seed 4242");
}

/// The same pinned run under `ReAsk`: escalations happen (the harness only
/// answers re-asked requests) but are advisory — the log carries Human
/// answers only, and a recovered run restarts the re-ask counter at zero.
#[test]
fn re_asked_runs_recover_byte_identically() {
    let dir = TempDir::new("reask-ref");
    let (reference, live) =
        escalated_reference_run(4242, dir.path(), EscalationPolicy::ReAsk { after: 2 });
    let (human, system) = count_answer_origins(&reference.records);
    assert!(live.re_asks > 0, "every answered request was re-asked first");
    assert_eq!(system, 0, "re-asks are advisory: no system answers in the log");
    assert!(human > 0, "the re-asked requests were answered by hand");
    assert_eq!(reference.metrics.re_asks, 0, "scrubbed: re-asks reset across recovery");
    sweep_every_boundary(&reference, dir.path(), "re-ask seed 4242");
}

proptest! {
    // The boundary sweep recovers O(records) engines per case, and the
    // escalated settle loop sleeps between sweeps, so keep the case count
    // low — the pinned tests above already guarantee escalations occur.
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Crash anywhere in an auto-resolving run: recover + re-feed ≡ never
    /// crashed, with the replayed tail carrying the sweeper's own answers.
    #[test]
    fn escalated_recovery_is_byte_identical_at_every_boundary(seed in 0u64..10_000) {
        let policy = EscalationPolicy::AutoResolve {
            after: 2,
            decision: AutoDecision::ExpandOrDeleteFirst,
        };
        let dir = TempDir::new("auto-prop");
        let (reference, _) = escalated_reference_run(seed, dir.path(), policy);
        sweep_every_boundary(&reference, dir.path(), &format!("auto-resolve seed {seed}"));
    }
}

// ---------------------------------------------------------------------------
// Recovery rejects what it cannot replay
// ---------------------------------------------------------------------------

/// A config whose fingerprint differs from the logging engine's is rejected
/// up front — replaying under different semantics would diverge silently.
#[test]
fn recovery_rejects_a_mismatched_config() {
    let dir = TempDir::new("mismatch");
    let reference = reference_run(7, dir.path(), 1_000_000, 1);

    let altered = reference.config.with_scheduler(
        SchedulerConfig::with_tracker(TrackerKind::Naive)
            .with_policy(SchedulingPolicy::StepRoundRobin)
            .with_chase_mode(ChaseMode::Incremental)
            .with_frontier_delay_rounds(3)
            .with_workers(2),
    );
    let durability = DurabilityConfig::new(dir.path()).with_snapshot_every(1_000_000);
    match ExchangeEngine::recover(reference.mappings.clone(), altered, durability) {
        Err(RecoveryError::ConfigMismatch { .. }) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

/// Free-running (non-deterministic) configs cannot be durable: replay cannot
/// reproduce scheduling that was not a function of the event log.
#[test]
fn durability_rejects_free_running_configs() {
    let dir = TempDir::new("free");
    let config = EngineConfig::default()
        .with_scheduler(SchedulerConfig::with_tracker(TrackerKind::Precise).free_running());
    match ExchangeEngine::new_durable(
        Database::new(),
        MappingSet::new(),
        config,
        DurabilityConfig::new(dir.path()),
    ) {
        Err(RecoveryError::FreeRunningUnsupported) => {}
        other => panic!("expected FreeRunningUnsupported, got {other:?}"),
    }
    match ExchangeEngine::recover(MappingSet::new(), config, DurabilityConfig::new(dir.path())) {
        Err(RecoveryError::FreeRunningUnsupported) => {}
        other => panic!("expected FreeRunningUnsupported, got {other:?}"),
    }
}

/// An empty or headerless log is corruption, not a crash to replay through.
#[test]
fn recovery_rejects_a_headerless_log() {
    let dir = TempDir::new("headerless");
    let reference = reference_run(11, dir.path(), 1_000_000, 1);
    std::fs::write(dir.path().join("wal.log"), b"").unwrap();
    let durability = DurabilityConfig::new(dir.path()).with_snapshot_every(1_000_000);
    match ExchangeEngine::recover(reference.mappings.clone(), reference.config, durability) {
        Err(RecoveryError::Corrupt(_)) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Retention: bounded slot-table memory
// ---------------------------------------------------------------------------

/// A bare single-relation fixture whose updates terminate immediately (no
/// mappings, so no chase beyond the initial operation).
fn trivial_fixture() -> (Database, MappingSet, youtopia::RelationId) {
    let mut db = Database::new();
    db.add_relation("K", ["key", "value"]).unwrap();
    let k = db.relation_id("K").unwrap();
    (db, MappingSet::new(), k)
}

fn run_retention_cycles(cycles: u64, horizon: usize, durable_dir: Option<&Path>) {
    let (db, mappings, k) = trivial_fixture();
    let config = EngineConfig::default()
        .with_scheduler(SchedulerConfig::with_tracker(TrackerKind::Precise).with_workers(1))
        .with_first_update_number(1_000)
        .with_retention_horizon(horizon);
    let engine = match durable_dir {
        Some(dir) => ExchangeEngine::new_durable(
            db,
            mappings,
            config,
            DurabilityConfig::new(dir).with_snapshot_every(64),
        )
        .expect("durable engine starts"),
        None => ExchangeEngine::new(db, mappings, config),
    };

    // The horizon bounds *retained terminal* slots; in-flight work and the
    // current quiescence lag add at most a small constant on top.
    let bound = 2 * horizon + 8;
    let mut first_handle = None;
    for i in 0..cycles {
        let handle = engine
            .submit(InitialOp::Insert {
                relation: k,
                values: vec![Value::constant(&format!("k{i}")), Value::constant("v")],
            })
            .expect("admission");
        if i == 0 {
            first_handle = Some(handle.clone());
        }
        let report = handle.wait().expect("trivial update terminates");
        assert!(report.terminated);
        if i % 512 == 0 {
            assert!(
                engine.retained_slots() <= bound,
                "cycle {i}: {} slots retained, bound {bound}",
                engine.retained_slots()
            );
        }
    }
    await_quiescence(&engine, "retention cycles");
    assert!(
        engine.retained_slots() <= bound,
        "final: {} slots retained, bound {bound}",
        engine.retained_slots()
    );

    // Evicted ids answer with the typed error — not a panic, not a hang.
    match engine.update_stats_of(UpdateId(1_000)) {
        Err(LookupError::SlotEvicted(u)) => assert_eq!(u, UpdateId(1_000)),
        other => panic!("expected SlotEvicted for the first update, got {other:?}"),
    }
    match engine.update_report_of(UpdateId(1_000)) {
        Err(LookupError::SlotEvicted(_)) => {}
        other => panic!("expected SlotEvicted report, got {other:?}"),
    }
    // Ids never admitted stay distinguishable from evicted ones.
    match engine.update_stats_of(UpdateId(1_000 + cycles + 5)) {
        Err(LookupError::UnknownUpdate(_)) => {}
        other => panic!("expected UnknownUpdate, got {other:?}"),
    }
    match engine.update_stats_of(UpdateId(3)) {
        Err(LookupError::UnknownUpdate(_)) => {}
        other => panic!("expected UnknownUpdate below the first number, got {other:?}"),
    }
    // A live handle pins its own cell: it still answers after eviction.
    let first = first_handle.expect("first handle kept");
    assert_eq!(first.status(), UpdateStatus::Terminated);
    assert!(first.report().expect("report pinned").terminated);

    // The most recent updates are still retained and keyed-addressable.
    let last = UpdateId(1_000 + cycles - 1);
    assert_eq!(engine.update_stats_of(last).expect("last update retained").restarts, 0);

    let (final_db, _, metrics) = engine.shutdown();
    assert_eq!(metrics.workload_size, cycles as usize);
    assert_eq!(final_db.visible_count(k, UpdateId::OMNISCIENT), cycles as usize);
}

/// ≥10k submit/terminate cycles against a small horizon: the slot table
/// stays O(horizon) instead of growing without bound, and every lookup mode
/// (evicted / unknown / pinned handle / retained) behaves as documented.
#[test]
fn ten_thousand_cycles_hold_bounded_slot_memory() {
    run_retention_cycles(10_000, 32, None);
}

/// Compaction composes with durability: the same bounded-memory run through
/// a durable engine, then a recovery whose replayed state matches the final
/// database (the log tail past the last snapshot replays deterministically).
#[test]
fn durable_compaction_recovers_cleanly() {
    let dir = TempDir::new("durable-retention");
    let (db, mappings, k) = trivial_fixture();
    let config = EngineConfig::default()
        .with_scheduler(SchedulerConfig::with_tracker(TrackerKind::Precise).with_workers(1))
        .with_first_update_number(1_000)
        .with_retention_horizon(16);
    let engine = ExchangeEngine::new_durable(
        db,
        mappings.clone(),
        config,
        DurabilityConfig::new(dir.path()).with_snapshot_every(32),
    )
    .expect("durable engine starts");
    for i in 0..500u64 {
        let handle = engine
            .submit(InitialOp::Insert {
                relation: k,
                values: vec![Value::constant(&format!("k{i}")), Value::constant("v")],
            })
            .expect("admission");
        handle.wait().expect("terminates");
    }
    await_quiescence(&engine, "durable retention");
    let retained = engine.retained_slots();
    assert!(retained <= 40, "{retained} slots retained under horizon 16");
    let stats = engine.update_stats();
    let (final_db, _, metrics) = engine.shutdown();

    let recovered = ExchangeEngine::recover(
        mappings,
        config,
        DurabilityConfig::new(dir.path()).with_snapshot_every(32),
    )
    .expect("recovery succeeds");
    await_quiescence(&recovered, "recovered durable retention");
    // How *deep* the retained window is at any instant depends on when
    // compaction last ran (it trails the horizon by a bounded lag), so the
    // two engines may not retain the same number of trailing slots — but
    // every slot they both retain must carry identical statistics, and both
    // windows must end at the newest update.
    let recovered_stats = recovered.update_stats();
    let recovered_count = recovered_stats.len();
    assert!(recovered_count <= 40, "{recovered_count} slots retained after recovery");
    assert_eq!(recovered_stats.last(), stats.last(), "newest retained update");
    let reference: std::collections::BTreeMap<_, _> = stats.iter().cloned().collect();
    for (id, s) in &recovered_stats {
        if let Some(original) = reference.get(id) {
            assert_eq!(s, original, "stats of {id:?} survive recovery");
        }
    }
    match recovered.update_stats_of(UpdateId(1_000)) {
        Err(LookupError::SlotEvicted(_)) => {}
        other => panic!("eviction must survive recovery, got {other:?}"),
    }
    let (recovered_db, _, recovered_metrics) = recovered.shutdown();
    assert_eq!(render(&recovered_db), render(&final_db), "recovered database");
    assert_eq!(scrub(recovered_metrics), scrub(metrics), "recovered metrics");
}

/// The long-haul spelling of the bounded-memory property, kept out of the
/// default run: `cargo test --test engine_recovery -- --ignored`.
#[test]
#[ignore = "long-running stress: ~40k cycles through a durable compacting engine"]
fn stress_durable_compaction_over_many_cycles() {
    let dir = TempDir::new("stress");
    run_retention_cycles(40_000, 16, Some(dir.path()));
}
