//! The long-lived update-exchange service: [`ExchangeEngine`].
//!
//! The batch schedulers ([`ConcurrentRun`](crate::ConcurrentRun),
//! [`ParallelRun`](crate::ParallelRun)) take every update up front and run to
//! completion with a synchronous resolver callback. The paper's chase is not
//! shaped like that: updates arrive continuously and block on frontier
//! questions that humans answer asynchronously (Youtopia §3–5). The engine is
//! the service form of the same machinery:
//!
//! * **Open-world submission** — [`ExchangeEngine::submit`] accepts an update
//!   at any time, including while earlier updates are mid-chase or blocked on
//!   frontiers, and returns an [`UpdateHandle`] exposing
//!   [`status`](UpdateHandle::status) / [`wait`](UpdateHandle::wait) /
//!   [`report`](UpdateHandle::report). An admission cap turns overload into
//!   [`SubmitError::Saturated`] backpressure instead of unbounded queues.
//! * **Pull-based frontier resolution** — a chase that blocks publishes its
//!   request; [`ExchangeEngine::pending_frontiers`] lists the outstanding
//!   [`PendingFrontier`]s and [`ExchangeEngine::answer`] resumes the owning
//!   update. Tokens go stale when the owner aborts (its restart publishes a
//!   new one), so a late answer is reported as [`AnswerOutcome::Stale`]
//!   rather than resuming the wrong incarnation. [`ResolverPump`] drains the
//!   queue through any existing [`FrontierResolver`] for compatibility with
//!   the batch world.
//! * **Snapshot reads** — [`ExchangeEngine::read`] runs a closure over the
//!   last-committed database state (a read-lock session), the way a serving
//!   tier would answer queries while chases run.
//!
//! Internally the engine owns the worker pool that used to live inside
//! `ParallelRun` — sharded run queues, two-phase steps over an
//! `RwLock<Database>`, lock-striped logs, owner-performed aborts with
//! validated rollbacks — but keeps it alive across submissions. The two modes
//! carry over ([`SchedulerConfig::deterministic`]): the deterministic
//! sequencer executes the exact round-robin loop of `ConcurrentRun` (a batch
//! submitted before anything steps is byte-identical to the reference at any
//! worker count — pinned by `tests/engine_equivalence.rs`), and free-running
//! mode drops the sequencer for throughput.
//!
//! Unlike the inline resolvers of the batch world, an answer can arrive long
//! after the snapshot the user looked at: writes may commit in between. That
//! is exactly the cooperative setting — the machinery that keeps it sound is
//! unchanged: the request's plan-time reads are in the read log, the
//! decision's correction queries are recorded in the same read-lock session
//! that applies them, and any conflicting later write aborts the update.
//!
//! Lock order (outermost first): cursor → slots table → admission → slot →
//! pending → resolver (in [`ResolverPump`]) → database → tracker → metrics →
//! all-ids → log stripes. A worker never blocks on a second slot lock while holding one
//! (victim slots are `try_lock`ed; on failure the victim is flagged and its
//! owner acts). Durable engines additionally hold a WAL writer mutex, nested
//! innermost; every append happens while the cursor is held (durability
//! implies the deterministic sequencer), so it is uncontended in practice.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, Weak};
use std::thread::JoinHandle;

use youtopia_core::{
    ChaseError, EscalationPolicy, FrontierDecision, FrontierResolver, FrontierToken, InitialOp,
    LookupError, PendingFrontier, ReadQuery, ResolutionOrigin, StepOutcome, UpdateExecution,
    UpdateReport, UpdateState, UpdateStats,
};
use youtopia_mappings::MappingSet;
use youtopia_storage::wal::{read_wal, write_file_atomic, WalWriter};
use youtopia_storage::{Database, SpeculationReadSet, SpeculativeDb, TupleChange, UpdateId, Write};

use crate::deps::DependencyTracker;
use crate::durable::{
    config_fingerprint, decode_record, decode_snapshot, encode_answer, encode_header,
    encode_snapshot, encode_submit, DurabilityConfig, DurableEngineState, RecoveryError,
    SlotSummary, SnapshotMeta, WalRecord,
};
use crate::metrics::RunMetrics;
use crate::scheduler::{SchedulerConfig, SchedulingPolicy, SpeculationMode};
use crate::striped::{StripedReadLog, StripedWriteLog};

pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The change a rollback performs when it undoes `change`: rolling back an
/// insert deletes the tuple, rolling back a delete revives it, rolling back a
/// modification swaps the images.
fn invert_change(change: &TupleChange) -> TupleChange {
    match change {
        TupleChange::Inserted { relation, tuple, values } => {
            TupleChange::Deleted { relation: *relation, tuple: *tuple, old: values.clone() }
        }
        TupleChange::Deleted { relation, tuple, old } => {
            TupleChange::Inserted { relation: *relation, tuple: *tuple, values: old.clone() }
        }
        TupleChange::Modified { relation, tuple, old, new } => TupleChange::Modified {
            relation: *relation,
            tuple: *tuple,
            old: new.clone(),
            new: old.clone(),
        },
    }
}

/// Configuration of a long-lived [`ExchangeEngine`].
///
/// Prefer [`EngineBuilder`](crate::EngineBuilder), which assembles this
/// struct (plus durability) behind one fluent surface — the field struct and
/// its `with_*` setters survive as the assembled representation (and the
/// durable config fingerprint input), not as the construction API.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// The scheduler knobs the engine inherits from the batch world: tracker,
    /// policy, chase mode, worker count, deterministic/free mode, the global
    /// step valve and the frontier delay (deterministic mode only).
    pub scheduler: SchedulerConfig,
    /// Priority number of the first submitted update; later submissions count
    /// up from here in arrival order (the paper's timestamp prioritisation).
    pub first_update_number: u64,
    /// Per-update step budget: an update that exceeds it fails alone (its
    /// writes are rolled back, its handle reports the error) instead of
    /// tearing the whole engine down the way
    /// [`SchedulerConfig::max_total_steps`] does.
    pub max_steps_per_update: usize,
    /// Admission cap: the maximum number of in-flight (non-terminated)
    /// updates. Submissions beyond it fail with [`SubmitError::Saturated`] —
    /// backpressure, not queueing.
    pub admission_cap: usize,
    /// Retention horizon for finished update records: once more than this
    /// many slots are retained, permanently-terminal slots are evicted from
    /// the front of the table (oldest first) and keyed lookups for them
    /// report [`LookupError::SlotEvicted`]. `usize::MAX` (the default)
    /// disables compaction and reproduces the historical grow-forever table.
    pub retention_horizon: usize,
    /// Inline mode: spawn **no** worker threads and drive the deterministic
    /// sequencer on whichever thread pumps the engine ([`ResolverPump`],
    /// [`UpdateHandle::wait`], [`ExchangeEngine::wait_quiescent`]). The
    /// submit/poll/answer API is unchanged, but every cross-thread handoff
    /// disappears — the single-update [`crate::UpdateExchange`] façade uses
    /// this to keep micro-chases at single-threaded cost. Implies
    /// deterministic scheduling (the flag overrides
    /// [`SchedulerConfig::deterministic`]).
    pub inline: bool,
    /// What the lifecycle sweeper ([`ExchangeEngine::sweep`]) does with a
    /// frontier request nobody answers: wait forever (the default), re-ask at
    /// higher priority, or auto-resolve with a system decision. Part of the
    /// durable config fingerprint — a WAL written under one policy is not
    /// replayed under another.
    pub escalation: EscalationPolicy,
    /// Bound on the shared violation feed's retained write-delta backlog
    /// (applied to the engine's database at construction; defaults to
    /// [`youtopia_storage::DELTA_BACKLOG_CAP`]). Performance-only: a consumer
    /// behind the truncation point falls back to full revalidation, so the
    /// knob never changes results — which is why it is *not* part of the
    /// durable config fingerprint.
    pub delta_backlog_cap: usize,
    /// Replication identity: `Some(node)` turns the engine into a replica of
    /// a multi-node deployment (see the `replicate` module). Replicated
    /// engines apply updates through the canonical replicated fold —
    /// [`ExchangeEngine::submit_replicated`] instead of plain `submit` — and
    /// imply deterministic scheduling. Mutually exclusive with durability
    /// (WAL-shipping is the planned marriage of the two).
    pub replica: Option<youtopia_core::replication::NodeId>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            // `SchedulerConfig`'s cumulative step valve is a batch-run safety
            // net; on a long-lived service it would become a lifetime time
            // bomb (the engine dies for good once total steps ever executed
            // reach it). Default engines are therefore unbounded globally —
            // bound individual updates with `max_steps_per_update` instead.
            // Batch adapters pass their own scheduler config and keep the
            // valve.
            scheduler: SchedulerConfig::default().with_max_total_steps(usize::MAX),
            first_update_number: 1,
            max_steps_per_update: usize::MAX,
            admission_cap: usize::MAX,
            retention_horizon: usize::MAX,
            inline: false,
            escalation: EscalationPolicy::Wait,
            delta_backlog_cap: youtopia_storage::DELTA_BACKLOG_CAP,
            replica: None,
        }
    }
}

impl EngineConfig {
    /// Replaces the scheduler knobs.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> EngineConfig {
        self.scheduler = scheduler;
        self
    }

    /// Replaces the first update number.
    pub fn with_first_update_number(mut self, first: u64) -> EngineConfig {
        self.first_update_number = first;
        self
    }

    /// Replaces the per-update step budget.
    pub fn with_max_steps_per_update(mut self, limit: usize) -> EngineConfig {
        self.max_steps_per_update = limit;
        self
    }

    /// Replaces the admission cap.
    pub fn with_admission_cap(mut self, cap: usize) -> EngineConfig {
        self.admission_cap = cap;
        self
    }

    /// Replaces the retention horizon (see
    /// [`EngineConfig::retention_horizon`]).
    pub fn with_retention_horizon(mut self, horizon: usize) -> EngineConfig {
        self.retention_horizon = horizon;
        self
    }

    /// Switches to inline (threadless, caller-driven) mode — see
    /// [`EngineConfig::inline`].
    pub fn run_inline(mut self) -> EngineConfig {
        self.inline = true;
        self
    }

    /// Replaces the frontier escalation policy (see
    /// [`EngineConfig::escalation`]).
    pub fn with_escalation_policy(mut self, policy: EscalationPolicy) -> EngineConfig {
        self.escalation = policy;
        self
    }

    /// Replaces the violation-feed backlog bound (see
    /// [`EngineConfig::delta_backlog_cap`]).
    pub fn with_delta_backlog_cap(mut self, cap: usize) -> EngineConfig {
        self.delta_backlog_cap = cap;
        self
    }

    /// Makes the engine a replica with the given node identity (see
    /// [`EngineConfig::replica`]).
    pub fn with_replica(mut self, node: youtopia_core::replication::NodeId) -> EngineConfig {
        self.replica = Some(node);
        self
    }
}

/// An admission-control identity: who is submitting. Clients are opaque to
/// the chase (update numbering and scheduling ignore them entirely); they
/// exist so fair-share admission can tell one submitter's load from
/// another's.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u64);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

/// A client's admission priority. Priority weights admission capacity and the
/// starvation deficit — it never reorders the chase itself (update numbers
/// remain arrival order, the paper's timestamp prioritisation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work: smallest fair share, slowest-growing deficit.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Latency-sensitive work: largest fair share, fastest-growing deficit.
    High,
}

impl Priority {
    /// The weight used for fair-share splits and deficit growth.
    pub fn weight(&self) -> u64 {
        match self {
            Priority::Low => 1,
            Priority::Normal => 2,
            Priority::High => 4,
        }
    }
}

/// The backoff hint carried by [`SubmitError::Saturated`]: how many currently
/// in-flight updates must terminate before a retry of the same batch can be
/// admitted (assuming no competing submissions land first). Callers should
/// wait for that many completions — e.g. `wait()` on handles they hold, or
/// poll [`ExchangeEngine::active_updates`] — rather than hot-retrying.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RetryAfter {
    /// In-flight update completions to wait for before retrying.
    pub completions: usize,
}

impl std::fmt::Display for RetryAfter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "retry after {} completion(s)", self.completions)
    }
}

/// Why a submission was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission denied — the global cap is reached, or the submitting
    /// client is over its fair share while others contend. Retry after
    /// `retry_after` in-flight updates terminate (the backoff contract on
    /// [`ExchangeEngine::submit`] / [`ExchangeEngine::submit_batch`]).
    Saturated {
        /// In-flight updates at rejection time.
        active: usize,
        /// The configured cap.
        cap: usize,
        /// Typed backoff hint: completions to wait for before retrying.
        retry_after: RetryAfter,
    },
    /// The engine has been shut down or has failed fatally (see
    /// [`ExchangeEngine::error`]).
    ShutDown,
    /// The engine is durable and appending the submission record to the
    /// write-ahead log failed; nothing was admitted.
    Durability(String),
    /// The engine is a replica: plain submissions would bypass the replicated
    /// event log and silently diverge the node from its peers. Use
    /// [`ExchangeEngine::submit_replicated`].
    Replicated,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Saturated { active, cap, retry_after } => {
                write!(
                    f,
                    "engine saturated: {active} in-flight updates at cap {cap}; {retry_after}"
                )
            }
            SubmitError::ShutDown => write!(f, "engine is shut down"),
            SubmitError::Durability(msg) => write!(f, "write-ahead log append failed: {msg}"),
            SubmitError::Replicated => {
                write!(f, "engine is a replica: submit through submit_replicated")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// What happened to an [`ExchangeEngine::answer`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerOutcome {
    /// The decision was applied and the owning update resumed.
    Applied,
    /// The token no longer names an outstanding request (the owner aborted
    /// and restarted, or the request was already answered). Harmless: the
    /// restarted chase publishes a fresh token for whatever it blocks on next.
    Stale,
}

/// Where an update submitted to the engine currently stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateStatus {
    /// Queued or mid-chase.
    Running,
    /// Blocked on a frontier request (listed by
    /// [`ExchangeEngine::pending_frontiers`] once published).
    AwaitingFrontier,
    /// Ran to completion; [`UpdateHandle::report`] is available.
    Terminated,
    /// Failed terminally (per-update step budget); its writes were rolled
    /// back and [`UpdateHandle::error`] holds the cause.
    Failed,
}

/// Generation-counting wakeup channel: every observable state change bumps the
/// generation and notifies, waiters re-check their predicate. Coarse but
/// lost-wakeup-free.
pub(crate) struct Signal {
    gen: Mutex<u64>,
    cond: Condvar,
}

impl Signal {
    fn new() -> Signal {
        Signal { gen: Mutex::new(0), cond: Condvar::new() }
    }

    pub(crate) fn current(&self) -> u64 {
        *lock(&self.gen)
    }

    pub(crate) fn bump(&self) {
        *lock(&self.gen) += 1;
        self.cond.notify_all();
    }

    /// Blocks until the generation moves past `seen` (returns immediately if
    /// it already has).
    pub(crate) fn wait_past(&self, seen: u64) {
        let mut gen = lock(&self.gen);
        while *gen == seen {
            gen = self.cond.wait(gen).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// One pre-executed chase step, parked on its slot until the sequencer
/// reaches it: the advanced execution clone, the buffered step outcome
/// (writes still unapplied to the base), and everything the step observed,
/// reduced to the integer compares that decide commit vs discard.
struct Speculation {
    exec: UpdateExecution,
    outcome: StepOutcome,
    reads: SpeculationReadSet,
}

pub(crate) struct Slot {
    pub(crate) exec: UpdateExecution,
    /// A speculatively pre-executed next step (deterministic mode with
    /// [`SpeculationMode::Eager`] only). The sequencer validates it at the
    /// slot's commit point; aborts and failures clear it.
    speculation: Option<Speculation>,
    /// Rounds remaining before a pending frontier request is published
    /// (deterministic mode only; free-running has no notion of rounds).
    frontier_wait: usize,
    /// Unowned and in no run queue: terminated, blocked on a published
    /// frontier, or failed. Parked slots are re-enqueued by whoever changes
    /// their state (an answer, an abort).
    parked: bool,
    /// Token of the published-but-unanswered frontier request, if any.
    pub(crate) published: Option<FrontierToken>,
    /// Terminal per-update failure (step budget); never cleared.
    pub(crate) failed: Option<ChaseError>,
}

pub(crate) struct SlotCell {
    pub(crate) slot: Mutex<Slot>,
    /// Set by a validator that could not lock this slot (its owner holds it);
    /// the owner executes the abort at its next commit point. Cleared only by
    /// whoever performs the abort, under the slot lock.
    abort_requested: AtomicBool,
}

/// The slot table: a sliding window of update records. `base` counts slots
/// evicted by compaction; slot index `i` (= update number −
/// [`EngineConfig::first_update_number`]) lives at `cells[i − base]`.
/// Eviction is front-only and restricted to terminal slots, so every index
/// below `base` names an update that is terminal forever.
pub(crate) struct SlotTable {
    base: usize,
    cells: VecDeque<Arc<SlotCell>>,
}

impl SlotTable {
    /// Number of slots ever admitted (retained + evicted).
    pub(crate) fn total(&self) -> usize {
        self.base + self.cells.len()
    }

    fn get(&self, idx: usize) -> Option<&Arc<SlotCell>> {
        idx.checked_sub(self.base).and_then(|i| self.cells.get(i))
    }
}

/// The sequencer of deterministic mode: the next index of the round-robin
/// cursor plus the set of live (non-terminated, non-failed) slot indices, so a
/// long-lived engine does not re-scan thousands of terminated slots per round.
/// Iterating the live set in ascending order per round visits exactly the
/// slots the reference loop would act on, in the same order.
pub(crate) struct DetCursor {
    next: usize,
    pub(crate) live: BTreeSet<usize>,
}

/// What one deterministic sequencer action accomplished.
enum DetProgress {
    /// An action was taken (or a round boundary crossed); keep going.
    Acted,
    /// Nothing is live; sleep until a submission arrives.
    Idle,
    /// A published frontier awaits its answer; nothing may act until then.
    AwaitingAnswer,
}

pub(crate) struct PendingEntry {
    pub(crate) update: UpdateId,
    pub(crate) slot: usize,
    request: youtopia_core::FrontierRequest,
    /// Action stamp at publish time (0 on a plain engine, where the action
    /// counter does not run).
    published_at: u64,
    /// Sweeps survived unanswered since publish (or since the last
    /// escalation reset it). The deadline unit of [`EscalationPolicy`].
    age: u64,
    /// `ReAsk` re-publications (plus failed auto-resolutions) so far.
    /// Observability only — rebuilt entries start at zero after recovery,
    /// like the speculation counters.
    escalations: u32,
}

/// What one [`ExchangeEngine::sweep`] pass did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Pending requests aged by this pass (all of them).
    pub aged: usize,
    /// Tokens re-published at higher priority (`EscalationPolicy::ReAsk`).
    pub re_asked: Vec<FrontierToken>,
    /// Tokens the system answered (`EscalationPolicy::AutoResolve`), WAL-
    /// logged with [`ResolutionOrigin::System`] on a durable engine.
    pub auto_resolved: Vec<FrontierToken>,
}

/// Per-client admission bookkeeping (see [`ExchangeEngine::submit_batch_as`]).
#[derive(Default)]
struct ClientAdmission {
    /// Slot indices this client was admitted for; pruned lazily (terminal or
    /// evicted slots drop out at the next admission check).
    admitted: Vec<usize>,
    /// Weighted starvation deficit: grows by the client's priority weight on
    /// every rejection, resets to zero on admission. A client whose deficit
    /// reaches [`EngineShared::STARVATION_DEFICIT`] is *starving*: freed
    /// capacity is reserved for it (other clients are refused) until it gets
    /// in — the eventual-admission guarantee.
    deficit: u64,
    /// Priority weight of the client's most recent submission attempt.
    weight: u64,
}

/// Lives for the whole body of a worker thread. A worker that exits its loop
/// normally does so only on `stop` (or after `fail` set it); a worker that
/// unwinds from a panic would otherwise leave pumps and `wait()`ers blocked
/// forever on a signal nobody will bump — this guard's drop turns that into a
/// visible engine failure instead.
struct WorkerGuard<'a> {
    shared: &'a EngineShared,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        if !self.shared.stop.load(Ordering::SeqCst) {
            self.shared.fail(ChaseError::InvalidDecision(
                "engine worker exited unexpectedly (panic in a chase step?)".into(),
            ));
        }
    }
}

pub(crate) struct EngineShared {
    mappings: MappingSet,
    db: RwLock<Database>,
    pub(crate) config: EngineConfig,
    deterministic: bool,
    /// Threadless mode: the deterministic sequencer runs on whichever thread
    /// pumps or waits (see [`EngineConfig::inline`]).
    pub(crate) inline: bool,
    /// Whether workers losing the cursor race pre-execute upcoming steps
    /// speculatively: deterministic multi-worker engines with
    /// [`SpeculationMode::Eager`]. Inline and free-running engines never
    /// speculate, nor does a single worker (it owns the cursor anyway).
    speculate: bool,
    /// The sequencer's published position: the slot index after the one it
    /// last acted on. Speculators scan live slots from here — these are the
    /// steps the sequencer will want next.
    spec_next: AtomicUsize,
    /// Adaptive speculation throttle: a discarded speculation sets this to
    /// [`EngineShared::SPEC_DISCARD_PENALTY`] and each would-be speculator
    /// decrements it and declines instead, so a contention storm (where every
    /// epoch the overlay read is stale by commit time) stops burning cycles
    /// on doomed steps. A committed speculation resets it to zero.
    spec_penalty: AtomicUsize,
    /// Growable (and front-compacted) slot table; index = update number −
    /// `first_update_number`.
    pub(crate) slots: RwLock<SlotTable>,
    all_ids: Mutex<Vec<UpdateId>>,
    read_log: StripedReadLog,
    write_log: StripedWriteLog,
    tracker: Mutex<Box<dyn DependencyTracker>>,
    metrics: Mutex<RunMetrics>,
    /// Sharded run queues of slot indices (free-running mode).
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Deterministic sequencer state.
    pub(crate) cursor: Mutex<DetCursor>,
    /// Slot indices submitted since the sequencer last looked (deterministic
    /// mode; absorbed into the live set without taking the cursor lock on the
    /// submit path).
    det_incoming: Mutex<Vec<usize>>,
    /// Outstanding frontier requests, keyed by token (= publish order).
    pub(crate) pending: Mutex<BTreeMap<u64, PendingEntry>>,
    /// Per-client fair-share admission state, keyed by [`ClientId`].
    /// Anonymous submissions (no client) bypass it entirely and see only the
    /// global cap — the pre-QoS admission path, byte-identical.
    admission: Mutex<BTreeMap<ClientId, ClientAdmission>>,
    /// Number of slots with a published-but-not-fully-answered frontier.
    /// Unlike `pending` emptiness, this only drops once an answer has been
    /// *applied* (or the token invalidated by an abort) — the deterministic
    /// sequencer gates on it, so no step can slip in between `answer()`
    /// removing the entry and the decision's effects landing.
    pub(crate) unanswered: AtomicUsize,
    next_token: AtomicU64,
    /// Non-terminated, non-failed updates (admission + quiescence).
    pub(crate) active: AtomicUsize,
    /// Workers currently processing a slot (free mode).
    in_flight: AtomicUsize,
    pub(crate) stop: AtomicBool,
    error: Mutex<Option<ChaseError>>,
    pub(crate) signal: Signal,
    /// Durable state (WAL writer, counters); `None` on a plain engine.
    durable: Option<DurableEngineState>,
    /// Replication mechanism state (event logs, canonical fold bookkeeping);
    /// `None` unless [`EngineConfig::replica`] is set. See `crate::replicate`.
    pub(crate) replication: Option<Mutex<crate::replicate::ReplicationState>>,
}

impl EngineShared {
    /// How many speculation attempts sit out after a validation failure
    /// before workers try again (see [`EngineShared::spec_penalty`]).
    const SPEC_DISCARD_PENALTY: usize = 8;

    /// Deficit at which a repeatedly rejected client becomes *starving* and
    /// freed capacity is reserved for it. Deficit grows by the priority
    /// weight per rejection, so a `High` client starves (and is rescued)
    /// after 4 rejections, a `Low` client after 16 — weighted, but always
    /// eventual.
    const STARVATION_DEFICIT: u64 = 16;

    /// Whether the slot at `idx` can never run again (terminated, failed, or
    /// evicted by compaction — eviction is restricted to terminal slots).
    fn slot_terminal_locked(slots: &SlotTable, idx: usize) -> bool {
        match slots.get(idx) {
            None => true,
            Some(cell) => {
                let slot = lock(&cell.slot);
                slot.failed.is_some() || slot.exec.is_terminated()
            }
        }
    }

    /// Fair-share admission check for a batch of `n` updates, called with the
    /// slot table locked (so in-flight counts cannot move underneath it).
    ///
    /// Anonymous submissions (`client == None`) see only the global cap —
    /// the pre-QoS behavior. Identified submissions additionally get:
    ///
    /// 1. a **weighted fair share** of the cap while other clients contend
    ///    (`cap · w_c / Σw` over clients with live work or unpaid deficit,
    ///    never below 1);
    /// 2. a **starvation reservation**: every rejection grows the client's
    ///    deficit by its priority weight, and once some client's deficit
    ///    reaches [`Self::STARVATION_DEFICIT`], freed capacity is refused to
    ///    everyone else until the starving client is admitted.
    ///
    /// Together these guarantee a persistent low-priority client eventual
    /// admission: its deficit only grows while it is refused, starvation
    /// reserves it the next freed slot, and admission resets the deficit.
    fn check_admission(
        &self,
        slots: &SlotTable,
        client: Option<(ClientId, Priority)>,
        n: usize,
    ) -> Result<(), SubmitError> {
        let cap = self.config.admission_cap;
        let active = self.active.load(Ordering::SeqCst);
        let Some((client_id, priority)) = client else {
            if active.saturating_add(n) > cap {
                let retry_after = RetryAfter { completions: active.saturating_add(n) - cap };
                return Err(SubmitError::Saturated { active, cap, retry_after });
            }
            return Ok(());
        };
        let mut admission = lock(&self.admission);
        // Lazily prune: a client's in-flight count is its admitted slots that
        // are still live. Terminal and evicted slots drop out here.
        for state in admission.values_mut() {
            state.admitted.retain(|&idx| !Self::slot_terminal_locked(slots, idx));
        }
        admission.retain(|_, s| !s.admitted.is_empty() || s.deficit > 0);
        let entry = admission.entry(client_id).or_default();
        entry.weight = priority.weight();
        let deficit = entry.deficit;
        let reject = |admission: &mut BTreeMap<ClientId, ClientAdmission>,
                      completions: usize|
         -> SubmitError {
            let e = admission.entry(client_id).or_default();
            e.deficit += priority.weight();
            SubmitError::Saturated {
                active,
                cap,
                retry_after: RetryAfter { completions: completions.max(1) },
            }
        };
        // Rule 0: the global cap binds everyone.
        if active.saturating_add(n) > cap {
            let over = active.saturating_add(n) - cap;
            return Err(reject(&mut admission, over));
        }
        let starving = deficit >= Self::STARVATION_DEFICIT;
        // Rule 1: weighted fair share, while other clients contend. A
        // starving client bypasses its share — the reservation below has
        // already throttled everyone else on its behalf.
        if !starving && admission.len() > 1 {
            let entry = admission.get(&client_id).expect("just inserted");
            let total_weight: u64 = admission.values().map(|s| s.weight.max(1)).sum();
            let share =
                ((cap as u128 * priority.weight() as u128) / total_weight.max(1) as u128) as usize;
            let share = share.max(1);
            let in_flight = entry.admitted.len();
            if in_flight.saturating_add(n) > share {
                let over = in_flight.saturating_add(n) - share;
                return Err(reject(&mut admission, over));
            }
        }
        // Rule 2: starvation reservation. Admitting would leave fewer free
        // slots than there are *other* starving clients → this submission is
        // eating capacity reserved for them.
        if !starving {
            let others_starving = admission
                .iter()
                .filter(|(id, s)| **id != client_id && s.deficit >= Self::STARVATION_DEFICIT)
                .count();
            let free_after = cap.saturating_sub(active.saturating_add(n));
            if others_starving > free_after {
                return Err(reject(&mut admission, 1));
            }
        }
        Ok(())
    }

    /// Records a successful identified admission: the client's deficit is
    /// paid off and its in-flight slots are tracked for fair-share checks.
    fn record_admission(
        &self,
        client: Option<(ClientId, Priority)>,
        slots: std::ops::Range<usize>,
    ) {
        let Some((client_id, priority)) = client else { return };
        let mut admission = lock(&self.admission);
        let entry = admission.entry(client_id).or_default();
        entry.deficit = 0;
        entry.weight = priority.weight();
        entry.admitted.extend(slots);
    }

    /// The cell at `idx`, or `None` when compaction evicted it. Callers on
    /// abort paths treat `None` as "terminal, nothing to do" — eviction is
    /// restricted to updates that can never be revived.
    fn slot_cell(&self, idx: usize) -> Option<Arc<SlotCell>> {
        self.slots.read().unwrap_or_else(|e| e.into_inner()).get(idx).cloned()
    }

    /// Single-acquisition keyed lookup: the index *and* the cell under one
    /// read lock, so a concurrent compaction cannot evict the slot between
    /// the bounds check and the fetch. `None` when the update was never
    /// admitted or its record was evicted.
    fn lookup_cell(&self, update: UpdateId) -> Option<(usize, Arc<SlotCell>)> {
        let idx = update.0.checked_sub(self.config.first_update_number)? as usize;
        let slots = self.slots.read().unwrap_or_else(|e| e.into_inner());
        Some((idx, slots.get(idx)?.clone()))
    }

    /// Keyed lookup distinguishing "evicted" from "never admitted".
    pub(crate) fn lookup(&self, update: UpdateId) -> Result<Arc<SlotCell>, LookupError> {
        let Some(idx) = update.0.checked_sub(self.config.first_update_number).map(|i| i as usize)
        else {
            return Err(LookupError::UnknownUpdate(update));
        };
        let slots = self.slots.read().unwrap_or_else(|e| e.into_inner());
        if idx >= slots.total() {
            return Err(LookupError::UnknownUpdate(update));
        }
        match slots.get(idx) {
            Some(cell) => Ok(cell.clone()),
            None => Err(LookupError::SlotEvicted(update)),
        }
    }

    /// Admits `ops` into the locked slot table with consecutive priority
    /// numbers, returning the new cells. Shared by the public submit path and
    /// recovery replay (which is why it does not build handles or touch the
    /// WAL).
    pub(crate) fn admit_locked(
        &self,
        slots: &mut SlotTable,
        ops: Vec<InitialOp>,
    ) -> Vec<(UpdateId, Arc<SlotCell>)> {
        let base = slots.total();
        let mut out = Vec::with_capacity(ops.len());
        {
            let mut all_ids = lock(&self.all_ids);
            for (i, op) in ops.into_iter().enumerate() {
                let id = UpdateId(self.config.first_update_number + (base + i) as u64);
                let cell = Arc::new(SlotCell {
                    slot: Mutex::new(Slot {
                        exec: UpdateExecution::configured(
                            id,
                            op,
                            self.config.scheduler.chase_mode,
                            self.config.scheduler.violation_state,
                        ),
                        speculation: None,
                        frontier_wait: 0,
                        parked: false,
                        published: None,
                        failed: None,
                    }),
                    abort_requested: AtomicBool::new(false),
                });
                slots.cells.push_back(Arc::clone(&cell));
                all_ids.push(id);
                out.push((id, cell));
            }
        }
        self.active.fetch_add(out.len(), Ordering::SeqCst);
        lock(&self.metrics).workload_size += out.len();
        out
    }

    /// Replays a WAL tail after a crash: each record is driven to its action
    /// stamp (re-executing the intervening chase work through the
    /// deterministic sequencer) and then injected exactly where the original
    /// call landed — directly, bypassing the public API, so nothing is
    /// re-appended to the log.
    fn replay(&self, tail: impl Iterator<Item = WalRecord>) -> Result<(), RecoveryError> {
        let mut cur = lock(&self.cursor);
        for record in tail {
            match record {
                WalRecord::Header { .. } => {
                    return Err(RecoveryError::Corrupt("header record mid-log".into()));
                }
                WalRecord::Submit { first, stamp, ops } => {
                    self.drive_to_stamp(&mut cur, stamp)?;
                    let mut slots = self.slots.write().unwrap_or_else(|e| e.into_inner());
                    let expected = self.config.first_update_number + slots.total() as u64;
                    if first != expected {
                        return Err(RecoveryError::Replay(format!(
                            "submission logged as u{first} would be admitted as u{expected}"
                        )));
                    }
                    let base = slots.total();
                    let count = self.admit_locked(&mut slots, ops).len();
                    cur.live.extend(base..base + count);
                }
                WalRecord::Answer { token, stamp, decision, origin } => {
                    self.drive_to_stamp(&mut cur, stamp)?;
                    let entry = lock(&self.pending).remove(&token);
                    let Some(entry) = entry else {
                        return Err(RecoveryError::Replay(format!(
                            "answer for token {token} found nothing pending"
                        )));
                    };
                    // A decision the original run rejected as invalid is
                    // rejected here too (deterministically), restoring the
                    // pending entry — its retry records follow in the log.
                    // System answers replay from the log exactly like human
                    // ones: the live sweeper is suppressed while `replaying`,
                    // so an escalation is never re-decided.
                    let _ = self.apply_answer(FrontierToken(token), entry, decision, origin);
                }
            }
            if let Some(e) = lock(&self.error).clone() {
                return Err(RecoveryError::Replay(format!("engine failed during replay: {e}")));
            }
        }
        Ok(())
    }

    /// Runs the sequencer until the durable action counter reaches `stamp`.
    /// Falling idle, blocking on a frontier without progress, or moving past
    /// the stamp all mean the log does not describe this engine's history.
    fn drive_to_stamp(&self, cur: &mut DetCursor, stamp: u64) -> Result<(), RecoveryError> {
        let d = self.durable.as_ref().expect("replay requires a durable engine");
        loop {
            let now = d.actions.load(Ordering::SeqCst);
            if now == stamp {
                return Ok(());
            }
            if now > stamp {
                return Err(RecoveryError::Replay(format!(
                    "overshot action stamp {stamp} (counter is at {now})"
                )));
            }
            match self.det_action(cur) {
                Ok(DetProgress::Acted) => {}
                Ok(DetProgress::AwaitingAnswer) => {
                    // A frontier publish counts as an action (it bumped the
                    // counter on the way to AwaitingAnswer); blocking without
                    // the bump means the stamp is unreachable.
                    if d.actions.load(Ordering::SeqCst) == now {
                        return Err(RecoveryError::Replay(format!(
                            "blocked on an unanswered frontier {} action(s) before stamp {stamp}",
                            stamp - now
                        )));
                    }
                }
                Ok(DetProgress::Idle) => {
                    return Err(RecoveryError::Replay(format!(
                        "sequencer idle {} action(s) before stamp {stamp}",
                        stamp - now
                    )));
                }
                Err(e) => {
                    return Err(RecoveryError::Replay(format!("chase error during replay: {e}")));
                }
            }
        }
    }

    pub(crate) fn fail(&self, e: ChaseError) {
        let mut slot = lock(&self.error);
        if slot.is_none() {
            *slot = Some(e);
        }
        self.stop.store(true, Ordering::SeqCst);
        self.signal.bump();
    }

    // ------------------------------------------------------------------
    // Shared step machinery (both modes) — ported from `ParallelRun`
    // ------------------------------------------------------------------

    /// Records the read queries a step (or frontier resolution) performed:
    /// dependencies first, then the retained read log. The caller holds the
    /// database read lock — recording before that lock is released is what
    /// guarantees any later-committing write sees these reads when it
    /// validates.
    fn record_reads_locked(&self, db: &Database, reader: UpdateId, reads: Vec<ReadQuery>) {
        if reads.is_empty() {
            return;
        }
        // Solo fast path: if `reader` is the only in-flight update it is the
        // lowest-numbered one, and stays so forever (priority numbers are
        // monotone and terminated updates below it can never run again). Its
        // stored reads could only ever be consulted when a *lower*-numbered
        // writer validates — no such writer will ever exist — so recording
        // them (and the tracker's dependency walk, the expensive half of a
        // step) is pure overhead. Updates submitted later get numbered above
        // `reader` and record normally. This is what keeps the one-at-a-time
        // `UpdateExchange` façade at near single-threaded cost.
        if self.active.load(Ordering::SeqCst) <= 1 {
            return;
        }
        {
            let snap = db.snapshot(reader);
            lock(&self.tracker).record_reads(
                reader,
                &reads,
                &self.write_log,
                &snap,
                &self.mappings,
            );
        }
        self.read_log.record(reader, reads, &self.mappings);
    }

    /// Executes one chase step for the locked slot: write half under the
    /// database write lock, read half (analysis, logging, read recording and
    /// conflict collection) under a read lock. Returns the step outcome and
    /// the consolidated abort set — the caller decides how to execute the
    /// aborts (synchronously in deterministic mode, via flags when
    /// free-running).
    ///
    /// A speculation parked on the slot *is* the step, already executed
    /// against a snapshot: if every epoch and allocator it observed is
    /// unchanged, its buffered writes are re-applied for real (regenerating
    /// sequence numbers at the commit point) and its advanced execution clone
    /// grafted in — byte-identical to executing the step here, minus all the
    /// analysis. An invalidated speculation is discarded and the step
    /// re-executes directly.
    fn step_and_validate(
        &self,
        slot: &mut Slot,
    ) -> Result<(StepOutcome, BTreeSet<UpdateId>), ChaseError> {
        // Safety valve, checked per step so the error names the update that
        // was actually stepping when the limit tripped.
        if lock(&self.metrics).steps >= self.config.scheduler.max_total_steps {
            return Err(ChaseError::StepLimitExceeded {
                update: slot.exec.id(),
                limit: self.config.scheduler.max_total_steps,
            });
        }
        let mut committed: Option<StepOutcome> = None;
        if let Some(mut spec) = slot.speculation.take() {
            let mut db = self.db.write().unwrap_or_else(|e| e.into_inner());
            if spec.reads.still_valid(&db) {
                // The writes re-apply against the same visible state the
                // overlay shadowed (that is what validation established), so
                // they cannot fail and they allocate the very tuple ids the
                // buffered outcome and grafted execution already embed.
                let writes: Vec<Write> = spec.outcome.writes.drain(..).map(|aw| aw.write).collect();
                let applied = db.apply_all_owned(writes, slot.exec.id())?;
                spec.reads.commit_allocators(&db);
                slot.exec = spec.exec;
                // The grafted execution's delta cursor was advanced against
                // the overlay's *projected* sequence; re-anchor it to the real
                // one while the write lock still excludes interleaved commits.
                // Any delta the jump skips is either this update's own
                // re-applied write (epochs already stamped in the grafted
                // queue) or a relation its queue does not watch — anything
                // else would have failed validation, because the overlay feed
                // pinned every watched relation as an epoch read.
                slot.exec.sync_delta_cursor(youtopia_storage::ViolationFeed::delta_seq(&*db));
                committed = Some(StepOutcome { writes: applied, ..spec.outcome });
                lock(&self.metrics).speculations_committed += 1;
                self.spec_penalty.store(0, Ordering::Relaxed);
            } else {
                lock(&self.metrics).speculations_discarded += 1;
                self.spec_penalty.store(Self::SPEC_DISCARD_PENALTY, Ordering::Relaxed);
            }
        }
        let applied = match committed {
            Some(_) => None,
            None => {
                let mut db = self.db.write().unwrap_or_else(|e| e.into_inner());
                Some(slot.exec.begin_step(&mut *db)?)
            }
        };
        let db = self.db.read().unwrap_or_else(|e| e.into_inner());
        let outcome = match committed {
            Some(outcome) => outcome,
            None => slot.exec.finish_step(
                &*db,
                &self.mappings,
                applied.expect("direct path applied its writes"),
            )?,
        };
        {
            let mut metrics = lock(&self.metrics);
            metrics.steps += 1;
            metrics.changes += outcome.writes.iter().map(|w| w.changes.len()).sum::<usize>();
        }
        let id = outcome.update;

        // Log writes (for dependency tracking) and reads (for conflicts).
        self.write_log.push_all(&outcome.writes);
        lock(&self.tracker).record_writes(id, &outcome.writes);
        self.record_reads_locked(&db, id, outcome.reads.clone());

        // Algorithm 4: check every change against the stored reads of
        // higher-numbered updates; cascade through the tracker.
        let changes: Vec<TupleChange> =
            outcome.writes.iter().flat_map(|w| w.changes.iter().cloned()).collect();
        let to_abort = self.collect_aborts_locked(&db, id, &changes);
        Ok((outcome, to_abort))
    }

    /// Computes the consolidated abort set caused by a step's changes —
    /// direct conflicts plus the transitive read-dependents of each directly
    /// conflicting update — with the same candidate walk and request
    /// accounting as the single-threaded scheduler, over the striped logs.
    /// The caller holds the database read lock.
    fn collect_aborts_locked(
        &self,
        db: &Database,
        writer: UpdateId,
        changes: &[TupleChange],
    ) -> BTreeSet<UpdateId> {
        let mut pending: BTreeSet<UpdateId> = BTreeSet::new();
        if changes.is_empty() {
            return pending;
        }
        let tracker = lock(&self.tracker);
        let all_ids = lock(&self.all_ids);
        // Request counters accumulate locally so the global metrics mutex is
        // taken once, at the end — other workers' per-step counter bumps must
        // not queue behind this walk's query re-evaluation.
        let mut direct_requests = 0usize;
        let mut cascading_requests = 0usize;
        for change in changes {
            let relation = change.relation();
            for reader in self.read_log.readers_above_touching(writer, relation) {
                let conflicts = {
                    let snapshot = db.snapshot(reader);
                    self.read_log
                        .queries_touching(reader, relation)
                        .iter()
                        .any(|q| q.affected_by(&snapshot, &self.mappings, change))
                };
                if !conflicts {
                    continue;
                }
                direct_requests += 1;
                pending.insert(reader);
                // Cascade: everyone who (transitively) read from the aborted
                // reader must abort too; every request is counted, even when
                // the target is already marked (see ConcurrentRun).
                let mut stack = vec![reader];
                let mut visited: BTreeSet<UpdateId> = BTreeSet::new();
                visited.insert(reader);
                while let Some(a) = stack.pop() {
                    for dependent in tracker.dependents_of(a, &all_ids) {
                        if dependent <= writer {
                            continue;
                        }
                        cascading_requests += 1;
                        pending.insert(dependent);
                        if visited.insert(dependent) {
                            stack.push(dependent);
                        }
                    }
                }
            }
        }
        if direct_requests > 0 || cascading_requests > 0 {
            let mut metrics = lock(&self.metrics);
            metrics.direct_conflict_requests += direct_requests;
            metrics.cascading_abort_requests += cascading_requests;
        }
        pending
    }

    /// Free-running only: an abort's (or failure's) rollback is a write like
    /// any other — returns the updates whose recorded reads it retroactively
    /// invalidated (checked exactly, per read query — never via the tracker,
    /// whose conservative answers would make abort waves feed on themselves
    /// under `NAIVE`). The caller feeds them back into the abort machinery.
    fn validate_rollback(&self, victim: UpdateId, rolled_back: &[TupleChange]) -> Vec<UpdateId> {
        let mut undone_readers: Vec<UpdateId> = Vec::new();
        if rolled_back.is_empty() {
            return undone_readers;
        }
        let db = self.db.read().unwrap_or_else(|e| e.into_inner());
        for change in rolled_back {
            let relation = change.relation();
            for reader in self.read_log.readers_above_touching(victim, relation) {
                if undone_readers.contains(&reader) {
                    continue;
                }
                let snapshot = db.snapshot(reader);
                if self
                    .read_log
                    .queries_touching(reader, relation)
                    .iter()
                    .any(|q| q.affected_by(&snapshot, &self.mappings, change))
                {
                    undone_readers.push(reader);
                }
            }
        }
        if !undone_readers.is_empty() {
            // One metrics acquisition after the walk — query re-evaluation
            // must not hold the global counter mutex.
            lock(&self.metrics).direct_conflict_requests += undone_readers.len();
        }
        undone_readers
    }

    /// Performs the consolidated abort of a slot whose lock the caller holds:
    /// roll back its writes, invalidate its published frontier token, clear
    /// its logs and dependency bookkeeping, reset it to redo its initial
    /// operation. `revive` is true when the slot had already terminated — the
    /// abort brings it back into the active count and the caller must hand it
    /// back to the scheduler (queue or live set).
    fn execute_abort(
        &self,
        cell: &SlotCell,
        slot: &mut Slot,
        revive: bool,
        validate: bool,
    ) -> Vec<UpdateId> {
        let victim = slot.exec.id();
        // `validate` captures the victim's logged changes before they go
        // away; their inverses are validated like writes. Conflict-decided
        // aborts under the deterministic sequencer pass `false`: they happen
        // synchronously inside the validation that decided them, exactly
        // like the single-threaded reference, so no reader can slip in
        // between and validating would only skew reference metrics. Every
        // other abort (free-running, or cascading from a budget failure)
        // validates.
        let rolled_back: Vec<TupleChange> = if validate {
            self.write_log.changes_of(victim).iter().map(invert_change).collect()
        } else {
            Vec::new()
        };
        {
            let mut db = self.db.write().unwrap_or_else(|e| e.into_inner());
            db.rollback_update(victim);
        }
        if let Some(token) = slot.published.take() {
            lock(&self.pending).remove(&token.0);
            self.unanswered.fetch_sub(1, Ordering::SeqCst);
        }
        // A parked speculation pre-executed the state this abort is wiping
        // out; discard it.
        let stale_speculation = slot.speculation.take().is_some();
        slot.exec.reset_for_restart();
        slot.frontier_wait = 0;
        self.read_log.clear(victim);
        self.write_log.remove_update(victim);
        {
            let mut tracker = lock(&self.tracker);
            tracker.note_abort(victim);
            tracker.clear_update(victim);
        }
        {
            let mut metrics = lock(&self.metrics);
            metrics.aborts += 1;
            if stale_speculation {
                metrics.speculations_discarded += 1;
            }
        }
        let undone_readers = self.validate_rollback(victim, &rolled_back);
        cell.abort_requested.store(false, Ordering::SeqCst);
        if revive {
            self.active.fetch_add(1, Ordering::SeqCst);
        }
        self.signal.bump();
        undone_readers
    }

    /// Fails the locked slot terminally (per-update step budget): its writes
    /// are rolled back (validated like an abort's in free mode), its logs and
    /// bookkeeping cleared, and the error parked on the slot for its handle.
    /// Unlike an abort it does not restart.
    fn fail_slot(&self, cell: &SlotCell, slot: &mut Slot, error: ChaseError) -> Vec<UpdateId> {
        let victim = slot.exec.id();
        // Unlike a conflict-decided abort, a budget failure fires at an
        // arbitrary point in the schedule — in *both* modes its rollback can
        // retroactively invalidate reads other updates already performed, so
        // it is always validated like a write and the caller must abort the
        // returned dependents (synchronously under the deterministic
        // sequencer, via `abort_all` when free-running).
        let rolled_back: Vec<TupleChange> =
            self.write_log.changes_of(victim).iter().map(invert_change).collect();
        {
            let mut db = self.db.write().unwrap_or_else(|e| e.into_inner());
            db.rollback_update(victim);
        }
        if let Some(token) = slot.published.take() {
            lock(&self.pending).remove(&token.0);
            self.unanswered.fetch_sub(1, Ordering::SeqCst);
        }
        self.read_log.clear(victim);
        self.write_log.remove_update(victim);
        lock(&self.tracker).clear_update(victim);
        if slot.speculation.take().is_some() {
            lock(&self.metrics).speculations_discarded += 1;
        }
        slot.failed = Some(error);
        slot.parked = true;
        self.active.fetch_sub(1, Ordering::SeqCst);
        let undone_readers = self.validate_rollback(victim, &rolled_back);
        cell.abort_requested.store(false, Ordering::SeqCst);
        self.signal.bump();
        undone_readers
    }

    /// Quiescence garbage collection: once nothing is active, in flight or
    /// awaiting an answer, every retained read, logged write and tracker
    /// dependency is provably dead — only a still-running lower-numbered
    /// update could ever consult them again, and there is none. Dropping
    /// them keeps a long-lived engine's per-update cost flat instead of
    /// taxing update N with the whole history of updates 1..N (the wildcard
    /// reader walk alone would otherwise scan every past null-occurrence
    /// query on every change).
    ///
    /// Serialised against submission by the slots write lock: a submission
    /// that won the lock first left `active > 0` (checked again inside), and
    /// one that comes after finds freshly cleared logs its update has not
    /// touched yet. A worker cannot be mid-step here — a popped slot is
    /// non-terminated, which keeps `active > 0` for as long as it is owned.
    fn maybe_gc(&self) {
        if self.active.load(Ordering::SeqCst) != 0 || self.in_flight.load(Ordering::SeqCst) != 0 {
            return;
        }
        let mut slots = self.slots.write().unwrap_or_else(|e| e.into_inner());
        if self.active.load(Ordering::SeqCst) != 0
            || self.in_flight.load(Ordering::SeqCst) != 0
            || self.unanswered.load(Ordering::SeqCst) != 0
        {
            return;
        }
        self.read_log.clear_all();
        self.write_log.clear_all();
        *lock(&self.tracker) = self.config.scheduler.tracker.build();
        // The shared violation index's delta backlog is dead for the same
        // reason: only live executions hold cursors into it, and there are
        // none. Dropping it (rather than letting the cap drain it lazily)
        // means a burst of speculative discards or a huge quiescent workload
        // cannot leave buffered deltas pinned across idle periods; any
        // later-admitted update starts at the post-truncation sequence, and a
        // stale cursor would surface as a gap (all-dirty fallback), not a
        // missed delta.
        crate::viewmaint::clear(&mut self.db.write().unwrap_or_else(|e| e.into_inner()));
        self.compact_locked(&mut slots);
        // Quiescence is a durability point: any group-commit window still
        // open is flushed so an idle engine never sits on unsynced records.
        if let Some(d) = &self.durable {
            if let Err(e) = lock(&d.wal).flush() {
                self.fail(ChaseError::InvalidDecision(format!("wal flush failed: {e}")));
                return;
            }
        }
        self.maybe_snapshot_locked(&slots);
    }

    /// Evicts terminal slots past the retention horizon from the front of the
    /// locked table, together with their per-update log and tracker state.
    /// Front-only eviction is what keeps it sound: abort victims are always
    /// numbered strictly above the conflicting writer, so once every slot
    /// below an update is evicted (hence terminal, by induction from slot 0,
    /// which has no lower neighbours at all), no writer that could revive it
    /// or consult its reads can ever run again.
    fn compact_locked(&self, slots: &mut SlotTable) {
        let horizon = self.config.retention_horizon;
        while slots.cells.len() > horizon {
            let Some(front) = slots.cells.front() else { break };
            // A requested abort on the front slot cannot be legitimate (its
            // would-be writer is lower-numbered and terminal), but never
            // evict one mid-request — the flag's owner still expects the cell.
            if front.abort_requested.load(Ordering::SeqCst) {
                break;
            }
            let Ok(slot) = front.slot.try_lock() else { break };
            let terminal = slot.failed.is_some() || slot.exec.is_terminated();
            if !terminal || slot.published.is_some() {
                break;
            }
            let id = slot.exec.id();
            drop(slot);
            slots.cells.pop_front();
            slots.base += 1;
            self.read_log.clear(id);
            self.write_log.remove_update(id);
            lock(&self.tracker).clear_update(id);
            let mut all_ids = lock(&self.all_ids);
            if let Ok(pos) = all_ids.binary_search(&id) {
                all_ids.remove(pos);
            }
        }
    }

    /// Opportunistic compaction: a cheap read-locked length check, then the
    /// write-locked eviction walk only when the horizon is actually exceeded.
    fn maybe_compact(&self) {
        if self.config.retention_horizon == usize::MAX {
            return;
        }
        {
            let slots = self.slots.read().unwrap_or_else(|e| e.into_inner());
            if slots.cells.len() <= self.config.retention_horizon {
                return;
            }
        }
        let mut slots = self.slots.write().unwrap_or_else(|e| e.into_inner());
        self.compact_locked(&mut slots);
    }

    /// Writes a snapshot (and restarts the log) if the engine is durable, not
    /// replaying, and enough records accumulated since the last one. The
    /// caller holds the slots write lock at quiescence — every retained slot
    /// is terminal and the database is stable.
    fn maybe_snapshot_locked(&self, slots: &SlotTable) {
        let Some(d) = &self.durable else { return };
        if d.replaying.load(Ordering::SeqCst) {
            return;
        }
        let records = d.records.load(Ordering::SeqCst);
        if records - d.last_snapshot.load(Ordering::SeqCst) < d.config.snapshot_every {
            return;
        }
        if let Err(e) = self.write_snapshot_locked(slots, records) {
            self.fail(ChaseError::InvalidDecision(format!("snapshot write failed: {e}")));
        }
    }

    fn write_snapshot_locked(
        &self,
        slots: &SlotTable,
        records: u64,
    ) -> Result<(), youtopia_storage::WalError> {
        let d = self.durable.as_ref().expect("snapshot on a durable engine");
        // The log being superseded must be fully on disk before the snapshot
        // that claims to cover it: a crash between the two may fall back to
        // replaying the old log, whose tail would otherwise be missing.
        lock(&d.wal).flush()?;
        let mut summaries = Vec::with_capacity(slots.cells.len());
        for cell in &slots.cells {
            let slot = lock(&cell.slot);
            summaries.push(SlotSummary {
                id: slot.exec.id().0,
                initial: slot.exec.initial().clone(),
                stats: slot.exec.stats(),
                terminated: slot.exec.is_terminated(),
                failed: slot.failed.clone(),
            });
        }
        let meta = SnapshotMeta {
            fingerprint: d.fingerprint,
            records,
            actions: d.actions.load(Ordering::SeqCst),
            next_token: self.next_token.load(Ordering::SeqCst),
            slot_base: slots.base as u64,
            slots: summaries,
            metrics: lock(&self.metrics).clone(),
        };
        let bytes = {
            let db = self.db.read().unwrap_or_else(|e| e.into_inner());
            encode_snapshot(&meta, &db)
        };
        write_file_atomic(&d.config.snapshot_path(), &bytes)?;
        // Restart the log under a fresh header whose base records how much
        // the snapshot now covers. Written to a sibling and renamed, so a
        // crash leaves either the old full log (its surplus head is skipped
        // at recovery) or the new empty one — never a torn file.
        let wal_path = d.config.wal_path();
        let tmp = wal_path.with_extension("log.tmp");
        let mut fresh = WalWriter::create(&tmp)?;
        fresh.append(&encode_header(d.fingerprint, records))?;
        let len = fresh.position();
        drop(fresh);
        std::fs::rename(&tmp, &wal_path)?;
        let mut writer = WalWriter::open_append(&wal_path, len)?;
        writer.set_group_commit(d.config.group_commit);
        *lock(&d.wal) = writer;
        d.last_snapshot.store(records, Ordering::SeqCst);
        Ok(())
    }

    /// Bumps the durable action counter (no-op on a plain engine): every
    /// acting sequencer step and every frontier publish counts. WAL records
    /// carry the counter's value as their stamp, which is how replay knows
    /// exactly how much chase work to re-execute before injecting each one.
    fn bump_action(&self) {
        if let Some(d) = &self.durable {
            d.actions.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Publishes the locked slot's pending frontier request under a fresh
    /// token. Idempotent while a token is outstanding.
    fn publish_frontier(&self, slot: &mut Slot, idx: usize) {
        if slot.published.is_some() {
            return;
        }
        // The publish itself counts as an action: a submission arriving while
        // this request is published-but-unanswered must be stamp-
        // distinguishable from one arriving just before the publish, or
        // replay could interleave them the wrong way round.
        self.bump_action();
        let token = FrontierToken(self.next_token.fetch_add(1, Ordering::SeqCst));
        let request = slot.exec.pending_frontier().expect("state is AwaitingFrontier").clone();
        slot.published = Some(token);
        slot.parked = true;
        self.unanswered.fetch_add(1, Ordering::SeqCst);
        let published_at =
            self.durable.as_ref().map(|d| d.actions.load(Ordering::SeqCst)).unwrap_or(0);
        lock(&self.pending).insert(
            token.0,
            PendingEntry {
                update: slot.exec.id(),
                slot: idx,
                request,
                published_at,
                age: 0,
                escalations: 0,
            },
        );
        self.signal.bump();
    }

    /// Applies an answered decision to the owning slot. The pending entry has
    /// already been removed by the caller; on a rejected (invalid) decision it
    /// is restored under the same token so the user can retry.
    pub(crate) fn apply_answer(
        &self,
        token: FrontierToken,
        entry: PendingEntry,
        decision: FrontierDecision,
        origin: ResolutionOrigin,
    ) -> Result<AnswerOutcome, ChaseError> {
        let Some(cell) = self.slot_cell(entry.slot) else { return Ok(AnswerOutcome::Stale) };
        let mut slot = lock(&cell.slot);
        if slot.published != Some(token) || slot.exec.state() != UpdateState::AwaitingFrontier {
            return Ok(AnswerOutcome::Stale);
        }
        let id = slot.exec.id();
        {
            // One read-lock session covers the frontier resolution and the
            // recording of its correction queries: a write committing after
            // this session needs the write lock, i.e. happens after the reads
            // it must be validated against are in the log.
            let db = self.db.read().unwrap_or_else(|e| e.into_inner());
            match slot.exec.resolve_frontier(&self.mappings, decision) {
                Ok(reads) => {
                    {
                        let mut metrics = lock(&self.metrics);
                        metrics.frontier_ops += 1;
                        if origin == ResolutionOrigin::System {
                            // Replay-stable (recounted from the WAL's origin
                            // bytes), so it survives snapshot folding — see
                            // the snapshot codec.
                            metrics.auto_resolutions += 1;
                        }
                    }
                    self.record_reads_locked(&db, id, reads);
                }
                Err(e) => {
                    // The execution restored its request; re-list it under
                    // the same token so the user can retry.
                    lock(&self.pending).insert(token.0, entry);
                    return Err(e);
                }
            }
        }
        slot.published = None;
        self.unanswered.fetch_sub(1, Ordering::SeqCst);
        if self.deterministic {
            drop(slot);
        } else {
            slot.parked = false;
            let shard = self.shard_of(&slot.exec);
            drop(slot);
            self.enqueue(shard, entry.slot);
            self.settle_flag(entry.slot);
        }
        self.signal.bump();
        Ok(AnswerOutcome::Applied)
    }

    // ------------------------------------------------------------------
    // Deterministic mode: the reference serialisation order, open world
    // ------------------------------------------------------------------

    fn det_worker(&self) {
        let _guard = WorkerGuard { shared: self };
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            // Generation first, action second: any event that would unblock
            // the sequencer (submission, answer) after this capture moves the
            // generation and makes the wait below return immediately; any
            // event before it is visible to `det_action`. No lost wakeups.
            let gen = self.signal.current();
            // Speculative mode turns cursor contention into useful work: a
            // worker that would otherwise queue on the sequencer pre-executes
            // an upcoming step against a snapshot instead. With nothing left
            // to pre-execute it falls back to *blocking* on the cursor — the
            // mutex handoff is what keeps it live across releases that are
            // not followed by a signal bump (a durable `submit`/`answer`
            // holds the cursor from the caller's thread and releases it
            // silently).
            let mut cur = if self.speculate {
                match self.cursor.try_lock() {
                    Ok(cur) => cur,
                    Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => {
                        if self.try_speculate() {
                            continue;
                        }
                        lock(&self.cursor)
                    }
                }
            } else {
                lock(&self.cursor)
            };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            match self.det_action(&mut cur) {
                Ok(DetProgress::Acted) => {}
                Ok(DetProgress::Idle | DetProgress::AwaitingAnswer) => {
                    drop(cur);
                    self.signal.wait_past(gen);
                }
                Err(e) => {
                    drop(cur);
                    self.fail(e);
                    break;
                }
            }
        }
    }

    /// Pre-executes one upcoming chase step against a read-locked snapshot,
    /// parking the buffered result on its slot for the sequencer to validate
    /// at the commit point. Scans the live window from the sequencer's
    /// published position; every filter is a `try_lock` or a cheap check —
    /// a speculator never blocks another worker. Returns whether a
    /// speculation ran (even one that errored — the slot was claimed and
    /// progress made), so the caller knows whether to sleep.
    fn try_speculate(&self) -> bool {
        const SPEC_SCAN_WINDOW: usize = 32;
        // Back off while the penalty runs down: recent validation failures
        // mean commits are landing faster than overlays stay fresh, so a
        // speculative step here would almost certainly be discarded too.
        if self
            .spec_penalty
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| p.checked_sub(1))
            .is_ok()
        {
            return false;
        }
        let (base, total) = {
            let slots = self.slots.read().unwrap_or_else(|e| e.into_inner());
            (slots.base, slots.total())
        };
        let span = total - base;
        if span == 0 {
            return false;
        }
        let hint = self.spec_next.load(Ordering::Relaxed).clamp(base, total - 1);
        for k in 0..span.min(SPEC_SCAN_WINDOW) {
            let idx = base + (hint - base + k) % span;
            let Some(cell) = self.slot_cell(idx) else { continue };
            if cell.abort_requested.load(Ordering::SeqCst) {
                continue;
            }
            let Ok(mut slot) = cell.slot.try_lock() else { continue };
            if slot.failed.is_some()
                || slot.speculation.is_some()
                || slot.exec.state() != UpdateState::Ready
                || slot.exec.stats().steps >= self.config.max_steps_per_update
            {
                continue;
            }
            lock(&self.metrics).speculations_started += 1;
            let mut exec = slot.exec.clone();
            let id = exec.id();
            // One read-lock session covers the whole speculative step: the
            // overlay shadows this exact committed state, and the read set
            // proves at commit time that it is still the state the sequencer
            // sees. The slot lock is held throughout — the sequencer reaching
            // this slot queues behind the speculation it is about to consume.
            let speculation = {
                let db = self.db.read().unwrap_or_else(|e| e.into_inner());
                let mut overlay = SpeculativeDb::new(&db, id);
                let stepped = exec
                    .begin_step(&mut overlay)
                    .and_then(|applied| exec.finish_step(&overlay, &self.mappings, applied));
                match stepped {
                    Ok(outcome) => {
                        Some(Speculation { exec, outcome, reads: overlay.into_read_set() })
                    }
                    // A speculative error (e.g. a poisoned plan) is not acted
                    // on — the sequencer re-executes directly and surfaces it
                    // at the committed point, keeping error reports identical
                    // to a non-speculative run.
                    Err(_) => None,
                }
            };
            match speculation {
                Some(spec) => slot.speculation = Some(spec),
                None => lock(&self.metrics).speculations_discarded += 1,
            }
            return true;
        }
        false
    }

    /// Drives the deterministic sequencer on the calling thread (inline mode:
    /// there are no workers) until it goes idle or blocks on an unanswered
    /// frontier. A step error fails the engine, exactly as a worker would.
    pub(crate) fn drive_inline(&self) -> Result<(), ChaseError> {
        let mut cur = lock(&self.cursor);
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match self.det_action(&mut cur) {
                Ok(DetProgress::Acted) => {}
                Ok(DetProgress::Idle | DetProgress::AwaitingAnswer) => return Ok(()),
                Err(e) => {
                    drop(cur);
                    self.fail(e.clone());
                    return Err(e);
                }
            }
        }
    }

    /// Folds newly submitted slot indices into the live set.
    fn det_absorb_incoming(&self, cur: &mut DetCursor) {
        let mut incoming = lock(&self.det_incoming);
        for idx in incoming.drain(..) {
            cur.live.insert(idx);
        }
    }

    /// One sequencer action: the body of the reference loop for the next live
    /// slot at or after the cursor. Skipping terminated slots via the live
    /// set visits exactly the indices the reference loop would act on, in the
    /// same ascending-per-round order. While a published frontier awaits its
    /// answer the sequencer refuses to act at all — the pull-based analogue
    /// of the reference blocking in its synchronous resolver call at exactly
    /// that point in the round.
    fn det_action(&self, cur: &mut DetCursor) -> Result<DetProgress, ChaseError> {
        if self.unanswered.load(Ordering::SeqCst) > 0 {
            return Ok(DetProgress::AwaitingAnswer);
        }
        self.det_absorb_incoming(cur);
        if cur.live.is_empty() {
            return Ok(DetProgress::Idle);
        }
        let idx = match cur.live.range(cur.next..).next() {
            Some(&idx) => idx,
            None => {
                // Round boundary.
                cur.next = 0;
                self.spec_next.store(0, Ordering::Relaxed);
                self.bump_action();
                return Ok(DetProgress::Acted);
            }
        };
        cur.next = idx + 1;
        // Published for speculators before the action executes: while this
        // slot commits, the profitable speculation targets are the ones after
        // it.
        self.spec_next.store(cur.next, Ordering::Relaxed);
        let Some(cell) = self.slot_cell(idx) else {
            // Compaction (which runs under this same cursor) evicted a slot a
            // stale live entry still names; evicted slots are terminal, so
            // this is the Terminated branch in disguise.
            cur.live.remove(&idx);
            self.bump_action();
            return Ok(DetProgress::Acted);
        };
        let state = lock(&cell.slot).exec.state();
        match state {
            UpdateState::Terminated => {
                cur.live.remove(&idx);
                self.bump_action();
            }
            UpdateState::AwaitingFrontier => {
                let mut slot = lock(&cell.slot);
                if slot.frontier_wait > 0 {
                    slot.frontier_wait -= 1;
                    self.bump_action();
                } else {
                    self.publish_frontier(&mut slot, idx);
                    return Ok(DetProgress::AwaitingAnswer);
                }
            }
            UpdateState::Ready => {
                self.det_run_ready_slot(cur, idx, &cell)?;
                // The action is complete — and counted — *before* quiescence
                // bookkeeping: a snapshot taken inside `maybe_gc` must record
                // the post-action counter, or replaying its WAL tail would
                // start one action short.
                self.bump_action();
                // The slot (or a failed one) may have been the last active
                // update; all slot locks are released again at this point.
                self.maybe_gc();
                self.maybe_compact();
            }
        }
        Ok(DetProgress::Acted)
    }

    /// The reference `run_ready_slot`: step, validate, abort synchronously,
    /// honour the scheduling policy. The whole routine runs under the
    /// sequencer, so victim slot locks are uncontended.
    fn det_run_ready_slot(
        &self,
        cur: &mut DetCursor,
        idx: usize,
        cell: &Arc<SlotCell>,
    ) -> Result<(), ChaseError> {
        loop {
            let mut slot = lock(&cell.slot);
            if slot.exec.stats().steps >= self.config.max_steps_per_update {
                let err = ChaseError::StepLimitExceeded {
                    update: slot.exec.id(),
                    limit: self.config.max_steps_per_update,
                };
                let dependents = self.fail_slot(cell, &mut slot, err);
                drop(slot);
                self.det_abort_worklist(cur, dependents);
                cur.live.remove(&idx);
                return Ok(());
            }
            let (outcome, to_abort) = self.step_and_validate(&mut slot)?;
            drop(slot);
            for &victim in &to_abort {
                let Some((vidx, vcell)) = self.lookup_cell(victim) else { continue };
                let mut vslot = lock(&vcell.slot);
                if vslot.failed.is_some() {
                    continue;
                }
                let was_terminated = vslot.exec.is_terminated();
                self.execute_abort(&vcell, &mut vslot, was_terminated, false);
                if was_terminated {
                    cur.live.insert(vidx);
                }
            }
            let mut slot = lock(&cell.slot);
            if outcome.frontier_request.is_some() {
                slot.frontier_wait = self.config.scheduler.frontier_delay_rounds;
            }
            if slot.exec.is_terminated() {
                cur.live.remove(&idx);
                self.active.fetch_sub(1, Ordering::SeqCst);
                self.signal.bump();
                break;
            }
            // Step-level round robin hands control back after one step; the
            // stratum policy keeps going while the update remains ready.
            if self.config.scheduler.policy == SchedulingPolicy::StepRoundRobin
                || slot.exec.state() != UpdateState::Ready
            {
                break;
            }
        }
        Ok(())
    }

    /// Executes a failure-triggered abort cascade under the sequencer: each
    /// victim's rollback is validated like a write (a budget failure fires
    /// outside any conflict validation, so readers may have slipped in
    /// between), and victims whose own rollbacks retroactively invalidate
    /// further reads are fed back into the worklist. Revived (previously
    /// terminated) victims rejoin the live set.
    fn det_abort_worklist(&self, cur: &mut DetCursor, victims: Vec<UpdateId>) {
        let mut work: VecDeque<UpdateId> = victims.into();
        while let Some(victim) = work.pop_front() {
            let Some((vidx, cell)) = self.lookup_cell(victim) else { continue };
            let mut slot = lock(&cell.slot);
            if slot.failed.is_some() {
                continue;
            }
            let was_terminated = slot.exec.is_terminated();
            let dependents = self.execute_abort(&cell, &mut slot, was_terminated, true);
            if was_terminated {
                cur.live.insert(vidx);
            }
            work.extend(dependents);
        }
    }

    // ------------------------------------------------------------------
    // Free-running mode: sharded queues, overlapping read halves
    // ------------------------------------------------------------------

    /// Shard key of an update: the smallest relation its next step can touch
    /// (pending write targets plus the violation queue's relation index), so
    /// updates about to work on the same relations land in the same queue.
    fn shard_of(&self, exec: &UpdateExecution) -> usize {
        match exec.next_touched_relations().first() {
            Some(relation) => relation.0 as usize % self.queues.len(),
            // Unknown footprint (e.g. a pending null-replacement): spread by
            // update number.
            None => exec.id().0 as usize % self.queues.len(),
        }
    }

    fn enqueue(&self, shard: usize, idx: usize) {
        lock(&self.queues[shard % self.queues.len()]).push_back(idx);
        self.signal.bump();
    }

    /// Pops a ready slot, preferring the worker's own shard and stealing from
    /// the others in ring order.
    fn pop_slot(&self, me: usize) -> Option<usize> {
        let n = self.queues.len();
        for k in 0..n {
            if let Some(idx) = lock(&self.queues[(me + k) % n]).pop_front() {
                return Some(idx);
            }
        }
        None
    }

    fn free_worker(&self, me: usize) {
        let _guard = WorkerGuard { shared: self };
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let gen = self.signal.current();
            let Some(idx) = self.pop_slot(me) else {
                // Long-lived engine: park instead of exiting; a submission, an
                // answer or an abort re-enqueue bumps the generation.
                self.signal.wait_past(gen);
                continue;
            };
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            let result = self.process_slot_free(idx);
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            self.maybe_gc();
            self.maybe_compact();
            self.signal.bump();
            if let Err(e) = result {
                self.fail(e);
                break;
            }
        }
    }

    /// Runs the popped slot until it terminates, parks on a frontier, or
    /// (under step-level round robin) hands the update back to the queues
    /// after one step.
    fn process_slot_free(&self, idx: usize) -> Result<(), ChaseError> {
        let Some(cell) = self.slot_cell(idx) else { return Ok(()) };
        let mut slot = lock(&cell.slot);
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            // A validator flagged us while we were stepping (or while the
            // update sat in the queue): execute the abort, then continue from
            // the fresh restart.
            if cell.abort_requested.load(Ordering::SeqCst) {
                if slot.failed.is_some() {
                    cell.abort_requested.store(false, Ordering::SeqCst);
                } else {
                    let dependents = self.execute_abort(&cell, &mut slot, false, true);
                    drop(slot);
                    self.abort_all(dependents);
                    slot = lock(&cell.slot);
                    continue;
                }
            }
            if slot.failed.is_some() {
                slot.parked = true;
                return Ok(());
            }
            match slot.exec.state() {
                UpdateState::Terminated => {
                    slot.parked = true;
                    self.active.fetch_sub(1, Ordering::SeqCst);
                    drop(slot);
                    self.settle_flag(idx);
                    self.signal.bump();
                    return Ok(());
                }
                UpdateState::AwaitingFrontier => {
                    // Pull-based: publish the request and hand the worker
                    // back; the answer re-enqueues the slot.
                    self.publish_frontier(&mut slot, idx);
                    drop(slot);
                    self.settle_flag(idx);
                    return Ok(());
                }
                UpdateState::Ready => {
                    if slot.exec.stats().steps >= self.config.max_steps_per_update {
                        let err = ChaseError::StepLimitExceeded {
                            update: slot.exec.id(),
                            limit: self.config.max_steps_per_update,
                        };
                        let dependents = self.fail_slot(&cell, &mut slot, err);
                        drop(slot);
                        self.abort_all(dependents);
                        self.settle_flag(idx);
                        return Ok(());
                    }
                    let (_outcome, to_abort) = self.step_and_validate(&mut slot)?;
                    if !to_abort.is_empty() {
                        // Abort execution takes victim locks; ours stays held
                        // (victims are always other, higher-numbered updates).
                        self.abort_all(to_abort.iter().copied().collect());
                    }
                    if slot.exec.state() == UpdateState::Ready
                        && self.config.scheduler.policy == SchedulingPolicy::StepRoundRobin
                    {
                        if cell.abort_requested.load(Ordering::SeqCst) {
                            continue; // execute our own abort before requeueing
                        }
                        let shard = self.shard_of(&slot.exec);
                        drop(slot);
                        self.enqueue(shard, idx);
                        self.settle_flag(idx);
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Executes (or requests) the abort of every update in the worklist,
    /// feeding each executed abort's at-abort-time dependents back in.
    /// Victims we cannot lock are flagged for their owner; `settle_flag`
    /// closes the race with an owner that released without seeing the flag.
    fn abort_all(&self, victims: Vec<UpdateId>) {
        let mut work: VecDeque<UpdateId> = victims.into();
        while let Some(victim) = work.pop_front() {
            let Some((vidx, cell)) = self.lookup_cell(victim) else { continue };
            let attempt = cell.slot.try_lock();
            match attempt {
                Ok(mut vslot) => {
                    if vslot.failed.is_some() {
                        cell.abort_requested.store(false, Ordering::SeqCst);
                        continue;
                    }
                    let was_terminated = vslot.exec.is_terminated();
                    let was_parked = vslot.parked;
                    let dependents = self.execute_abort(&cell, &mut vslot, was_terminated, true);
                    if was_parked {
                        // Nobody owns a parked slot and it sits in no queue
                        // (it had terminated or was blocked on a frontier):
                        // the abort made it Ready again, so hand it back.
                        vslot.parked = false;
                        let shard = self.shard_of(&vslot.exec);
                        drop(vslot);
                        self.enqueue(shard, vidx);
                    }
                    work.extend(dependents);
                }
                Err(_) => {
                    cell.abort_requested.store(true, Ordering::SeqCst);
                    // If the owner released between our failed try_lock and
                    // the store, nobody may ever look at the flag again;
                    // settling re-checks. If the lock is held *now*, the
                    // holder's post-release settle happens after our store
                    // and is guaranteed to see it.
                    self.settle_flag(vidx);
                }
            }
        }
    }

    /// Ensures a requested abort on an unowned slot is not lost: called after
    /// every slot-lock release and after flagging a busy victim. Parked
    /// victims (terminated or frontier-blocked) are executed here and handed
    /// back to the queues; queued victims are left for the next worker that
    /// pops them.
    fn settle_flag(&self, idx: usize) {
        let Some(cell) = self.slot_cell(idx) else { return };
        loop {
            if !cell.abort_requested.load(Ordering::SeqCst) {
                return;
            }
            let Ok(mut slot) = cell.slot.try_lock() else {
                // Someone owns the slot right now; their post-release settle
                // will see the flag.
                return;
            };
            if !cell.abort_requested.load(Ordering::SeqCst) {
                return;
            }
            if slot.failed.is_some() {
                cell.abort_requested.store(false, Ordering::SeqCst);
                return;
            }
            if !slot.parked {
                // The slot is in a run queue; its next owner executes the
                // abort before stepping.
                return;
            }
            let was_terminated = slot.exec.is_terminated();
            let dependents = self.execute_abort(&cell, &mut slot, was_terminated, true);
            slot.parked = false;
            let shard = self.shard_of(&slot.exec);
            drop(slot);
            self.enqueue(shard, idx);
            self.abort_all(dependents);
        }
    }
}

/// A long-lived cooperative update-exchange service. See the module docs for
/// the execution model; construct with [`ExchangeEngine::new`], feed it with
/// [`submit`](Self::submit), answer its [`pending_frontiers`](Self::pending_frontiers)
/// via [`answer`](Self::answer) (or a [`ResolverPump`]), and read committed
/// state with [`read`](Self::read).
pub struct ExchangeEngine {
    pub(crate) shared: Arc<EngineShared>,
    threads: Vec<JoinHandle<()>>,
}

impl ExchangeEngine {
    /// Starts an engine over `db` and `mappings`: its worker pool
    /// ([`SchedulerConfig::workers`], 0 = one per core) is spawned immediately
    /// and stays alive — parked when idle — until [`shutdown`](Self::shutdown)
    /// or drop.
    pub fn new(db: Database, mappings: MappingSet, config: EngineConfig) -> ExchangeEngine {
        let shared = Self::make_shared(
            db,
            mappings,
            config,
            None,
            SlotTable { base: 0, cells: VecDeque::new() },
            Vec::new(),
            0,
            RunMetrics::default(),
        );
        let threads = Self::spawn_workers(&shared);
        ExchangeEngine { shared, threads }
    }

    /// Starts a **durable** engine under `durability.dir`: every submission
    /// and answer is appended (checksummed and fsynced) to a write-ahead log
    /// *before* its effects become visible, and quiescence points
    /// periodically fold the log into a snapshot. A crashed durable engine is
    /// brought back byte-identically with [`recover`](Self::recover).
    ///
    /// Durability requires the deterministic sequencer (or inline mode):
    /// recovery re-executes the unlogged chase work between logged events,
    /// which only reproduces the original run when the scheduling is a
    /// function of the event log. A free-running config is rejected with
    /// [`RecoveryError::FreeRunningUnsupported`].
    pub fn new_durable(
        db: Database,
        mappings: MappingSet,
        config: EngineConfig,
        durability: DurabilityConfig,
    ) -> Result<ExchangeEngine, RecoveryError> {
        if !(config.scheduler.deterministic || config.inline) {
            return Err(RecoveryError::FreeRunningUnsupported);
        }
        if config.replica.is_some() {
            return Err(RecoveryError::ReplicatedUnsupported);
        }
        std::fs::create_dir_all(&durability.dir)?;
        let fingerprint = config_fingerprint(&config, &mappings);
        // Snapshot 0 goes down before the engine exists: recovery never needs
        // the pre-engine database, only "newest snapshot + log tail".
        let meta = SnapshotMeta {
            fingerprint,
            records: 0,
            actions: 0,
            next_token: 0,
            slot_base: 0,
            slots: Vec::new(),
            metrics: RunMetrics::default(),
        };
        write_file_atomic(&durability.snapshot_path(), &encode_snapshot(&meta, &db))?;
        let mut wal = WalWriter::create(&durability.wal_path())?;
        // The header is appended (and synced) before the window opens: a log
        // file without a durable header is indistinguishable from corruption.
        wal.append(&encode_header(fingerprint, 0))?;
        wal.set_group_commit(durability.group_commit);
        let durable = DurableEngineState {
            config: durability,
            fingerprint,
            wal: Mutex::new(wal),
            records: AtomicU64::new(0),
            last_snapshot: AtomicU64::new(0),
            actions: AtomicU64::new(0),
            replaying: AtomicBool::new(false),
        };
        let shared = Self::make_shared(
            db,
            mappings,
            config,
            Some(durable),
            SlotTable { base: 0, cells: VecDeque::new() },
            Vec::new(),
            0,
            RunMetrics::default(),
        );
        let threads = Self::spawn_workers(&shared);
        Ok(ExchangeEngine { shared, threads })
    }

    /// Recovers a durable engine from `durability.dir`: loads the newest
    /// snapshot, then deterministically replays the write-ahead log tail —
    /// re-admitting logged submissions under their original ids and
    /// re-applying logged answers at their original interleaving points. The
    /// recovered engine's database, metrics and per-update statistics are
    /// byte-identical to the crashed engine's at its last acknowledged
    /// record; work that was mid-chase at the crash resumes where replay
    /// leaves it. `config` and `mappings` must match the original engine's
    /// (checked via fingerprint).
    pub fn recover(
        mappings: MappingSet,
        config: EngineConfig,
        durability: DurabilityConfig,
    ) -> Result<ExchangeEngine, RecoveryError> {
        if !(config.scheduler.deterministic || config.inline) {
            return Err(RecoveryError::FreeRunningUnsupported);
        }
        if config.replica.is_some() {
            return Err(RecoveryError::ReplicatedUnsupported);
        }
        let fingerprint = config_fingerprint(&config, &mappings);
        let bytes = std::fs::read(durability.snapshot_path())?;
        let (meta, db) = decode_snapshot(&bytes)?;
        if meta.fingerprint != fingerprint {
            return Err(RecoveryError::ConfigMismatch {
                expected: fingerprint,
                found: meta.fingerprint,
            });
        }
        let wal = read_wal(&durability.wal_path())?;
        let mut records = wal.records.iter();
        let Some(first) = records.next() else {
            return Err(RecoveryError::Corrupt("log has no header record".into()));
        };
        let base_records = match decode_record(first)? {
            WalRecord::Header { fingerprint: found, base_records } => {
                if found != fingerprint {
                    return Err(RecoveryError::ConfigMismatch { expected: fingerprint, found });
                }
                base_records
            }
            _ => return Err(RecoveryError::Corrupt("log does not start with a header".into())),
        };
        if base_records > meta.records {
            return Err(RecoveryError::Corrupt(format!(
                "snapshot covers {} records but the log starts at {base_records}",
                meta.records
            )));
        }
        let tail: Vec<WalRecord> =
            records.map(|r| decode_record(r)).collect::<Result<Vec<_>, _>>()?;
        // A crash between snapshot rename and log restart leaves records the
        // snapshot already covers at the head of the log; skip them.
        let skip = (meta.records - base_records) as usize;
        if skip > tail.len() {
            return Err(RecoveryError::Corrupt(format!(
                "snapshot claims {skip} log record(s) past the header but only {} exist",
                tail.len()
            )));
        }
        let total_records = base_records + tail.len() as u64;

        // Rebuild the slot table. Snapshots are taken at quiescence, so every
        // summarised slot is terminal — parked, inactive, nothing to requeue.
        let mut cells = VecDeque::with_capacity(meta.slots.len());
        let mut all_ids = Vec::with_capacity(meta.slots.len());
        for summary in &meta.slots {
            if !summary.terminated && summary.failed.is_none() {
                return Err(RecoveryError::Corrupt(format!(
                    "snapshot slot u{} is not terminal",
                    summary.id
                )));
            }
            let id = UpdateId(summary.id);
            let exec = UpdateExecution::restored(
                id,
                summary.initial.clone(),
                config.scheduler.chase_mode,
                config.scheduler.violation_state,
                summary.stats,
                summary.terminated,
            );
            cells.push_back(Arc::new(SlotCell {
                slot: Mutex::new(Slot {
                    exec,
                    speculation: None,
                    frontier_wait: 0,
                    parked: true,
                    published: None,
                    failed: summary.failed.clone(),
                }),
                abort_requested: AtomicBool::new(false),
            }));
            all_ids.push(id);
        }
        let slots = SlotTable { base: meta.slot_base as usize, cells };
        // Reopen the log for appends at its validated length (discarding any
        // torn tail record) *before* replay: replay injects records directly
        // and never re-appends, so the write position is already final.
        let mut writer = WalWriter::open_append(&durability.wal_path(), wal.valid_len)?;
        writer.set_group_commit(durability.group_commit);
        let durable = DurableEngineState {
            config: durability,
            fingerprint,
            wal: Mutex::new(writer),
            records: AtomicU64::new(total_records),
            last_snapshot: AtomicU64::new(meta.records),
            actions: AtomicU64::new(meta.actions),
            replaying: AtomicBool::new(true),
        };
        let shared = Self::make_shared(
            db,
            mappings,
            config,
            Some(durable),
            slots,
            all_ids,
            meta.next_token,
            meta.metrics.clone(),
        );
        let replayed = shared.replay(tail.into_iter().skip(skip));
        shared
            .durable
            .as_ref()
            .expect("recovered engine is durable")
            .replaying
            .store(false, Ordering::SeqCst);
        replayed?;
        let threads = Self::spawn_workers(&shared);
        Ok(ExchangeEngine { shared, threads })
    }

    #[allow(clippy::too_many_arguments)]
    fn make_shared(
        db: Database,
        mappings: MappingSet,
        config: EngineConfig,
        durable: Option<DurableEngineState>,
        slots: SlotTable,
        all_ids: Vec<UpdateId>,
        next_token: u64,
        metrics: RunMetrics,
    ) -> Arc<EngineShared> {
        let mut db = db;
        db.set_delta_backlog_cap(config.delta_backlog_cap);
        let workers = if config.scheduler.workers > 0 {
            config.scheduler.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        };
        // Inline mode is caller-driven and therefore sequenced: it implies
        // the deterministic scheduler regardless of what the config says.
        // Replication does too — the canonical fold *is* a schedule.
        let inline = config.inline;
        let deterministic = config.scheduler.deterministic || inline || config.replica.is_some();
        let speculate = deterministic
            && !inline
            && workers >= 2
            && config.scheduler.speculation == SpeculationMode::Eager;
        Arc::new(EngineShared {
            mappings,
            db: RwLock::new(db),
            deterministic,
            inline,
            speculate,
            spec_next: AtomicUsize::new(0),
            spec_penalty: AtomicUsize::new(0),
            slots: RwLock::new(slots),
            all_ids: Mutex::new(all_ids),
            read_log: StripedReadLog::default(),
            write_log: StripedWriteLog::default(),
            tracker: Mutex::new(config.scheduler.tracker.build()),
            metrics: Mutex::new(metrics),
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            cursor: Mutex::new(DetCursor { next: 0, live: BTreeSet::new() }),
            det_incoming: Mutex::new(Vec::new()),
            pending: Mutex::new(BTreeMap::new()),
            admission: Mutex::new(BTreeMap::new()),
            unanswered: AtomicUsize::new(0),
            next_token: AtomicU64::new(next_token),
            active: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            error: Mutex::new(None),
            signal: Signal::new(),
            durable,
            replication: config
                .replica
                .map(|node| Mutex::new(crate::replicate::ReplicationState::new(node))),
            config,
        })
    }

    fn spawn_workers(shared: &Arc<EngineShared>) -> Vec<JoinHandle<()>> {
        if shared.inline {
            return Vec::new();
        }
        (0..shared.queues.len())
            .map(|me| {
                let shared = Arc::clone(shared);
                std::thread::Builder::new()
                    .name(format!("youtopia-engine-{me}"))
                    .spawn(move || {
                        if shared.deterministic {
                            shared.det_worker()
                        } else {
                            shared.free_worker(me)
                        }
                    })
                    .expect("spawn engine worker")
            })
            .collect()
    }

    /// Submits one update. See [`submit_batch`](Self::submit_batch).
    pub fn submit(&self, op: InitialOp) -> Result<UpdateHandle, SubmitError> {
        self.submit_batch(vec![op]).map(|mut handles| handles.pop().expect("one handle"))
    }

    /// Submits one update on behalf of an identified client at a priority —
    /// see [`submit_batch_as`](Self::submit_batch_as).
    pub fn submit_as(
        &self,
        op: InitialOp,
        client: ClientId,
        priority: Priority,
    ) -> Result<UpdateHandle, SubmitError> {
        self.submit_batch_as(vec![op], Some((client, priority)))
            .map(|mut handles| handles.pop().expect("one handle"))
    }

    /// Submits a batch of updates atomically: all of them receive consecutive
    /// priority numbers and become visible to the scheduler together, so a
    /// batch submitted to an idle deterministic engine chases exactly like the
    /// same batch under [`ConcurrentRun`](crate::ConcurrentRun). Fails with
    /// [`SubmitError::Saturated`] when the admission cap would be exceeded
    /// (nothing is admitted) and [`SubmitError::ShutDown`] after shutdown or a
    /// fatal error.
    ///
    /// **Backoff contract:** a `Saturated` rejection carries a typed
    /// [`RetryAfter`] hint — the number of in-flight completions the caller
    /// should wait for before retrying. A retry after that many terminations
    /// is admitted unless competing submissions claimed the capacity first,
    /// in which case the fair-share machinery of
    /// [`submit_batch_as`](Self::submit_batch_as) guarantees identified
    /// clients eventual admission. Anonymous batches (this method) see only
    /// the global [`EngineConfig::admission_cap`].
    pub fn submit_batch(&self, ops: Vec<InitialOp>) -> Result<Vec<UpdateHandle>, SubmitError> {
        self.submit_batch_as(ops, None)
    }

    /// [`submit_batch`](Self::submit_batch) on behalf of an identified
    /// client. Identified submissions get per-client fair-share admission on
    /// top of the global cap:
    ///
    /// * while several clients contend, each is limited to a **weighted
    ///   share** of the cap (`cap · weight / Σweights`, never below one
    ///   slot), so one greedy client cannot occupy the whole engine;
    /// * every rejection grows the client's **deficit** by its
    ///   [`Priority::weight`]; once the deficit reaches the starvation bound,
    ///   freed capacity is reserved for that client (others are refused with
    ///   a `retry_after` of one completion) until it is admitted — so a
    ///   persistent low-priority client is guaranteed eventual admission,
    ///   just later than a high-priority one.
    ///
    /// Client identity is admission-only: update numbers, scheduling and
    /// chase semantics are identical for every client, and `None` reproduces
    /// the anonymous [`submit_batch`](Self::submit_batch) path exactly.
    pub fn submit_batch_as(
        &self,
        ops: Vec<InitialOp>,
        client: Option<(ClientId, Priority)>,
    ) -> Result<Vec<UpdateHandle>, SubmitError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let shared = &self.shared;
        if shared.stop.load(Ordering::SeqCst) {
            return Err(SubmitError::ShutDown);
        }
        if shared.replication.is_some() {
            return Err(SubmitError::Replicated);
        }
        // A durable engine serialises admission against the sequencer: the
        // WAL record's action stamp fixes the exact interleaving point replay
        // must reproduce, which it only does while the sequencer cannot act.
        let mut cursor = shared.durable.as_ref().map(|_| lock(&shared.cursor));
        let mut slots = shared.slots.write().unwrap_or_else(|e| e.into_inner());
        shared.check_admission(&slots, client, ops.len())?;
        let base = slots.total();
        if let Some(d) = &shared.durable {
            // Logged before any effect is visible: a submission the caller
            // saw admitted is in the log, and one that failed to log was
            // never admitted.
            let first = shared.config.first_update_number + base as u64;
            let stamp = d.actions.load(Ordering::SeqCst);
            if let Err(e) = lock(&d.wal).append(&encode_submit(first, stamp, &ops)) {
                return Err(SubmitError::Durability(e.to_string()));
            }
            d.records.fetch_add(1, Ordering::SeqCst);
        }
        let count = ops.len();
        let handles: Vec<UpdateHandle> = shared
            .admit_locked(&mut slots, ops)
            .into_iter()
            .map(|(id, cell)| UpdateHandle { id, cell, shared: Arc::downgrade(shared) })
            .collect();
        shared.record_admission(client, base..base + count);
        if shared.deterministic {
            match cursor.as_deref_mut() {
                // Durable path, sequencer held: fix the interleaving point
                // directly instead of via the absorb queue.
                Some(cur) => cur.live.extend(base..base + count),
                None => lock(&shared.det_incoming).extend(base..base + count),
            }
        } else {
            for idx in base..base + count {
                let shard = {
                    let slot = lock(&slots.get(idx).expect("just admitted").slot);
                    shared.shard_of(&slot.exec)
                };
                lock(&shared.queues[shard % shared.queues.len()]).push_back(idx);
            }
        }
        drop(slots);
        drop(cursor);
        shared.signal.bump();
        Ok(handles)
    }

    /// The outstanding frontier requests. Each entry can be resumed with
    /// [`answer`](Self::answer); entries disappear when answered or when the
    /// owning update aborts (the restart publishes a new token). Entries
    /// carry their lifecycle state — publish stamp, sweep age, escalation
    /// count — and are listed most-escalated first (re-asked requests jump
    /// the queue; ties keep publish order), which is how
    /// [`EscalationPolicy::ReAsk`] raises a request's priority in a
    /// pull-based world.
    pub fn pending_frontiers(&self) -> Vec<PendingFrontier> {
        let mut out: Vec<PendingFrontier> = lock(&self.shared.pending)
            .iter()
            .map(|(token, entry)| PendingFrontier {
                token: FrontierToken(*token),
                update: entry.update,
                request: entry.request.clone(),
                published_at: entry.published_at,
                age: entry.age,
                escalations: entry.escalations,
            })
            .collect();
        out.sort_by(|a, b| b.escalations.cmp(&a.escalations).then(a.token.cmp(&b.token)));
        out
    }

    /// Answers one outstanding frontier request, resuming the owning update.
    /// A token that no longer names a live request yields
    /// [`AnswerOutcome::Stale`] (harmless); an invalid decision is an error
    /// and the request stays pending under the same token for a retry.
    pub fn answer(
        &self,
        token: FrontierToken,
        decision: FrontierDecision,
    ) -> Result<AnswerOutcome, ChaseError> {
        self.answer_with_origin(token, decision, ResolutionOrigin::Human)
    }

    /// [`answer`](Self::answer) with an explicit [`ResolutionOrigin`]. The
    /// engine's own sweeper stamps its auto-resolutions
    /// [`ResolutionOrigin::System`] through this path; it is public so
    /// log-replay tooling (e.g. a harness re-feeding a WAL tail) can
    /// reproduce a system answer byte-identically instead of re-deciding it.
    pub fn answer_with_origin(
        &self,
        token: FrontierToken,
        decision: FrontierDecision,
        origin: ResolutionOrigin,
    ) -> Result<AnswerOutcome, ChaseError> {
        let shared = &self.shared;
        // A replica records the decision as a replicated event (so peers
        // replay it instead of re-asking) and continues the canonical fold.
        if shared.replication.is_some() {
            return crate::replicate::answer_replicated(self, token, decision, origin);
        }
        // A durable engine holds the sequencer across remove → append → apply
        // so the log order is the order decisions' effects landed and the
        // stamp pins the interleaving point (this also closes the solo
        // fast-path race where a step slips between the append and the
        // apply).
        let _cursor = shared.durable.as_ref().map(|_| lock(&shared.cursor));
        let entry = lock(&shared.pending).remove(&token.0);
        let Some(entry) = entry else { return Ok(AnswerOutcome::Stale) };
        if let Some(d) = &shared.durable {
            let stamp = d.actions.load(Ordering::SeqCst);
            if let Err(e) = lock(&d.wal).append(&encode_answer(token.0, stamp, &decision, origin)) {
                // Restore the entry so the request is not silently lost, then
                // fail the engine: its log no longer matches its history.
                lock(&shared.pending).insert(token.0, entry);
                let err = ChaseError::InvalidDecision(format!("durability failure: {e}"));
                shared.fail(err.clone());
                return Err(err);
            }
            d.records.fetch_add(1, Ordering::SeqCst);
        }
        shared.apply_answer(token, entry, decision, origin)
    }

    /// One pass of the frontier lifecycle sweeper: every pending request ages
    /// by one tick, and requests whose age reached the
    /// [`EngineConfig::escalation`] deadline are escalated — re-published at
    /// higher priority (`ReAsk`) or answered by the system (`AutoResolve`,
    /// WAL-logged with [`ResolutionOrigin::System`] exactly like a human
    /// answer, so recovery replays the outcome instead of re-deciding it).
    ///
    /// The sweep schedule is caller-owned, like answering itself: a
    /// [`ResolverPump`] sweeps once per drain pass, and open-loop harnesses
    /// sweep once per virtual tick. Sweeping is suppressed during recovery
    /// replay (escalations come from the log there) and is a no-op under
    /// [`EscalationPolicy::Wait`] beyond the aging.
    pub fn sweep(&self) -> SweepReport {
        let shared = &self.shared;
        let mut report = SweepReport::default();
        if let Some(d) = &shared.durable {
            if d.replaying.load(Ordering::SeqCst) {
                return report;
            }
        }
        let policy = shared.config.escalation;
        // Age every entry and collect the expired ones. The pending lock is
        // dropped before any escalation is applied (apply_answer locks slot
        // then pending — the documented order).
        let mut re_ask: Vec<u64> = Vec::new();
        let mut auto: Vec<(u64, FrontierDecision)> = Vec::new();
        {
            let mut pending = lock(&shared.pending);
            for (token, entry) in pending.iter_mut() {
                entry.age += 1;
                report.aged += 1;
                match policy {
                    EscalationPolicy::Wait => {}
                    EscalationPolicy::ReAsk { after } => {
                        if entry.age >= after.max(1) {
                            entry.age = 0;
                            entry.escalations += 1;
                            re_ask.push(*token);
                        }
                    }
                    EscalationPolicy::AutoResolve { after, decision } => {
                        if entry.age >= after.max(1) {
                            // Reset before removal: if the system decision is
                            // rejected as invalid, the entry is restored
                            // as-is and gets a full deadline before the next
                            // attempt instead of re-escalating every sweep.
                            entry.age = 0;
                            entry.escalations += 1;
                            auto.push((*token, decision.decide(&entry.request)));
                        }
                    }
                }
            }
        }
        if !re_ask.is_empty() {
            lock(&shared.metrics).re_asks += re_ask.len();
            report.re_asked = re_ask.into_iter().map(FrontierToken).collect();
            // Re-publication is a notification event: waiters and pumps see
            // the escalated entries at the head of pending_frontiers().
            shared.signal.bump();
        }
        for (token, decision) in auto {
            match self.answer_with_origin(FrontierToken(token), decision, ResolutionOrigin::System)
            {
                Ok(AnswerOutcome::Applied) => report.auto_resolved.push(FrontierToken(token)),
                // Stale (answered by a human in between, or the owner
                // aborted) — nothing to do.
                Ok(AnswerOutcome::Stale) => {}
                // An invalid system decision: the entry was restored under
                // the same token with a fresh deadline. The next expiry
                // retries (requests evolve as neighbours commit, so a later
                // attempt can succeed where this one could not).
                Err(_) => {}
            }
        }
        report
    }

    /// Advances an inline engine until its sequencer goes idle or blocks on
    /// an unanswered frontier, then returns — unlike
    /// [`wait_quiescent`](Self::wait_quiescent), blocking on a frontier is
    /// not an error, so open-loop harnesses can interleave driving,
    /// selective answering ([`pending_frontiers`](Self::pending_frontiers) /
    /// [`answer`](Self::answer)) and [`sweep`](Self::sweep) on one thread.
    /// On a threaded engine this is a no-op (the workers make progress on
    /// their own); either way a fatal engine error is reported.
    pub fn drive(&self) -> Result<(), ChaseError> {
        if self.shared.inline {
            self.shared.drive_inline()?;
        }
        match self.error() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Runs a closure over the last-committed database state (a read-lock
    /// snapshot session). Do not hold long-running work inside the closure —
    /// writers (chase steps) queue behind it.
    pub fn read<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.shared.db.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The mapping set the engine chases against (fixed at construction).
    pub fn mappings(&self) -> &MappingSet {
        &self.shared.mappings
    }

    /// The metrics accumulated since the engine started (never reset;
    /// `wall_time` is not tracked by the engine — it belongs to whoever owns
    /// the session).
    pub fn metrics(&self) -> RunMetrics {
        lock(&self.shared.metrics).clone()
    }

    /// Per-update execution statistics of every **retained** update, in
    /// submission order. With a finite [`EngineConfig::retention_horizon`],
    /// records evicted by compaction are absent — use
    /// [`update_stats_of`](Self::update_stats_of) to distinguish evicted from
    /// unknown ids.
    pub fn update_stats(&self) -> Vec<(UpdateId, UpdateStats)> {
        let slots = self.shared.slots.read().unwrap_or_else(|e| e.into_inner());
        slots
            .cells
            .iter()
            .map(|cell| {
                let slot = lock(&cell.slot);
                (slot.exec.id(), slot.exec.stats())
            })
            .collect()
    }

    /// The execution statistics of one update (index lookup — prefer this
    /// over scanning [`Self::update_stats`] on a long-lived engine). Fails
    /// with [`LookupError::SlotEvicted`] once compaction has dropped the
    /// record, [`LookupError::UnknownUpdate`] for an id never admitted.
    pub fn update_stats_of(&self, update: UpdateId) -> Result<UpdateStats, LookupError> {
        let cell = self.shared.lookup(update)?;
        let slot = lock(&cell.slot);
        Ok(slot.exec.stats())
    }

    /// The completion report of one update: `Ok(Some(..))` once it has
    /// terminated, `Ok(None)` while it is still in flight (or failed), and a
    /// [`LookupError`] when the id is unknown or its record was evicted. An
    /// [`UpdateHandle`] pins its own record and keeps answering after
    /// eviction; this keyed lookup is for callers holding only the id.
    pub fn update_report_of(&self, update: UpdateId) -> Result<Option<UpdateReport>, LookupError> {
        let cell = self.shared.lookup(update)?;
        let slot = lock(&cell.slot);
        Ok(slot.exec.is_terminated().then(|| UpdateReport::for_execution(&slot.exec)))
    }

    /// Observes the shared violation index: the delta feed's sequence number
    /// and its retained backlog (see [`crate::viewmaint`] for the maintenance
    /// model). The backlog is bounded by the cap and cleared whenever
    /// quiescence GC runs.
    pub fn violation_index(&self) -> crate::viewmaint::ViolationIndexStats {
        self.read(crate::viewmaint::stats)
    }

    /// The priority number the next submission will receive.
    pub fn next_update_id(&self) -> UpdateId {
        let slots = self.shared.slots.read().unwrap_or_else(|e| e.into_inner());
        UpdateId(self.shared.config.first_update_number + slots.total() as u64)
    }

    /// Number of update records currently retained in the slot table (grows
    /// with submissions, shrinks when compaction evicts terminal records past
    /// the retention horizon).
    pub fn retained_slots(&self) -> usize {
        self.shared.slots.read().unwrap_or_else(|e| e.into_inner()).cells.len()
    }

    /// Number of in-flight (non-terminated, non-failed) updates.
    pub fn active_updates(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Whether nothing is running, queued or awaiting an answer. Quiescence
    /// is stable: with no in-flight work and no pending frontiers, only a new
    /// submission can create activity.
    pub fn is_quiescent(&self) -> bool {
        self.shared.active.load(Ordering::SeqCst) == 0
            && self.shared.in_flight.load(Ordering::SeqCst) == 0
            && lock(&self.shared.pending).is_empty()
    }

    /// The fatal error that stopped the engine, if any (the global
    /// [`SchedulerConfig::max_total_steps`] valve, or a poisoned decision).
    pub fn error(&self) -> Option<ChaseError> {
        lock(&self.shared.error).clone()
    }

    /// Blocks until the engine is quiescent, returning the fatal error if it
    /// failed instead. The caller is responsible for answering frontiers
    /// while waiting (or doing so from another thread / a [`ResolverPump`]) —
    /// an unanswered frontier never becomes quiescent, and on an inline
    /// engine (which has no threads to wait on) it is reported as an error
    /// rather than a hang.
    pub fn wait_quiescent(&self) -> Result<(), ChaseError> {
        loop {
            if let Some(e) = self.error() {
                return Err(e);
            }
            let gen = self.shared.signal.current();
            if self.is_quiescent() {
                return Ok(());
            }
            if self.shared.inline {
                self.shared.drive_inline()?;
                if self.is_quiescent() {
                    return Ok(());
                }
                if !lock(&self.shared.pending).is_empty() {
                    return Err(ChaseError::InvalidDecision(
                        "inline engine blocked on an unanswered frontier; \
                         answer it via pending_frontiers()/answer() or a ResolverPump"
                            .into(),
                    ));
                }
                continue;
            }
            self.shared.signal.wait_past(gen);
        }
    }

    /// Stops the workers and joins them (idempotent).
    fn halt(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.signal.bump();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// Shuts the engine down and returns the database, mappings and
    /// accumulated metrics. In-flight updates are left wherever their last
    /// committed step put them (partial chases are *not* rolled back — check
    /// [`is_quiescent`](Self::is_quiescent) first if that matters).
    pub fn shutdown(mut self) -> (Database, MappingSet, RunMetrics) {
        self.halt();
        // A clean shutdown is a durability point: close any open group-commit
        // window so the log on disk covers everything that was logged.
        if let Some(d) = &self.shared.durable {
            let _ = lock(&d.wal).flush();
        }
        let mut shared = Arc::clone(&self.shared);
        drop(self);
        // Workers are joined, but a cloned `UpdateHandle` may be mid-`wait()`
        // on another thread, holding a transient upgrade of its weak
        // reference. The stop flag (set by `halt`) makes every such call
        // return on its next check; keep nudging the signal until the last
        // transient strong reference drops. An `Arc` drop cannot notify a
        // condvar, so this is necessarily a poll — but with bounded
        // exponential backoff (capped at ~1 ms) instead of a hot yield loop
        // that would burn a core for as long as a handle-holder stays
        // descheduled.
        let mut spins = 0u32;
        let shared = loop {
            match Arc::try_unwrap(shared) {
                Ok(inner) => break inner,
                Err(still_shared) => {
                    still_shared.signal.bump();
                    if spins < 10 {
                        std::thread::yield_now();
                    } else {
                        let exp = (spins - 10).min(10);
                        std::thread::sleep(std::time::Duration::from_micros(1 << exp));
                    }
                    spins += 1;
                    shared = still_shared;
                }
            }
        };
        let db = shared.db.into_inner().unwrap_or_else(|e| e.into_inner());
        let metrics = shared.metrics.into_inner().unwrap_or_else(|e| e.into_inner());
        (db, shared.mappings, metrics)
    }

    pub(crate) fn db_read(&self) -> std::sync::RwLockReadGuard<'_, Database> {
        self.shared.db.read().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn db_write(&self) -> std::sync::RwLockWriteGuard<'_, Database> {
        self.shared.db.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for ExchangeEngine {
    fn drop(&mut self) {
        self.halt();
    }
}

impl std::fmt::Debug for ExchangeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExchangeEngine")
            .field("active", &self.active_updates())
            .field("pending_frontiers", &lock(&self.shared.pending).len())
            .field("deterministic", &self.shared.deterministic)
            .finish_non_exhaustive()
    }
}

/// A ticket for one submitted update. Clonable; outlives the engine safely
/// (methods needing the engine report shutdown instead of blocking forever).
///
/// The handle pins its own slot record: with a finite
/// [`EngineConfig::retention_horizon`], the engine's keyed lookups
/// ([`ExchangeEngine::update_stats_of`],
/// [`ExchangeEngine::update_report_of`]) report
/// [`LookupError::SlotEvicted`] once compaction drops a terminated record,
/// but a live handle keeps answering [`status`](Self::status) /
/// [`stats`](Self::stats) / [`report`](Self::report) from the pinned cell —
/// retention bounds the *engine's* memory, not a handle the caller chose to
/// keep.
#[derive(Clone)]
pub struct UpdateHandle {
    id: UpdateId,
    cell: Arc<SlotCell>,
    shared: Weak<EngineShared>,
}

impl UpdateHandle {
    /// The update's priority number.
    pub fn id(&self) -> UpdateId {
        self.id
    }

    /// Where the update currently stands. In free-running mode a
    /// `Terminated` status is definitive only once the engine is quiescent:
    /// a still-running lower-priority update can conflict with and revive it.
    pub fn status(&self) -> UpdateStatus {
        let slot = lock(&self.cell.slot);
        if slot.failed.is_some() {
            return UpdateStatus::Failed;
        }
        match slot.exec.state() {
            UpdateState::Ready => UpdateStatus::Running,
            UpdateState::AwaitingFrontier => UpdateStatus::AwaitingFrontier,
            UpdateState::Terminated => UpdateStatus::Terminated,
        }
    }

    /// Execution counters so far.
    pub fn stats(&self) -> UpdateStats {
        lock(&self.cell.slot).exec.stats()
    }

    /// The completion report, once the update has terminated — assembled
    /// through the same [`UpdateReport::for_execution`] path every runner
    /// uses.
    pub fn report(&self) -> Option<UpdateReport> {
        let slot = lock(&self.cell.slot);
        slot.exec.is_terminated().then(|| UpdateReport::for_execution(&slot.exec))
    }

    /// The update's terminal failure, if it exceeded its step budget.
    pub fn error(&self) -> Option<ChaseError> {
        lock(&self.cell.slot).failed.clone()
    }

    /// Blocks until the update terminates (returning its report) or fails
    /// (returning the error — the update's own budget error, or the engine's
    /// fatal error). Someone must be answering frontiers meanwhile; on an
    /// inline engine (which has no one else), a frontier reached while
    /// waiting is reported as an error rather than a hang.
    pub fn wait(&self) -> Result<UpdateReport, ChaseError> {
        loop {
            {
                let slot = lock(&self.cell.slot);
                if let Some(e) = &slot.failed {
                    return Err(e.clone());
                }
                if slot.exec.is_terminated() {
                    return Ok(UpdateReport::for_execution(&slot.exec));
                }
            }
            let Some(shared) = self.shared.upgrade() else {
                return Err(ChaseError::InvalidDecision(format!(
                    "engine shut down while update {} was in flight",
                    self.id
                )));
            };
            if let Some(e) = lock(&shared.error).clone() {
                return Err(e);
            }
            if shared.stop.load(Ordering::SeqCst) {
                return Err(ChaseError::InvalidDecision(format!(
                    "engine shut down while update {} was in flight",
                    self.id
                )));
            }
            if shared.inline {
                shared.drive_inline()?;
                let blocked = {
                    let slot = lock(&self.cell.slot);
                    slot.failed.is_none() && !slot.exec.is_terminated()
                };
                if blocked && !lock(&shared.pending).is_empty() {
                    return Err(ChaseError::InvalidDecision(format!(
                        "update {} is blocked on a frontier on an inline engine; \
                         answer it via pending_frontiers()/answer() or a ResolverPump",
                        self.id
                    )));
                }
                continue;
            }
            let gen = shared.signal.current();
            {
                let slot = lock(&self.cell.slot);
                if slot.failed.is_some() || slot.exec.is_terminated() {
                    continue;
                }
            }
            shared.signal.wait_past(gen);
        }
    }
}

impl std::fmt::Debug for UpdateHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdateHandle")
            .field("id", &self.id)
            .field("status", &self.status())
            .finish()
    }
}

/// Compatibility adapter between the pull-based engine and the callback world:
/// drains [`ExchangeEngine::pending_frontiers`] through any existing
/// [`FrontierResolver`], consulting it with the blocked update's snapshot
/// exactly like the batch schedulers did.
pub struct ResolverPump<'e, 'r> {
    engine: &'e ExchangeEngine,
    resolver: &'r mut dyn FrontierResolver,
}

impl<'e, 'r> ResolverPump<'e, 'r> {
    /// Creates a pump over `engine` feeding decisions from `resolver`.
    pub fn new(engine: &'e ExchangeEngine, resolver: &'r mut dyn FrontierResolver) -> Self {
        ResolverPump { engine, resolver }
    }

    /// Answers every currently outstanding frontier request (in publish
    /// order), returning how many were applied. Stale tokens are skipped; an
    /// invalid decision from the resolver is an error.
    pub fn drain(&mut self) -> Result<usize, ChaseError> {
        let engine = self.engine;
        let mut answered = 0usize;
        loop {
            let pending = engine.pending_frontiers();
            if pending.is_empty() {
                return Ok(answered);
            }
            for pf in pending {
                let resolver = &mut *self.resolver;
                let decision =
                    engine.read(|db| resolver.resolve(&db.snapshot(pf.update), &pf.request));
                match engine.answer(pf.token, decision)? {
                    AnswerOutcome::Applied => answered += 1,
                    AnswerOutcome::Stale => {}
                }
            }
        }
    }

    /// Pumps until the engine is quiescent (every submitted update terminated
    /// or failed, no outstanding frontiers), propagating the engine's fatal
    /// error if it stops instead. Each pass runs one lifecycle sweep after
    /// draining (a no-op under [`EscalationPolicy::Wait`]), so an engine
    /// driven purely by a pump still ages and escalates any request the
    /// drain left behind.
    pub fn run_until_quiescent(&mut self) -> Result<(), ChaseError> {
        loop {
            if self.engine.shared.inline {
                // Caller-driven engine: chase until idle or blocked, then
                // answer. Every loop iteration either makes chase progress,
                // answers a frontier, or observes quiescence — no waiting.
                self.engine.shared.drive_inline()?;
            }
            self.drain()?;
            self.engine.sweep();
            if let Some(e) = self.engine.error() {
                return Err(e);
            }
            let gen = self.engine.shared.signal.current();
            if self.engine.is_quiescent() {
                return Ok(());
            }
            if self.engine.shared.inline {
                continue;
            }
            // A frontier published between drain() returning empty and the
            // generation capture has already bumped the generation we are
            // about to sleep on — with every worker parked behind it, nobody
            // would ever bump again. Re-checking the queue *after* the
            // capture closes the lost-wakeup window: either we see the entry
            // here and drain it, or its publish bumps past `gen` and the
            // wait returns immediately.
            if !lock(&self.engine.shared.pending).is_empty() {
                continue;
            }
            self.engine.shared.signal.wait_past(gen);
        }
    }
}

impl std::fmt::Debug for ResolverPump<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolverPump").field("engine", &self.engine).finish_non_exhaustive()
    }
}
