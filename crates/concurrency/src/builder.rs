//! [`EngineBuilder`]: the one configuration surface for long-lived engines.
//!
//! Engine knobs used to be spread across three field structs —
//! [`SchedulerConfig`] (chase/scheduling), [`EngineConfig`] (service
//! lifecycle) and [`ExchangeConfig`](crate::ExchangeConfig) (the
//! single-update facade's redeclaration of two of them) — and wiring a
//! durable engine meant assembling all of them plus a
//! [`DurabilityConfig`] by hand. The builder subsumes the triplication: every
//! knob appears exactly once, the assembled [`EngineConfig`] remains the
//! single input to the durable config fingerprint (via
//! [`EngineBuilder::config`]), and the terminals pick the right engine
//! constructor for you.
//!
//! ```
//! use youtopia_concurrency::{EngineBuilder, TrackerKind};
//! use youtopia_core::ViolationStateMode;
//! use youtopia_mappings::MappingSet;
//! use youtopia_storage::Database;
//!
//! let mut db = Database::new();
//! db.add_relation("C", ["city"]).unwrap();
//! let engine = EngineBuilder::new()
//!     .workers(2)
//!     .tracker(TrackerKind::Precise)
//!     .violation_state(ViolationStateMode::Shared)
//!     .admission_cap(64)
//!     .build(db, MappingSet::new())
//!     .unwrap();
//! engine.shutdown();
//! ```

use youtopia_core::{ChaseMode, EscalationPolicy, ViolationStateMode};
use youtopia_mappings::MappingSet;
use youtopia_storage::Database;

use crate::deps::TrackerKind;
use crate::durable::{DurabilityConfig, RecoveryError};
use crate::engine::{EngineConfig, ExchangeEngine};
use crate::scheduler::{SchedulerConfig, SchedulingPolicy, SpeculationMode};

/// Fluent construction of an [`ExchangeEngine`] (durable or not). See the
/// [module docs](self); every setter documents which historical field it
/// replaces.
#[derive(Clone, Debug, Default)]
pub struct EngineBuilder {
    config: EngineConfig,
    durability: Option<DurabilityConfig>,
}

impl EngineBuilder {
    /// A builder with the engine defaults: one worker, deterministic,
    /// shared violation index, no durability, unbounded admission/retention.
    pub fn new() -> EngineBuilder {
        EngineBuilder::default()
    }

    // ---- chase / scheduling (historically `SchedulerConfig`) ----

    /// Worker threads (0 = one per core). Replaces
    /// [`SchedulerConfig::workers`].
    pub fn workers(mut self, workers: usize) -> EngineBuilder {
        self.config.scheduler.workers = workers;
        self
    }

    /// Dependency tracker. Replaces [`SchedulerConfig::tracker`].
    pub fn tracker(mut self, tracker: TrackerKind) -> EngineBuilder {
        self.config.scheduler.tracker = tracker;
        self
    }

    /// Scheduling policy. Replaces [`SchedulerConfig::policy`].
    pub fn policy(mut self, policy: SchedulingPolicy) -> EngineBuilder {
        self.config.scheduler.policy = policy;
        self
    }

    /// Violation-queue maintenance mode. Replaces
    /// [`SchedulerConfig::chase_mode`].
    pub fn chase_mode(mut self, mode: ChaseMode) -> EngineBuilder {
        self.config.scheduler.chase_mode = mode;
        self
    }

    /// Violation-state mode: the engine-shared violation index (default) or
    /// the per-update differential baseline. Replaces
    /// [`SchedulerConfig::violation_state`]; see [`crate::viewmaint`].
    pub fn violation_state(mut self, mode: ViolationStateMode) -> EngineBuilder {
        self.config.scheduler.violation_state = mode;
        self
    }

    /// Speculative pre-execution mode for deterministic multi-worker
    /// engines. Replaces [`SchedulerConfig::speculation`].
    pub fn speculation(mut self, mode: SpeculationMode) -> EngineBuilder {
        self.config.scheduler.speculation = mode;
        self
    }

    /// Free-running (non-deterministic) scheduling — incompatible with
    /// durability. Replaces clearing [`SchedulerConfig::deterministic`].
    pub fn free_running(mut self) -> EngineBuilder {
        self.config.scheduler.deterministic = false;
        self
    }

    /// Simulated-user frontier delay in scheduler rounds. Replaces
    /// [`SchedulerConfig::frontier_delay_rounds`].
    pub fn frontier_delay_rounds(mut self, rounds: usize) -> EngineBuilder {
        self.config.scheduler.frontier_delay_rounds = rounds;
        self
    }

    /// Engine-wide cumulative step valve (a batch-run safety net; defaults to
    /// unbounded on a long-lived engine). Replaces
    /// [`SchedulerConfig::max_total_steps`].
    pub fn max_total_steps(mut self, steps: usize) -> EngineBuilder {
        self.config.scheduler.max_total_steps = steps;
        self
    }

    // ---- service lifecycle (historically `EngineConfig`) ----

    /// Priority number of the first submitted update. Replaces
    /// [`EngineConfig::first_update_number`].
    pub fn first_update_number(mut self, first: u64) -> EngineBuilder {
        self.config.first_update_number = first;
        self
    }

    /// Per-update step budget (the runaway update fails alone). Replaces
    /// [`EngineConfig::max_steps_per_update`] and
    /// [`ExchangeConfig::max_steps_per_update`](crate::ExchangeConfig::max_steps_per_update).
    pub fn max_steps_per_update(mut self, limit: usize) -> EngineBuilder {
        self.config.max_steps_per_update = limit;
        self
    }

    /// Admission cap (backpressure, not queueing). Replaces
    /// [`EngineConfig::admission_cap`].
    pub fn admission_cap(mut self, cap: usize) -> EngineBuilder {
        self.config.admission_cap = cap;
        self
    }

    /// Retention horizon for finished update records. Replaces
    /// [`EngineConfig::retention_horizon`].
    pub fn retention_horizon(mut self, horizon: usize) -> EngineBuilder {
        self.config.retention_horizon = horizon;
        self
    }

    /// Inline (threadless, caller-driven) mode. Replaces
    /// [`EngineConfig::inline`].
    pub fn inline(mut self) -> EngineBuilder {
        self.config.inline = true;
        self
    }

    /// Frontier escalation policy for the lifecycle sweeper. Replaces
    /// [`EngineConfig::escalation`].
    pub fn escalation(mut self, policy: EscalationPolicy) -> EngineBuilder {
        self.config.escalation = policy;
        self
    }

    /// Retention bound for the shared violation index's delta backlog
    /// (defaults to [`youtopia_storage::DELTA_BACKLOG_CAP`]; clamped to at
    /// least 1). Smaller caps trade detection time (gap fallbacks) for
    /// memory; not part of the durable config fingerprint. Replaces reaching
    /// into the store by hand.
    pub fn delta_backlog_cap(mut self, cap: usize) -> EngineBuilder {
        self.config.delta_backlog_cap = cap;
        self
    }

    /// Gives the engine a replica identity: it becomes a node of a
    /// replicated deployment (see [`crate::replicate`]). Work enters through
    /// `submit_replicated` / `apply_remote_deltas` instead of
    /// [`ExchangeEngine::submit`]; implies deterministic scheduling and is
    /// mutually exclusive with [`durable`](Self::durable).
    pub fn replicated(mut self, node: youtopia_core::replication::NodeId) -> EngineBuilder {
        self.config.replica = Some(node);
        self
    }

    // ---- durability ----

    /// Makes the engine durable under `durability.dir`:
    /// [`build`](Self::build) write-ahead-logs every submission and answer,
    /// and [`recover`](Self::recover) replays a crashed engine from the same
    /// directory.
    pub fn durable(mut self, durability: DurabilityConfig) -> EngineBuilder {
        self.durability = Some(durability);
        self
    }

    // ---- escape hatch / introspection ----

    /// Replaces the whole scheduler block at once — for callers migrating
    /// from a hand-assembled [`SchedulerConfig`].
    pub fn scheduler(mut self, scheduler: SchedulerConfig) -> EngineBuilder {
        self.config.scheduler = scheduler;
        self
    }

    /// The assembled [`EngineConfig`] — exactly what the terminals hand the
    /// engine, and the **single** input (with the mapping set) to the durable
    /// config fingerprint. Durable state written by a built engine can only
    /// be recovered under a builder whose `config()` matches.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    // ---- terminals ----

    /// Starts the engine. Infallible without [`durable`](Self::durable);
    /// with it, creating the WAL/snapshot files can fail, and free-running
    /// scheduling is rejected (durability needs the deterministic sequencer).
    pub fn build(
        self,
        db: Database,
        mappings: MappingSet,
    ) -> Result<ExchangeEngine, RecoveryError> {
        match self.durability {
            None => Ok(ExchangeEngine::new(db, mappings, self.config)),
            Some(durability) => ExchangeEngine::new_durable(db, mappings, self.config, durability),
        }
    }

    /// Recovers a crashed durable engine from the configured directory (the
    /// database comes from its snapshot, not from the caller).
    ///
    /// # Panics
    ///
    /// If [`durable`](Self::durable) was not configured — there is nothing
    /// to recover from.
    pub fn recover(self, mappings: MappingSet) -> Result<ExchangeEngine, RecoveryError> {
        let durability =
            self.durability.expect("EngineBuilder::recover requires EngineBuilder::durable(..)");
        ExchangeEngine::recover(mappings, self.config, durability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_core::{InitialOp, RandomResolver};
    use youtopia_storage::{UpdateId, Value};

    use crate::engine::ResolverPump;

    fn travel() -> (Database, MappingSet) {
        let mut db = Database::new();
        db.add_relation("C", ["city"]).unwrap();
        db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        let mut mappings = MappingSet::new();
        mappings.add_parsed(db.catalog(), "sigma1: C(c) -> exists a, l. S(a, l, c)").unwrap();
        (db, mappings)
    }

    #[test]
    fn builder_knobs_land_in_the_assembled_config() {
        let b = EngineBuilder::new()
            .workers(3)
            .tracker(TrackerKind::Precise)
            .policy(SchedulingPolicy::StratumRoundRobin)
            .chase_mode(ChaseMode::FullRecheck)
            .violation_state(ViolationStateMode::PerUpdate)
            .speculation(SpeculationMode::Off)
            .frontier_delay_rounds(2)
            .max_total_steps(99)
            .first_update_number(10)
            .max_steps_per_update(500)
            .admission_cap(8)
            .retention_horizon(16)
            .delta_backlog_cap(7)
            .replicated(youtopia_core::replication::NodeId(4))
            .inline()
            .escalation(EscalationPolicy::Wait);
        let c = b.config();
        assert_eq!(c.scheduler.workers, 3);
        assert_eq!(c.scheduler.tracker, TrackerKind::Precise);
        assert_eq!(c.scheduler.policy, SchedulingPolicy::StratumRoundRobin);
        assert_eq!(c.scheduler.chase_mode, ChaseMode::FullRecheck);
        assert_eq!(c.scheduler.violation_state, ViolationStateMode::PerUpdate);
        assert_eq!(c.scheduler.speculation, SpeculationMode::Off);
        assert_eq!(c.scheduler.frontier_delay_rounds, 2);
        assert_eq!(c.scheduler.max_total_steps, 99);
        assert_eq!(c.first_update_number, 10);
        assert_eq!(c.max_steps_per_update, 500);
        assert_eq!(c.admission_cap, 8);
        assert_eq!(c.retention_horizon, 16);
        assert_eq!(c.delta_backlog_cap, 7);
        assert_eq!(c.replica, Some(youtopia_core::replication::NodeId(4)));
        assert!(c.inline);
    }

    #[test]
    fn delta_backlog_cap_reaches_the_violation_index() {
        let (db, mappings) = travel();
        let engine =
            EngineBuilder::new().inline().delta_backlog_cap(3).build(db, mappings).unwrap();
        assert_eq!(engine.violation_index().backlog_cap, 3);
        engine.shutdown();
    }

    #[test]
    fn replicated_engines_refuse_plain_submission() {
        let (db, mappings) = travel();
        let c = db.relation_id("C").unwrap();
        let engine = EngineBuilder::new()
            .inline()
            .replicated(youtopia_core::replication::NodeId(1))
            .build(db, mappings)
            .unwrap();
        let err = engine
            .submit(InitialOp::Insert { relation: c, values: vec![Value::constant("X")] })
            .unwrap_err();
        assert!(matches!(err, crate::engine::SubmitError::Replicated));
        engine.shutdown();
    }

    #[test]
    fn durable_replicated_build_is_rejected() {
        let dir = std::env::temp_dir().join(format!("yt-builder-repl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (db, mappings) = travel();
        let err = EngineBuilder::new()
            .inline()
            .replicated(youtopia_core::replication::NodeId(0))
            .durable(DurabilityConfig::new(&dir))
            .build(db, mappings);
        assert!(matches!(err, Err(RecoveryError::ReplicatedUnsupported)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_builder_matches_the_default_engine_config() {
        // The builder must not silently fork the defaults: a durable engine
        // built either way fingerprints identically.
        let built = EngineBuilder::new().config();
        let legacy = EngineConfig::default();
        assert_eq!(format!("{built:?}"), format!("{legacy:?}"));
    }

    #[test]
    fn built_engines_run_updates_end_to_end() {
        let (db, mappings) = travel();
        let c = db.relation_id("C").unwrap();
        let engine = EngineBuilder::new().inline().build(db, mappings).unwrap();
        let handle = engine
            .submit(InitialOp::Insert { relation: c, values: vec![Value::constant("Ithaca")] })
            .unwrap();
        let mut resolver = RandomResolver::seeded(4);
        ResolverPump::new(&engine, &mut resolver).run_until_quiescent().unwrap();
        assert!(handle.report().unwrap().terminated);
        let (db, _, _) = engine.shutdown();
        let s = db.relation_id("S").unwrap();
        assert_eq!(db.visible_count(s, UpdateId::OMNISCIENT), 1);
    }

    #[test]
    fn durable_build_then_recover_round_trips() {
        let dir = std::env::temp_dir().join(format!("yt-builder-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (db, mappings) = travel();
        let c = db.relation_id("C").unwrap();
        let builder = EngineBuilder::new().inline().durable(DurabilityConfig::new(&dir));
        {
            let engine = builder.clone().build(db, mappings.clone()).unwrap();
            let mut resolver = RandomResolver::seeded(4);
            engine
                .submit(InitialOp::Insert { relation: c, values: vec![Value::constant("X")] })
                .unwrap();
            ResolverPump::new(&engine, &mut resolver).run_until_quiescent().unwrap();
            engine.shutdown();
        }
        let engine = builder.recover(mappings).unwrap();
        assert_eq!(engine.next_update_id(), UpdateId(2));
        // Replay stops at the last logged record; the chase work past it
        // (unlogged, deterministic) resumes under the recovered engine's pump.
        let mut resolver = RandomResolver::seeded(4);
        ResolverPump::new(&engine, &mut resolver).run_until_quiescent().unwrap();
        let (db, _, _) = engine.shutdown();
        let s = db.relation_id("S").unwrap();
        assert_eq!(db.visible_count(s, UpdateId::OMNISCIENT), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn free_running_durable_build_is_rejected() {
        let dir = std::env::temp_dir().join(format!("yt-builder-fr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (db, mappings) = travel();
        let err = EngineBuilder::new()
            .free_running()
            .durable(DurabilityConfig::new(&dir))
            .build(db, mappings);
        assert!(matches!(err, Err(RecoveryError::FreeRunningUnsupported)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
