//! Differential and lifecycle tests for the engine-shared violation index
//! ([`youtopia::concurrency::viewmaint`]).
//!
//! * **Mode equivalence** — the shared violation index is a pure
//!   representation change: for every generated workload, every tracker,
//!   scheduling policy, chase mode, worker count and speculation mode, an
//!   engine running [`ViolationStateMode::Shared`] must be byte-identical to
//!   one running [`ViolationStateMode::PerUpdate`] *and* to the
//!   single-threaded [`ConcurrentRun`] reference — the same final database
//!   rendering, the same per-update statistics (hence the same abort sets)
//!   and the same [`RunMetrics`] modulo wall clock. Both modes see the same
//!   over-approximate dirty sets filtered by the same per-entry epoch check,
//!   so nothing weaker than byte equality is acceptable.
//! * **Bounded backlog** — a long-lived engine cycling through tens of
//!   thousands of trivial updates must not accumulate delta-log backlog: the
//!   quiescence GC truncates the shared feed whenever no cursor can still
//!   need it.
//! * **Speculative discards** — discarded speculations buffer deltas in
//!   their overlay; none of that may leak into (or pin) the committed feed
//!   once the engine is quiescent.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use youtopia::chase::ChaseMode;
use youtopia::concurrency::{RunMetrics, SchedulerConfig, SchedulingPolicy, SpeculationMode};
use youtopia::mappings::satisfies_all;
use youtopia::storage::DELTA_BACKLOG_CAP;
use youtopia::workload::{build_fixture, generate_workload, ExperimentConfig, WorkloadKind};
use youtopia::{
    ConcurrentRun, Database, EngineBuilder, ExchangeEngine, InitialOp, MappingSet, RandomResolver,
    ResolverPump, TrackerKind, UpdateId, UpdateStatus, Value, ViolationStateMode,
};

/// Strips the wall-clock field and the speculation counters (scheduling
/// artefacts) so metrics compare byte-exactly.
fn scrub(mut m: RunMetrics) -> RunMetrics {
    m.wall_time = std::time::Duration::ZERO;
    m.speculations_started = 0;
    m.speculations_committed = 0;
    m.speculations_discarded = 0;
    m
}

/// Byte-exact rendering of every relation's visible contents plus the null
/// counter — the "final database state" the equivalence is pinned on.
fn render(db: &Database) -> String {
    let mut out = String::new();
    for relation in db.catalog().relation_ids() {
        out.push_str(&format!("{relation:?}: {:?}\n", db.scan(relation, UpdateId::OMNISCIENT)));
    }
    out.push_str(&format!("nulls: {}\n", db.null_counter()));
    out
}

/// Runs one generated workload through the `PerUpdate` reference scheduler,
/// then through engines in **both** violation-state modes across the
/// speculation × worker grid, asserting byte equality throughout.
fn shared_matches_per_update(
    seed: u64,
    tracker: TrackerKind,
    kind: WorkloadKind,
    policy: SchedulingPolicy,
    chase_mode: ChaseMode,
) {
    let mut config = ExperimentConfig::tiny();
    config.seed = seed;
    let fixture = build_fixture(&config).expect("fixture builds");
    let ops: Vec<InitialOp> = generate_workload(
        &config,
        &fixture.schema,
        &fixture.initial_db,
        &fixture.mappings,
        kind,
        seed,
    )
    .into_iter()
    .take(16)
    .collect();
    let first_number = config.initial_tuples as u64 + 1_000;
    let scheduler = SchedulerConfig::with_tracker(tracker)
        .with_policy(policy)
        .with_chase_mode(chase_mode)
        .with_frontier_delay_rounds(3);

    // The reference is the per-update differential baseline: every live
    // execution maintains its own queue against its own epoch watermarks.
    let mut reference = ConcurrentRun::new(
        fixture.initial_db.clone(),
        fixture.mappings.clone(),
        ops.clone(),
        first_number,
        scheduler.with_violation_state(ViolationStateMode::PerUpdate),
    );
    let ref_metrics = reference.run(&mut RandomResolver::seeded(seed ^ 0xE61E)).unwrap();
    let ref_stats = reference.update_stats();
    let (ref_db, ref_mappings, _) = reference.into_parts();
    assert!(satisfies_all(&ref_db.snapshot(UpdateId::OMNISCIENT), &ref_mappings));
    let ref_abort_set: BTreeSet<UpdateId> =
        ref_stats.iter().filter(|(_, s)| s.restarts > 0).map(|(id, _)| *id).collect();

    for mode in [ViolationStateMode::Shared, ViolationStateMode::PerUpdate] {
        for speculation in [SpeculationMode::Off, SpeculationMode::Eager] {
            for workers in [1usize, 2, 4] {
                let engine = EngineBuilder::new()
                    .scheduler(scheduler.with_workers(workers).with_speculation(speculation))
                    .violation_state(mode)
                    .first_update_number(first_number)
                    .build(fixture.initial_db.clone(), fixture.mappings.clone())
                    .expect("non-durable engines build infallibly");
                let handles = engine.submit_batch(ops.clone()).expect("uncapped submission");
                let mut resolver = RandomResolver::seeded(seed ^ 0xE61E);
                ResolverPump::new(&engine, &mut resolver).run_until_quiescent().unwrap();
                let label = format!(
                    "seed {seed}, {tracker}, {kind}, {policy:?}, {chase_mode:?}, \
                     {mode:?}, {workers} workers, {speculation:?}"
                );
                for handle in &handles {
                    assert_eq!(handle.status(), UpdateStatus::Terminated, "{label}");
                }
                let stats = engine.update_stats();
                assert_eq!(stats, ref_stats, "{label}: per-update stats");
                let abort_set: BTreeSet<UpdateId> =
                    stats.iter().filter(|(_, s)| s.restarts > 0).map(|(id, _)| *id).collect();
                assert_eq!(abort_set, ref_abort_set, "{label}: abort set");
                let index = engine.violation_index();
                assert_eq!(index.backlog_cap, DELTA_BACKLOG_CAP, "{label}: advertised cap");
                assert!(index.backlog_len <= index.backlog_cap, "{label}: backlog within cap");
                let (db, _, metrics) = engine.shutdown();
                assert_eq!(scrub(metrics), scrub(ref_metrics.clone()), "{label}: metrics");
                assert_eq!(render(&db), render(&ref_db), "{label}: final database state");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// PRECISE over the mixed workload (inserts + deletes, forward and
    /// backward repairs) — the workhorse combination.
    #[test]
    fn precise_mixed_is_identical_across_violation_modes(seed in 0u64..10_000) {
        shared_matches_per_update(
            seed,
            TrackerKind::Precise,
            WorkloadKind::Mixed,
            SchedulingPolicy::StepRoundRobin,
            ChaseMode::Incremental,
        );
    }

    /// COARSE over deep cascades: long violation queues, many epochs per
    /// update — the regime where the shared feed does the most work.
    #[test]
    fn coarse_deep_cascade_is_identical_across_violation_modes(seed in 0u64..10_000) {
        shared_matches_per_update(
            seed,
            TrackerKind::Coarse,
            WorkloadKind::DeepCascade,
            SchedulingPolicy::StepRoundRobin,
            ChaseMode::Incremental,
        );
    }

    /// NAIVE + the stratum policy + `FullRecheck`: the full-recheck chase
    /// mode never consults the delta feed, so both violation modes must
    /// degenerate to exactly the same rebuild-from-scratch behaviour.
    #[test]
    fn naive_stratum_full_recheck_is_identical_across_violation_modes(seed in 0u64..10_000) {
        shared_matches_per_update(
            seed,
            TrackerKind::Naive,
            WorkloadKind::Skewed,
            SchedulingPolicy::StratumRoundRobin,
            ChaseMode::FullRecheck,
        );
    }
}

// ---------------------------------------------------------------------------
// Long-lived engines: the delta backlog stays bounded
// ---------------------------------------------------------------------------

/// A bare single-relation fixture whose updates terminate immediately (no
/// mappings, so no chase beyond the initial operation) — every cycle still
/// appends at least one entry to the shared delta feed.
fn trivial_fixture() -> (Database, MappingSet, youtopia::RelationId) {
    let mut db = Database::new();
    db.add_relation("K", ["key", "value"]).unwrap();
    let k = db.relation_id("K").unwrap();
    (db, MappingSet::new(), k)
}

/// Spin-waits (with a deadline) until the quiescence GC has truncated the
/// shared delta backlog. The pump observes quiescence the instant the last
/// action commits, which can be a moment before the worker that committed it
/// finishes its GC pass — so "drained" is an eventually-true condition, never
/// an instantaneous one.
fn await_drained_backlog(engine: &ExchangeEngine, context: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if engine.violation_index().backlog_len == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{context}: backlog never drained ({} entries left)",
            engine.violation_index().backlog_len
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// ≥16k submit/terminate cycles: each writes at least one delta, so without
/// the quiescence GC the shared backlog would cross the assertion bound
/// within the first ~1.5k cycles (and the `DELTA_BACKLOG_CAP` high-water
/// mark soon after). With it, the feed is truncated every time the engine
/// drains, and a long-lived engine holds O(1) delta memory.
#[test]
fn long_lived_engines_hold_bounded_delta_backlog() {
    let (db, mappings, k) = trivial_fixture();
    let engine = EngineBuilder::new()
        .tracker(TrackerKind::Precise)
        .workers(1)
        .first_update_number(1_000)
        .retention_horizon(32)
        .build(db, mappings)
        .expect("non-durable engines build infallibly");

    // Far below the cap: backlog may transiently hold the deltas of updates
    // admitted since the last GC, but never thousands of dead entries.
    let bound = 1_024;
    let cycles = 16_384u64;
    for i in 0..cycles {
        let handle = engine
            .submit(InitialOp::Insert {
                relation: k,
                values: vec![Value::constant(&format!("k{i}")), Value::constant("v")],
            })
            .expect("admission");
        assert!(handle.wait().expect("trivial update terminates").terminated);
        if i % 512 == 0 {
            let index = engine.violation_index();
            assert!(
                index.backlog_len <= bound,
                "cycle {i}: {} buffered deltas, bound {bound}",
                index.backlog_len
            );
            assert_eq!(index.backlog_cap, DELTA_BACKLOG_CAP);
        }
    }
    engine.wait_quiescent().expect("engine drains");
    await_drained_backlog(&engine, "trivial cycles");
    // The sequence number itself never resets — cursors must keep advancing
    // monotonically across truncations.
    assert!(engine.violation_index().delta_seq >= cycles);
    let (final_db, _, metrics) = engine.shutdown();
    assert_eq!(metrics.workload_size, cycles as usize);
    assert_eq!(final_db.visible_count(k, UpdateId::OMNISCIENT), cycles as usize);
}

/// Speculative discards must not leak buffered deltas: a multi-worker eager
/// engine discards failed speculations (whose overlays buffered their own
/// delta views), and once quiescent the committed feed still drains to
/// empty — nothing a discarded speculation saw pins the shared backlog.
#[test]
fn discarded_speculations_leak_no_buffered_deltas() {
    let mut config = ExperimentConfig::tiny();
    config.seed = 2_718;
    let fixture = build_fixture(&config).expect("fixture builds");
    let ops: Vec<InitialOp> = generate_workload(
        &config,
        &fixture.schema,
        &fixture.initial_db,
        &fixture.mappings,
        WorkloadKind::Mixed,
        config.seed,
    )
    .into_iter()
    .take(16)
    .collect();
    let engine = EngineBuilder::new()
        .tracker(TrackerKind::Precise)
        .workers(4)
        .speculation(SpeculationMode::Eager)
        .frontier_delay_rounds(3)
        .first_update_number(config.initial_tuples as u64 + 1_000)
        .build(fixture.initial_db.clone(), fixture.mappings.clone())
        .expect("non-durable engines build infallibly");
    engine.submit_batch(ops).expect("uncapped submission");
    let mut resolver = RandomResolver::seeded(config.seed ^ 0xE61E);
    ResolverPump::new(&engine, &mut resolver).run_until_quiescent().unwrap();
    await_drained_backlog(&engine, "speculative run");
    let (db, mappings, metrics) = engine.shutdown();
    // Speculation bookkeeping balances: every started speculation was either
    // committed or discarded, and discards left no residue above.
    assert_eq!(
        metrics.speculations_started,
        metrics.speculations_committed + metrics.speculations_discarded,
        "speculation counters balance"
    );
    assert!(satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), &mappings));
}
