//! # youtopia-concurrency
//!
//! Optimistic multiversion concurrency control for Youtopia updates
//! (Sections 3–5 of the paper): the chase-step scheduler (Algorithms 3 and 4),
//! retroactive read-query conflict detection, and the three cascading-abort
//! dependency trackers `NAIVE`, `COARSE` and `PRECISE` whose behaviour the
//! paper's experiments (Figures 3 and 4) compare.
//!
//! A [`ConcurrentRun`] takes a database, a mapping set and a batch of initial
//! operations; it interleaves the resulting updates at chase-step granularity,
//! lets new updates proceed while older ones wait for (simulated) frontier
//! operations, and aborts-and-restarts updates whose reads were premature.
//!
//! The service form of the same machinery is the long-lived
//! [`ExchangeEngine`]: [`ExchangeEngine::submit`] accepts updates at any time,
//! blocked chases surface as [`ExchangeEngine::pending_frontiers`] and resume
//! via [`ExchangeEngine::answer`], and [`ParallelRun`] / [`UpdateExchange`]
//! are thin batch/single-update façades over it.
//!
//! ```
//! use youtopia_concurrency::{ConcurrentRun, SchedulerConfig, TrackerKind};
//! use youtopia_core::{InitialOp, RandomResolver};
//! use youtopia_mappings::{satisfies_all, MappingSet};
//! use youtopia_storage::{Database, UpdateId, Value};
//!
//! let mut db = Database::new();
//! db.add_relation("C", ["city"]).unwrap();
//! db.add_relation("S", ["code", "location", "city_served"]).unwrap();
//! let mut mappings = MappingSet::new();
//! mappings.add_parsed(db.catalog(), "sigma1: C(c) -> exists a, l. S(a, l, c)").unwrap();
//!
//! let c = db.relation_id("C").unwrap();
//! let ops = vec![
//!     InitialOp::Insert { relation: c, values: vec![Value::constant("Ithaca")] },
//!     InitialOp::Insert { relation: c, values: vec![Value::constant("Syracuse")] },
//! ];
//! let mut run = ConcurrentRun::new(db, mappings, ops, 1,
//!     SchedulerConfig::with_tracker(TrackerKind::Precise));
//! let metrics = run.run(&mut RandomResolver::seeded(0)).unwrap();
//! assert_eq!(metrics.workload_size, 2);
//! let (db, mappings, _) = run.into_parts();
//! assert!(satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), &mappings));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod conflict;
pub mod deps;
pub mod durable;
pub mod engine;
pub mod error;
pub mod exchange;
pub mod log;
pub mod metrics;
pub mod parallel;
pub mod replicate;
pub mod scheduler;
pub mod striped;
pub mod viewmaint;

pub use builder::EngineBuilder;
pub use conflict::{
    change_conflicts_with_reader, change_conflicts_with_reader_keyed, direct_conflicts,
    DirectConflict,
};
pub use deps::{
    CoarseTracker, DependencyTracker, HybridTracker, NaiveTracker, PreciseTracker, TrackerKind,
};
pub use durable::{decode_record, DurabilityConfig, RecoveryError, WalRecord};
pub use engine::{
    AnswerOutcome, ClientId, EngineConfig, ExchangeEngine, Priority, ResolverPump, RetryAfter,
    SubmitError, SweepReport, UpdateHandle, UpdateStatus,
};
pub use error::EngineError;
#[allow(deprecated)] // re-exported so existing `with_config` callers keep compiling
pub use exchange::ExchangeConfig;
pub use exchange::{DbRef, DbRefMut, UpdateExchange};
pub use log::{ChangeSource, ReadLog, WriteLog};
pub use metrics::{AveragedMetrics, RunMetrics};
pub use parallel::ParallelRun;
pub use replicate::{SyncError, SyncReport};
pub use scheduler::{ConcurrentRun, SchedulerConfig, SchedulingPolicy, SpeculationMode};
pub use striped::{StripedReadLog, StripedWriteLog};
pub use viewmaint::ViolationIndexStats;
// The violation-state knob lives in `youtopia-core` (executions own it) but
// is configured here; re-exported so engine callers need one import path.
pub use youtopia_core::ViolationStateMode;
