//! A single-threaded update-exchange facade.
//!
//! [`UpdateExchange`] owns a database and a mapping set and runs one update at
//! a time to completion, consulting a [`FrontierResolver`] whenever a chase
//! blocks. This is the API the examples use, the workload generator uses to
//! build the initial database of Section 6, and the simplest way to try the
//! system (see `examples/quickstart.rs`).

use youtopia_mappings::{satisfies_all, MappingSet};
use youtopia_storage::{Database, NullId, RelationId, TupleId, UpdateId, Value};

use crate::error::ChaseError;
use crate::resolver::FrontierResolver;
use crate::update::{ChaseMode, InitialOp, UpdateExecution, UpdateState, UpdateStats};

/// Summary of one completed update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReport {
    /// The update's priority number.
    pub update: UpdateId,
    /// Execution counters.
    pub stats: UpdateStats,
    /// Whether the update terminated (it always does unless the step limit
    /// was hit).
    pub terminated: bool,
}

/// Configuration of the single-threaded exchange.
#[derive(Clone, Copy, Debug)]
pub struct ExchangeConfig {
    /// Safety valve: the maximum number of chase steps a single update may
    /// take. Chases driven by resolvers that never unify (e.g.
    /// [`crate::resolver::ExpandResolver`] under cyclic mappings) would
    /// otherwise run forever.
    pub max_steps_per_update: usize,
    /// How executions maintain their violation queues (delta-driven by
    /// default; [`ChaseMode::FullRecheck`] is the differential-testing /
    /// benchmarking reference path).
    pub chase_mode: ChaseMode,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig { max_steps_per_update: 100_000, chase_mode: ChaseMode::default() }
    }
}

/// Owns a database plus mappings and runs updates one at a time.
#[derive(Debug)]
pub struct UpdateExchange {
    db: Database,
    mappings: MappingSet,
    config: ExchangeConfig,
    next_update: u64,
}

impl UpdateExchange {
    /// Creates an exchange over an existing database and mapping set.
    pub fn new(db: Database, mappings: MappingSet) -> UpdateExchange {
        UpdateExchange { db, mappings, config: ExchangeConfig::default(), next_update: 1 }
    }

    /// Creates an exchange with a custom configuration.
    pub fn with_config(
        db: Database,
        mappings: MappingSet,
        config: ExchangeConfig,
    ) -> UpdateExchange {
        UpdateExchange { db, mappings, config, next_update: 1 }
    }

    /// The database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the database (e.g. to register relations or seed
    /// tuples outside of update exchange).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The mapping set.
    pub fn mappings(&self) -> &MappingSet {
        &self.mappings
    }

    /// Mutable access to the mappings (users add mappings as the repository
    /// grows).
    pub fn mappings_mut(&mut self) -> &mut MappingSet {
        &mut self.mappings
    }

    /// Consumes the exchange, returning its parts.
    pub fn into_parts(self) -> (Database, MappingSet) {
        (self.db, self.mappings)
    }

    /// The priority number the next update will receive.
    pub fn next_update_id(&self) -> UpdateId {
        UpdateId(self.next_update)
    }

    /// Whether the database currently satisfies every mapping.
    pub fn is_consistent(&self) -> bool {
        satisfies_all(&self.db.snapshot(UpdateId::OMNISCIENT), &self.mappings)
    }

    /// Runs a complete update — the initial operation plus the entire chase —
    /// consulting `resolver` whenever the chase blocks on a frontier.
    pub fn run_update(
        &mut self,
        op: InitialOp,
        resolver: &mut dyn FrontierResolver,
    ) -> Result<UpdateReport, ChaseError> {
        let id = UpdateId(self.next_update);
        self.next_update += 1;
        let mut exec = UpdateExecution::with_mode(id, op, self.config.chase_mode);
        loop {
            if exec.stats().steps >= self.config.max_steps_per_update {
                return Err(ChaseError::StepLimitExceeded {
                    update: id,
                    limit: self.config.max_steps_per_update,
                });
            }
            match exec.state() {
                UpdateState::Terminated => break,
                UpdateState::Ready => {
                    exec.step(&mut self.db, &self.mappings)?;
                }
                UpdateState::AwaitingFrontier => {
                    let request =
                        exec.pending_frontier().expect("state is AwaitingFrontier").clone();
                    let decision = {
                        let snap = self.db.snapshot(id);
                        resolver.resolve(&snap, &request)
                    };
                    exec.resolve_frontier(&self.mappings, decision)?;
                }
            }
        }
        Ok(UpdateReport { update: id, stats: exec.stats(), terminated: true })
    }

    /// Convenience: run an insertion given a relation name and values.
    pub fn insert(
        &mut self,
        relation: &str,
        values: Vec<Value>,
        resolver: &mut dyn FrontierResolver,
    ) -> Result<UpdateReport, ChaseError> {
        let relation = self.relation(relation)?;
        self.run_update(InitialOp::Insert { relation, values }, resolver)
    }

    /// Convenience: run an insertion of string constants.
    pub fn insert_constants(
        &mut self,
        relation: &str,
        values: &[&str],
        resolver: &mut dyn FrontierResolver,
    ) -> Result<UpdateReport, ChaseError> {
        let values = values.iter().map(|v| Value::constant(v)).collect();
        self.insert(relation, values, resolver)
    }

    /// Convenience: run a deletion.
    pub fn delete(
        &mut self,
        relation: &str,
        tuple: TupleId,
        resolver: &mut dyn FrontierResolver,
    ) -> Result<UpdateReport, ChaseError> {
        let relation = self.relation(relation)?;
        self.run_update(InitialOp::Delete { relation, tuple }, resolver)
    }

    /// Convenience: run a null-replacement.
    pub fn replace_null(
        &mut self,
        null: NullId,
        replacement: Value,
        resolver: &mut dyn FrontierResolver,
    ) -> Result<UpdateReport, ChaseError> {
        self.run_update(InitialOp::NullReplace { null, replacement }, resolver)
    }

    fn relation(&self, name: &str) -> Result<RelationId, ChaseError> {
        self.db
            .relation_id(name)
            .ok_or_else(|| ChaseError::InvalidDecision(format!("unknown relation `{name}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::{ExpandResolver, RandomResolver, UnifyResolver};
    use youtopia_mappings::find_violations;

    fn travel_exchange() -> UpdateExchange {
        let mut db = Database::new();
        db.add_relation("C", ["city"]).unwrap();
        db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        db.add_relation("A", ["location", "name"]).unwrap();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        let mut mappings = MappingSet::new();
        mappings
            .add_parsed_many(
                db.catalog(),
                "
                sigma1: C(c) -> exists a, l. S(a, l, c)
                sigma2: S(a, c, c2) -> C(c) & C(c2)
                sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
                ",
            )
            .unwrap();
        UpdateExchange::new(db, mappings)
    }

    #[test]
    fn consistency_is_restored_after_every_update() {
        let mut ex = travel_exchange();
        let mut resolver = RandomResolver::seeded(11);
        assert!(ex.is_consistent());
        ex.insert_constants("A", &["Geneva", "Geneva Winery"], &mut resolver).unwrap();
        ex.insert_constants("T", &["Geneva Winery", "XYZ", "Syracuse"], &mut resolver).unwrap();
        ex.insert_constants("C", &["Ithaca"], &mut resolver).unwrap();
        assert!(ex.is_consistent());
        assert!(find_violations(&ex.db().snapshot(UpdateId::OMNISCIENT), ex.mappings()).is_empty());
        assert_eq!(ex.next_update_id(), UpdateId(4));
    }

    #[test]
    fn cyclic_mappings_terminate_with_the_random_resolver() {
        // σ1/σ2 form the C ↔ S cycle of Figure 2; the classical chase would
        // not terminate, but the cooperative chase with a (simulated) user
        // does.
        let mut ex = travel_exchange();
        let mut resolver = RandomResolver::seeded(3);
        for i in 0..10 {
            ex.insert_constants("C", &[&format!("City{i}")], &mut resolver).unwrap();
        }
        assert!(ex.is_consistent());
    }

    #[test]
    fn unify_resolver_keeps_the_database_small() {
        let mut ex = travel_exchange();
        let mut unify = UnifyResolver;
        ex.insert_constants("C", &["Ithaca"], &mut unify).unwrap();
        ex.insert_constants("C", &["Syracuse"], &mut unify).unwrap();
        let s = ex.db().relation_id("S").unwrap();
        let c = ex.db().relation_id("C").unwrap();
        // Each city gets one suggested-airport row (from σ1); σ2 then reuses
        // existing cities through unification.
        assert!(ex.db().visible_count(s, UpdateId::OMNISCIENT) <= 2);
        assert!(ex.db().visible_count(c, UpdateId::OMNISCIENT) <= 3);
        assert!(ex.is_consistent());
    }

    #[test]
    fn expand_resolver_hits_the_step_limit_on_cyclic_mappings() {
        // Always expanding reproduces the classical chase's divergence on the
        // C ↔ S cycle; the exchange's step limit turns that into an error
        // instead of a hang.
        let mut db = Database::new();
        db.add_relation("C", ["city"]).unwrap();
        db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        let mut mappings = MappingSet::new();
        mappings
            .add_parsed_many(
                db.catalog(),
                "
                sigma1: C(c) -> exists a, l. S(a, l, c)
                sigma2: S(a, c, c2) -> C(c) & C(c2)
                ",
            )
            .unwrap();
        let mut ex = UpdateExchange::with_config(
            db,
            mappings,
            ExchangeConfig { max_steps_per_update: 200, ..ExchangeConfig::default() },
        );
        let mut expand = ExpandResolver;
        let err = ex.insert_constants("C", &["Ithaca"], &mut expand);
        assert!(matches!(err, Err(ChaseError::StepLimitExceeded { .. })));
    }

    #[test]
    fn deletions_cascade_through_the_backward_chase() {
        let mut ex = travel_exchange();
        let mut resolver = RandomResolver::seeded(5);
        ex.insert_constants("A", &["Geneva", "Geneva Winery"], &mut resolver).unwrap();
        ex.insert_constants("T", &["Geneva Winery", "XYZ", "Syracuse"], &mut resolver).unwrap();
        assert!(ex.is_consistent());

        let r = ex.db().relation_id("R").unwrap();
        let review = ex.db().scan(r, UpdateId::OMNISCIENT)[0].0;
        let report = ex.delete("R", review, &mut resolver).unwrap();
        assert!(report.terminated);
        assert!(ex.is_consistent());
        // Something on the LHS had to go.
        let a = ex.db().relation_id("A").unwrap();
        let t = ex.db().relation_id("T").unwrap();
        let total = ex.db().visible_count(a, UpdateId::OMNISCIENT)
            + ex.db().visible_count(t, UpdateId::OMNISCIENT);
        assert!(total < 2);
    }

    #[test]
    fn null_replacement_updates_run_to_completion() {
        let mut ex = travel_exchange();
        let mut resolver = RandomResolver::seeded(9);
        ex.insert_constants("A", &["Niagara Falls", "Niagara Falls"], &mut resolver).unwrap();
        // Insert a tour with an unknown company.
        let x = ex.db_mut().fresh_null();
        let t_values =
            vec![Value::constant("Niagara Falls"), Value::Null(x), Value::constant("Toronto")];
        ex.insert("T", t_values, &mut resolver).unwrap();
        assert!(ex.is_consistent());
        // Completing the null keeps the database consistent.
        let report = ex.replace_null(x, Value::constant("ABC Tours"), &mut resolver).unwrap();
        assert!(report.terminated);
        assert!(ex.is_consistent());
    }

    #[test]
    fn unknown_relation_names_are_rejected() {
        let mut ex = travel_exchange();
        let mut resolver = RandomResolver::seeded(1);
        assert!(ex.insert_constants("Nope", &["x"], &mut resolver).is_err());
        let (db, mappings) = ex.into_parts();
        assert_eq!(db.catalog().len(), 5);
        assert_eq!(mappings.len(), 3);
    }
}
