//! Offline, API-compatible stub of the parts of `rand 0.8` this workspace
//! uses. See `vendor/README.md` for scope and caveats.
//!
//! The core generator is xoshiro256** seeded through SplitMix64 — small,
//! fast, and deterministic under a fixed seed, which is all the workspace
//! relies on. Streams do **not** match upstream `rand`'s ChaCha12 `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (stub: only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range — implemented for the
/// integer ranges the workspace uses.
pub trait SampleRange<T> {
    /// Draws one sample from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// Whether the range contains no values (sampling would panic).
    fn is_empty_range(&self) -> bool;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Sign-extending casts keep the subtraction correct mod 2^128
                // for negative signed bounds; the wrapping ops below then give
                // the right in-range result even for spans wider than $t::MAX.
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling; bias is negligible for the
                // spans used here and determinism is what actually matters.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                self.start.wrapping_add(hi as $t)
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                start.wrapping_add(hi as $t)
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Types samplable from the "standard" distribution by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // Uniform in [0, 1): 53 mantissa bits.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution (`f64` in `[0, 1)`, full-range
    /// integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Consume an output even for the degenerate probabilities so the
            // stream position does not depend on `p`.
            let _ = self.next_u64();
            return false;
        }
        if p >= 1.0 {
            let _ = self.next_u64();
            return true;
        }
        // 53 uniform mantissa bits, the standard float-in-[0,1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator of the stub: xoshiro256** (Blackman & Vigna).
    ///
    /// Deterministic under a fixed seed; streams differ from upstream
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (stub: `choose` and `shuffle`).
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reached: {seen:?}");
    }

    #[test]
    fn gen_range_handles_signed_and_wide_ranges() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..200 {
            let v = rng.gen_range(-1i32..=1);
            assert!((-1..=1).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let wide = rng.gen_range(i64::MIN..i64::MAX);
            assert!(wide < i64::MAX);
        }
    }

    #[test]
    fn gen_bool_degenerate_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty_and_uniform_on_full() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [10u8, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
    }
}
