//! The engine-shared **violation index**: incremental view maintenance for
//! every live update's violation queue, over one committed-write delta feed.
//!
//! # What is shared, and why
//!
//! Delta-driven chase executions keep a queue of outstanding violations and
//! must answer, at the start of every step, *which watched relations changed
//! since I last looked?* The historical answer was per-update: each
//! [`UpdateExecution`](youtopia_core::UpdateExecution) kept its own epoch
//! watermark per indexed relation and re-probed every one of them, every
//! step. With `n` live updates each watching `r` relations, one round of the
//! engine costs `O(n·r)` epoch probes — detection work that grows with the
//! number of *concurrent updates*, not with the amount of *change*.
//!
//! The violation index inverts that. The storage layer maintains **one**
//! append-only log of committed relation mutations (the
//! [`ViolationFeed`](youtopia_storage::ViolationFeed); one entry per write-
//! epoch bump, in commit order). Every live execution holds a plain integer
//! cursor into the log and replays only the window it missed. The log is
//! written once per commit regardless of how many updates are live, and each
//! consumer's replay is proportional to the deltas *it* missed — so per-step
//! detection cost is independent of the number of concurrent updates. That is
//! the property the `chase/shared_index` benchmark group pins.
//!
//! The per-update path is retained as
//! [`ViolationStateMode::PerUpdate`](youtopia_core::ViolationStateMode): a
//! differential baseline, exactly like
//! [`ChaseMode::FullRecheck`](youtopia_core::ChaseMode) for the queue itself.
//! `tests/viewmaint_equivalence.rs` pins the two modes byte-equal.
//!
//! # Lifecycle
//!
//! * **Feed** — every committed mutation appends its relation id
//!   ([`VersionStore`](youtopia_storage::VersionStore) hooks in
//!   `insert_new` / `push_version` / `rollback_update`).
//! * **Cursors** — each execution advances its cursor to the feed's sequence
//!   at the end of every dirty-check; a freshly admitted or queue-empty
//!   execution jumps straight to the current sequence (nothing behind it can
//!   matter — an empty queue has no watched relations).
//! * **Speculation** — a speculative step reads the feed through the overlay
//!   ([`SpeculativeDb`](youtopia_storage::SpeculativeDb)): base deltas plus
//!   the overlay's own buffered mutations, with every watched relation pinned
//!   as an epoch read so interfering commits invalidate the speculation
//!   rather than being skipped. On commit the engine re-anchors the grafted
//!   execution's cursor to the real sequence under the database write lock.
//! * **Truncation** — quiescence GC clears the backlog (see [`clear`]), and
//!   the store's backlog cap ([`youtopia_storage::DELTA_BACKLOG_CAP`] by
//!   default, `EngineBuilder::delta_backlog_cap` to override) unconditionally
//!   bounds it for engines that never go quiescent. A cursor behind the
//!   truncation point observes a *gap*
//!   (`dirty_relations` returns `None`) and falls back to treating its whole
//!   interest set as dirty; the per-violation epoch compare downstream then
//!   filters exactly what the per-update baseline would have. Truncation is
//!   therefore always safe — it costs time, never correctness.

use youtopia_storage::Database;

/// A point-in-time observation of the shared violation index, exposed by
/// [`ExchangeEngine::violation_index`](crate::ExchangeEngine::violation_index)
/// for monitoring and tests (e.g. the long-lived-engine memory-bound test).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViolationIndexStats {
    /// The feed's current delta sequence number: total committed relation
    /// mutations so far (monotonic across truncation).
    pub delta_seq: u64,
    /// Retained (not yet truncated) delta entries. Bounded by
    /// [`ViolationIndexStats::backlog_cap`] and cleared at quiescence.
    pub backlog_len: usize,
    /// The unconditional retention bound of this store — the builder's
    /// `delta_backlog_cap`, defaulting to [`DELTA_BACKLOG_CAP`].
    pub backlog_cap: usize,
}

/// Observes the index backing `db`.
pub fn stats(db: &Database) -> ViolationIndexStats {
    ViolationIndexStats {
        delta_seq: db.version_store().delta_seq(),
        backlog_len: db.delta_backlog_len(),
        backlog_cap: db.version_store().delta_backlog_cap(),
    }
}

/// Drops the retained delta backlog, returning how many entries were freed.
/// Sound only when no live execution's cursor still needs the window — the
/// engine calls this at quiescence GC, where every cursor is provably dead;
/// any stale cursor that somehow survives observes a gap, not a missed delta.
pub fn clear(db: &mut Database) -> usize {
    let freed = db.delta_backlog_len();
    db.truncate_delta_backlog();
    freed
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::{UpdateId, DELTA_BACKLOG_CAP};

    #[test]
    fn stats_track_the_feed_and_clear_frees_the_backlog() {
        let mut db = Database::new();
        db.add_relation("R", ["a"]).unwrap();
        assert_eq!(
            stats(&db),
            ViolationIndexStats { backlog_cap: DELTA_BACKLOG_CAP, ..Default::default() }
        );
        db.insert_by_name("R", &["x"], UpdateId(1));
        db.insert_by_name("R", &["y"], UpdateId(1));
        assert_eq!(stats(&db).delta_seq, 2);
        assert_eq!(stats(&db).backlog_len, 2);
        assert_eq!(clear(&mut db), 2);
        // The sequence is monotonic across truncation; only retention drops.
        assert_eq!(stats(&db).delta_seq, 2);
        assert_eq!(stats(&db).backlog_len, 0);
    }
}
