//! # youtopia-replication
//!
//! State-vector delta sync between replicated Youtopia nodes: the policy
//! layer over the engine-side mechanism in `youtopia_concurrency::replicate`.
//!
//! The paper's CUP tree connects *different* schemas with mappings; this
//! crate handles the orthogonal deployment axis of running the **same**
//! exchange on several nodes. Each [`ReplicaNode`] owns a replicated
//! [`ExchangeEngine`](youtopia_concurrency::ExchangeEngine); nodes gossip
//! per-origin event-log suffixes ("deltas") selected by [`StateVector`]
//! comparison, and every node folds the merged event set in one canonical
//! order — so nodes that have seen the same events render **byte-identical
//! databases**, no matter the topology, delivery order, duplication, or
//! partition history.
//!
//! * [`ReplicaNode`] — one engine plus its rebuild policy: when events land
//!   behind the canonical fold (concurrent activity across a partition), the
//!   node replays its merged logs against the genesis database.
//! * [`ReplicaSet`] — N nodes wired by a [`Topology`] over in-process links
//!   with injectable [`LinkFaults`] (reorder, duplication) and explicit
//!   [`partition`](ReplicaSet::partition) / [`heal`](ReplicaSet::heal).
//! * [`ReplicaSet::converge`] — the test oracle: sync rounds plus a seeded
//!   resolver answering stalled frontiers on one node at a time, until every
//!   node holds the same events and the fold is everywhere complete.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod link;
mod node;
mod set;

pub use link::{LinkFaults, Topology};
pub use node::ReplicaNode;
pub use set::{HarnessError, ReplicaSet, RoundReport};

// The vocabulary types callers need alongside the harness.
pub use youtopia_concurrency::replicate::{SyncError, SyncReport};
pub use youtopia_core::replication::{
    DeltaBatch, EventStamp, NodeId, ReplicationEvent, StateVector,
};
