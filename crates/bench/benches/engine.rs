//! Benchmarks for the long-lived [`ExchangeEngine`]'s ingestion path — the
//! `chase/engine_ingest` group committed as `bench-baselines/BENCH_engine.json`.
//!
//! Three shapes of the same paper-scale workload:
//!
//! * `batch/<n>` — one atomic batch through a deterministic one-worker
//!   engine, pumped to quiescence: the engine-ingest analogue of the
//!   reference scheduler, so regressions here are submit/publish/answer
//!   overhead, not chase cost.
//! * `staggered/<wave>` — the same updates arriving in closed-loop waves,
//!   measuring the admission + wake-up cost a live deployment pays per wave.
//! * `submit_wait/<n>` — one update at a time through a persistent engine
//!   (submit → wait), the `UpdateExchange` serving pattern; dominated by the
//!   cross-thread handoff per update, which is exactly what this group
//!   guards.
//! * `admission/<clients>` — the same workload pushed through a small
//!   admission cap by several clients of mixed priority, retrying every
//!   rejection: the fair-share bookkeeping plus the rejection/retry
//!   round-trip a saturated deployment pays.
//!
//! The engine spawns OS worker threads, so single-core CI medians include
//! scheduler noise — the group is exempt from the hard regression tier the
//! way `chase/parallel/*` is, and guarded by the soft tier.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use youtopia_concurrency::{
    ClientId, EngineConfig, ExchangeEngine, Priority, ResolverPump, SchedulerConfig, SubmitError,
    TrackerKind,
};
use youtopia_core::RandomResolver;
use youtopia_workload::{build_fixture, generate_workload, ExperimentConfig, WorkloadKind};

fn bench_engine_ingest(c: &mut Criterion) {
    let mut config = ExperimentConfig::quick();
    config.initial_tuples = 200;
    config.workload_updates = 24;
    let fixture = build_fixture(&config).expect("fixture builds");
    let first_number = config.initial_tuples as u64 + 1_000;
    let ops = generate_workload(
        &config,
        &fixture.schema,
        &fixture.initial_db,
        &fixture.mappings,
        WorkloadKind::Mixed,
        0,
    );
    let engine_config = || {
        EngineConfig::default()
            .with_scheduler(SchedulerConfig::with_tracker(TrackerKind::Coarse).with_workers(1))
            .with_first_update_number(first_number)
    };

    let mut group = c.benchmark_group("chase/engine_ingest");
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::new("batch", ops.len()), &(), |b, ()| {
        b.iter_batched(
            || {
                ExchangeEngine::new(
                    fixture.initial_db.clone(),
                    fixture.mappings.clone(),
                    engine_config(),
                )
            },
            |engine| {
                engine.submit_batch(ops.clone()).unwrap();
                let mut resolver = RandomResolver::seeded(7);
                ResolverPump::new(&engine, &mut resolver).run_until_quiescent().unwrap();
                black_box(engine.metrics().steps)
            },
            criterion::BatchSize::LargeInput,
        )
    });

    for wave in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("staggered", wave), &wave, |b, &wave| {
            b.iter_batched(
                || {
                    ExchangeEngine::new(
                        fixture.initial_db.clone(),
                        fixture.mappings.clone(),
                        engine_config(),
                    )
                },
                |engine| {
                    let mut resolver = RandomResolver::seeded(7);
                    for chunk in ops.chunks(wave) {
                        engine.submit_batch(chunk.to_vec()).unwrap();
                        ResolverPump::new(&engine, &mut resolver).run_until_quiescent().unwrap();
                    }
                    black_box(engine.metrics().steps)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }

    // The fair-share admission path: a small cap shared by eight clients of
    // mixed priority, every rejection retried after draining to quiescence
    // (the closed-loop spelling of the `retry_after` contract). Regressions
    // here are the per-submission admission bookkeeping — the share check,
    // the deficit scan, and the rejection/retry round-trip.
    group.bench_with_input(BenchmarkId::new("admission", 8), &(), |b, ()| {
        b.iter_batched(
            || {
                ExchangeEngine::new(
                    fixture.initial_db.clone(),
                    fixture.mappings.clone(),
                    engine_config().with_admission_cap(4),
                )
            },
            |engine| {
                let mut resolver = RandomResolver::seeded(7);
                let mut rejections = 0usize;
                for (i, op) in ops.iter().enumerate() {
                    let client = ClientId(i as u64 % 8);
                    let priority = match client.0 % 4 {
                        0 => Priority::High,
                        3 => Priority::Low,
                        _ => Priority::Normal,
                    };
                    loop {
                        match engine.submit_as(op.clone(), client, priority) {
                            Ok(_) => break,
                            Err(SubmitError::Saturated { .. }) => {
                                rejections += 1;
                                ResolverPump::new(&engine, &mut resolver)
                                    .run_until_quiescent()
                                    .unwrap();
                            }
                            Err(e) => panic!("unexpected submit error: {e}"),
                        }
                    }
                }
                ResolverPump::new(&engine, &mut resolver).run_until_quiescent().unwrap();
                black_box((engine.metrics().steps, rejections))
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_with_input(BenchmarkId::new("submit_wait", ops.len()), &(), |b, ()| {
        b.iter_batched(
            || {
                ExchangeEngine::new(
                    fixture.initial_db.clone(),
                    fixture.mappings.clone(),
                    engine_config(),
                )
            },
            |engine| {
                let mut resolver = RandomResolver::seeded(7);
                for op in &ops {
                    engine.submit(op.clone()).unwrap();
                    ResolverPump::new(&engine, &mut resolver).run_until_quiescent().unwrap();
                }
                black_box(engine.metrics().steps)
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_engine_ingest);
criterion_main!(benches);
