//! # youtopia-core
//!
//! The paper's primary contribution: **cooperative update exchange** — a chase
//! that combines deterministic constraint repair with human intervention
//! (Sections 2.1–2.4 of *Cooperative Update Exchange in the Youtopia System*,
//! VLDB 2009).
//!
//! * The **forward chase** repairs LHS-violations by generating the missing
//!   RHS tuples; when a generated tuple has an existing, *more specific*
//!   counterpart the chase stops and emits **positive frontier tuples**, which
//!   a user resolves by **expanding** or **unifying** them
//!   ([`frontier`], [`update`]).
//! * The **backward chase** repairs RHS-violations by deleting witness
//!   tuples; with more than one candidate it emits **negative frontier
//!   tuples** and the user picks the subset to delete.
//! * An update (Definition 2.6) is executed as a sequence of **chase steps**
//!   (Algorithm 2), each exposing its writes and read queries — the interface
//!   the optimistic concurrency control of `youtopia-concurrency` builds on.
//! * [`resolver`] supplies the human decisions; [`RandomResolver`] is the
//!   simulated user of the Section 6 experiments.
//! * [`FrontierToken`] / [`PendingFrontier`] are the currency of the pull-based
//!   service API: a long-lived engine (in `youtopia-concurrency`) surfaces
//!   blocked chases as pending frontiers and resumes them when a token is
//!   answered. The single-update facade `UpdateExchange` lives there too.
//!
//! ```
//! use youtopia_core::{InitialOp, UpdateExecution, UpdateState};
//! use youtopia_mappings::MappingSet;
//! use youtopia_storage::{Database, UpdateId, Value};
//!
//! let mut db = Database::new();
//! db.add_relation("A", ["location", "name"]).unwrap();
//! db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
//! db.add_relation("R", ["company", "attraction", "review"]).unwrap();
//! let mut mappings = MappingSet::new();
//! mappings
//!     .add_parsed(db.catalog(), "sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)")
//!     .unwrap();
//! db.insert_by_name("A", &["Niagara Falls", "Niagara Falls"], UpdateId(0));
//!
//! // One update: insert a tour, then chase until σ3's repair is done.
//! let t = db.relation_id("T").unwrap();
//! let values = vec![
//!     Value::constant("Niagara Falls"),
//!     Value::constant("ABC Tours"),
//!     Value::constant("Toronto"),
//! ];
//! let mut exec = UpdateExecution::new(UpdateId(1), InitialOp::Insert { relation: t, values });
//! while exec.state() == UpdateState::Ready {
//!     exec.step(&mut db, &mappings).unwrap();
//! }
//! // σ3 fired: the review table now holds a placeholder with a labeled null.
//! let r = db.relation_id("R").unwrap();
//! assert_eq!(db.visible_count(r, UpdateId::OMNISCIENT), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod frontier;
pub mod querying;
pub mod read_query;
pub mod replication;
pub mod resolver;
pub mod update;

pub use codec::{
    decode_chase_error, decode_decision, decode_initial_op, encode_chase_error, encode_decision,
    encode_initial_op,
};
pub use error::{ChaseError, LookupError};
pub use frontier::{
    AutoDecision, EscalationPolicy, FrontierDecision, FrontierRequest, FrontierToken,
    FrontierTuple, NegativeFrontier, PendingFrontier, PositiveAction, PositiveFrontier,
    ResolutionOrigin,
};
pub use querying::{
    answer, keyword_search, AnswerRow, KeywordHit, QuerySemantics, RepositoryQuery,
};
pub use read_query::{more_specific_tuples, ReadQuery};
pub use replication::{
    decode_delta_batch, decode_state_vector, encode_delta_batch, encode_state_vector, DeltaBatch,
    DeltaEntry, EventStamp, NodeId, ReplicationEvent, StateVector,
};
pub use resolver::{
    ExpandResolver, FrontierResolver, RandomResolver, ScriptedResolver, UnifyResolver,
};
pub use update::{
    ChaseMode, InitialOp, StepOutcome, UpdateExecution, UpdateReport, UpdateState, UpdateStats,
    ViolationStateMode,
};
