//! The single-update exchange facade, now a client of the engine.
//!
//! [`UpdateExchange`] owns a long-lived [`ExchangeEngine`] (one worker,
//! deterministic) and runs one update at a time to completion, consulting a
//! [`FrontierResolver`] whenever a chase blocks. This is the API the examples
//! use, the workload generator uses to build the initial database of
//! Section 6, and the simplest way to try the system (see
//! `examples/quickstart.rs`).
//!
//! Historically this facade lived in `youtopia-core` with its own chase loop
//! and its own report assembly. It now delegates to the engine:
//! [`UpdateExchange::run_update`] is submit → pump → [`UpdateHandle::report`],
//! so the [`UpdateReport`] comes through the exact same
//! [`UpdateReport::for_execution`] path batch runs use — one report type, no
//! duplicated metrics assembly.

use std::ops::{Deref, DerefMut};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

use youtopia_core::{
    ChaseError, ChaseMode, FrontierResolver, InitialOp, UpdateReport, UpdateStats,
};
use youtopia_mappings::{satisfies_all, MappingSet};
use youtopia_storage::{Database, NullId, RelationId, TupleId, UpdateId, Value};

use crate::builder::EngineBuilder;
use crate::engine::{ExchangeEngine, ResolverPump, UpdateHandle, UpdateStatus};

/// Configuration of the single-update exchange.
///
/// Superseded by [`EngineBuilder`](crate::EngineBuilder), the one
/// configuration surface for all engines — this struct survives for existing
/// `with_config` callers and is translated into a builder internally. New
/// knobs are added to the builder only.
#[deprecated(
    since = "0.1.0",
    note = "configure an EngineBuilder and use UpdateExchange::with_builder instead"
)]
#[derive(Clone, Copy, Debug)]
pub struct ExchangeConfig {
    /// Safety valve: the maximum number of chase steps a single update may
    /// take. Chases driven by resolvers that never unify (e.g.
    /// `ExpandResolver` under cyclic mappings) would otherwise run forever.
    pub max_steps_per_update: usize,
    /// How executions maintain their violation queues (delta-driven by
    /// default; [`ChaseMode::FullRecheck`] is the differential-testing /
    /// benchmarking reference path).
    pub chase_mode: ChaseMode,
}

#[allow(deprecated)]
impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig { max_steps_per_update: 100_000, chase_mode: ChaseMode::default() }
    }
}

/// Read access to the exchange's database: a snapshot-session guard that
/// dereferences to [`Database`]. Chase workers (if any were mid-step) queue
/// behind it; drop it before submitting the next update.
#[derive(Debug)]
pub struct DbRef<'a>(RwLockReadGuard<'a, Database>);

impl Deref for DbRef<'_> {
    type Target = Database;
    fn deref(&self) -> &Database {
        &self.0
    }
}

/// Mutable access to the exchange's database (e.g. to register relations or
/// seed tuples outside of update exchange). Holds the engine's write lock —
/// drop it before running updates.
#[derive(Debug)]
pub struct DbRefMut<'a>(RwLockWriteGuard<'a, Database>);

impl Deref for DbRefMut<'_> {
    type Target = Database;
    fn deref(&self) -> &Database {
        &self.0
    }
}

impl DerefMut for DbRefMut<'_> {
    fn deref_mut(&mut self) -> &mut Database {
        &mut self.0
    }
}

/// Owns a database plus mappings (inside a one-worker engine) and runs
/// updates one at a time.
pub struct UpdateExchange {
    engine: ExchangeEngine,
}

impl UpdateExchange {
    /// Creates an exchange over an existing database and mapping set.
    pub fn new(db: Database, mappings: MappingSet) -> UpdateExchange {
        UpdateExchange::with_builder(db, mappings, EngineBuilder::new())
    }

    /// Creates an exchange whose engine is configured by `builder` — set any
    /// knob ([`EngineBuilder::max_steps_per_update`],
    /// [`EngineBuilder::chase_mode`], ...) before passing it in. The exchange
    /// forces inline mode regardless: one update at a time needs no worker
    /// threads, and a threadless engine keeps micro-chases at
    /// single-threaded cost (no cross-thread handoff per step or frontier
    /// answer). The step valve is per-update, not global (the builder's
    /// default): a runaway chase fails its own update and leaves the
    /// exchange usable.
    pub fn with_builder(
        db: Database,
        mappings: MappingSet,
        builder: EngineBuilder,
    ) -> UpdateExchange {
        let engine = builder
            .workers(1)
            .inline()
            .build(db, mappings)
            .expect("engine construction only fails for durable builders");
        UpdateExchange { engine }
    }

    /// Creates an exchange with a custom configuration.
    #[deprecated(
        since = "0.1.0",
        note = "configure an EngineBuilder and use UpdateExchange::with_builder instead"
    )]
    #[allow(deprecated)]
    pub fn with_config(
        db: Database,
        mappings: MappingSet,
        config: ExchangeConfig,
    ) -> UpdateExchange {
        UpdateExchange::with_builder(
            db,
            mappings,
            EngineBuilder::new()
                .chase_mode(config.chase_mode)
                .max_steps_per_update(config.max_steps_per_update),
        )
    }

    /// The underlying engine — for callers that want to graduate from
    /// one-at-a-time runs to submitting concurrent updates directly.
    pub fn engine(&self) -> &ExchangeEngine {
        &self.engine
    }

    /// The database (a read-guard that dereferences to [`Database`]).
    pub fn db(&self) -> DbRef<'_> {
        DbRef(self.engine.db_read())
    }

    /// Mutable access to the database (e.g. to register relations or seed
    /// tuples outside of update exchange).
    pub fn db_mut(&mut self) -> DbRefMut<'_> {
        DbRefMut(self.engine.db_write())
    }

    /// The mapping set (fixed at construction, like every engine's).
    pub fn mappings(&self) -> &MappingSet {
        self.engine.mappings()
    }

    /// Consumes the exchange, returning its parts.
    pub fn into_parts(self) -> (Database, MappingSet) {
        let (db, mappings, _) = self.engine.shutdown();
        (db, mappings)
    }

    /// The priority number the next update will receive.
    pub fn next_update_id(&self) -> UpdateId {
        self.engine.next_update_id()
    }

    /// Whether the database currently satisfies every mapping.
    pub fn is_consistent(&self) -> bool {
        self.engine.read(|db| satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), self.mappings()))
    }

    /// Runs a complete update — the initial operation plus the entire chase —
    /// consulting `resolver` whenever the chase blocks on a frontier.
    pub fn run_update(
        &mut self,
        op: InitialOp,
        resolver: &mut dyn FrontierResolver,
    ) -> Result<UpdateReport, ChaseError> {
        let handle =
            self.engine.submit(op).map_err(|e| ChaseError::InvalidDecision(e.to_string()))?;
        ResolverPump::new(&self.engine, resolver).run_until_quiescent()?;
        self.finish(&handle)
    }

    fn finish(&self, handle: &UpdateHandle) -> Result<UpdateReport, ChaseError> {
        match handle.status() {
            UpdateStatus::Terminated => {
                Ok(handle.report().expect("terminated updates have a report"))
            }
            UpdateStatus::Failed => Err(handle.error().expect("failed updates have an error")),
            status => Err(ChaseError::InvalidDecision(format!(
                "update {} left {status:?} by a quiescent engine",
                handle.id()
            ))),
        }
    }

    /// Convenience: run an insertion given a relation name and values.
    pub fn insert(
        &mut self,
        relation: &str,
        values: Vec<Value>,
        resolver: &mut dyn FrontierResolver,
    ) -> Result<UpdateReport, ChaseError> {
        let relation = self.relation(relation)?;
        self.run_update(InitialOp::Insert { relation, values }, resolver)
    }

    /// Convenience: run an insertion of string constants.
    pub fn insert_constants(
        &mut self,
        relation: &str,
        values: &[&str],
        resolver: &mut dyn FrontierResolver,
    ) -> Result<UpdateReport, ChaseError> {
        let values = values.iter().map(|v| Value::constant(v)).collect();
        self.insert(relation, values, resolver)
    }

    /// Convenience: run a deletion.
    pub fn delete(
        &mut self,
        relation: &str,
        tuple: TupleId,
        resolver: &mut dyn FrontierResolver,
    ) -> Result<UpdateReport, ChaseError> {
        let relation = self.relation(relation)?;
        self.run_update(InitialOp::Delete { relation, tuple }, resolver)
    }

    /// Convenience: run a null-replacement.
    pub fn replace_null(
        &mut self,
        null: NullId,
        replacement: Value,
        resolver: &mut dyn FrontierResolver,
    ) -> Result<UpdateReport, ChaseError> {
        self.run_update(InitialOp::NullReplace { null, replacement }, resolver)
    }

    /// Aggregate statistics of the most recent update (diagnostics).
    pub fn last_update_stats(&self) -> Option<(UpdateId, UpdateStats)> {
        let last = UpdateId(self.engine.next_update_id().0.checked_sub(1)?);
        Some((last, self.engine.update_stats_of(last).ok()?))
    }

    fn relation(&self, name: &str) -> Result<RelationId, ChaseError> {
        self.db()
            .relation_id(name)
            .ok_or_else(|| ChaseError::InvalidDecision(format!("unknown relation `{name}`")))
    }
}

impl std::fmt::Debug for UpdateExchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdateExchange").field("engine", &self.engine).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_core::{ExpandResolver, RandomResolver, UnifyResolver};
    use youtopia_mappings::find_violations;

    fn travel_exchange() -> UpdateExchange {
        let mut db = Database::new();
        db.add_relation("C", ["city"]).unwrap();
        db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        db.add_relation("A", ["location", "name"]).unwrap();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        let mut mappings = MappingSet::new();
        mappings
            .add_parsed_many(
                db.catalog(),
                "
                sigma1: C(c) -> exists a, l. S(a, l, c)
                sigma2: S(a, c, c2) -> C(c) & C(c2)
                sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
                ",
            )
            .unwrap();
        UpdateExchange::new(db, mappings)
    }

    #[test]
    fn consistency_is_restored_after_every_update() {
        let mut ex = travel_exchange();
        let mut resolver = RandomResolver::seeded(11);
        assert!(ex.is_consistent());
        ex.insert_constants("A", &["Geneva", "Geneva Winery"], &mut resolver).unwrap();
        ex.insert_constants("T", &["Geneva Winery", "XYZ", "Syracuse"], &mut resolver).unwrap();
        ex.insert_constants("C", &["Ithaca"], &mut resolver).unwrap();
        assert!(ex.is_consistent());
        assert!(find_violations(&ex.db().snapshot(UpdateId::OMNISCIENT), ex.mappings()).is_empty());
        assert_eq!(ex.next_update_id(), UpdateId(4));
    }

    #[test]
    fn cyclic_mappings_terminate_with_the_random_resolver() {
        // σ1/σ2 form the C ↔ S cycle of Figure 2; the classical chase would
        // not terminate, but the cooperative chase with a (simulated) user
        // does.
        let mut ex = travel_exchange();
        let mut resolver = RandomResolver::seeded(3);
        for i in 0..10 {
            ex.insert_constants("C", &[&format!("City{i}")], &mut resolver).unwrap();
        }
        assert!(ex.is_consistent());
    }

    #[test]
    fn unify_resolver_keeps_the_database_small() {
        let mut ex = travel_exchange();
        let mut unify = UnifyResolver;
        ex.insert_constants("C", &["Ithaca"], &mut unify).unwrap();
        ex.insert_constants("C", &["Syracuse"], &mut unify).unwrap();
        let s = ex.db().relation_id("S").unwrap();
        let c = ex.db().relation_id("C").unwrap();
        // Each city gets one suggested-airport row (from σ1); σ2 then reuses
        // existing cities through unification.
        assert!(ex.db().visible_count(s, UpdateId::OMNISCIENT) <= 2);
        assert!(ex.db().visible_count(c, UpdateId::OMNISCIENT) <= 3);
        assert!(ex.is_consistent());
    }

    #[test]
    fn expand_resolver_hits_the_step_limit_on_cyclic_mappings() {
        // Always expanding reproduces the classical chase's divergence on the
        // C ↔ S cycle; the exchange's step limit turns that into an error
        // instead of a hang — and, since the redesign, the failure is scoped
        // to the update: its writes are rolled back and the exchange stays
        // usable.
        let mut db = Database::new();
        db.add_relation("C", ["city"]).unwrap();
        db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        let mut mappings = MappingSet::new();
        mappings
            .add_parsed_many(
                db.catalog(),
                "
                sigma1: C(c) -> exists a, l. S(a, l, c)
                sigma2: S(a, c, c2) -> C(c) & C(c2)
                ",
            )
            .unwrap();
        let mut ex = UpdateExchange::with_builder(
            db,
            mappings,
            EngineBuilder::new().max_steps_per_update(200),
        );
        let mut expand = ExpandResolver;
        let err = ex.insert_constants("C", &["Ithaca"], &mut expand);
        assert!(matches!(err, Err(ChaseError::StepLimitExceeded { .. })));
        // The failed update was rolled back; a cooperative user still works.
        let mut resolver = RandomResolver::seeded(5);
        ex.insert_constants("C", &["Dryden"], &mut resolver).unwrap();
        assert!(ex.is_consistent());
    }

    #[test]
    fn deletions_cascade_through_the_backward_chase() {
        let mut ex = travel_exchange();
        let mut resolver = RandomResolver::seeded(5);
        ex.insert_constants("A", &["Geneva", "Geneva Winery"], &mut resolver).unwrap();
        ex.insert_constants("T", &["Geneva Winery", "XYZ", "Syracuse"], &mut resolver).unwrap();
        assert!(ex.is_consistent());

        let r = ex.db().relation_id("R").unwrap();
        let review = ex.db().scan(r, UpdateId::OMNISCIENT)[0].0;
        let report = ex.delete("R", review, &mut resolver).unwrap();
        assert!(report.terminated);
        assert!(ex.is_consistent());
        // Something on the LHS had to go.
        let a = ex.db().relation_id("A").unwrap();
        let t = ex.db().relation_id("T").unwrap();
        let total = ex.db().visible_count(a, UpdateId::OMNISCIENT)
            + ex.db().visible_count(t, UpdateId::OMNISCIENT);
        assert!(total < 2);
    }

    #[test]
    fn null_replacement_updates_run_to_completion() {
        let mut ex = travel_exchange();
        let mut resolver = RandomResolver::seeded(9);
        ex.insert_constants("A", &["Niagara Falls", "Niagara Falls"], &mut resolver).unwrap();
        // Insert a tour with an unknown company.
        let x = ex.db_mut().fresh_null();
        let t_values =
            vec![Value::constant("Niagara Falls"), Value::Null(x), Value::constant("Toronto")];
        ex.insert("T", t_values, &mut resolver).unwrap();
        assert!(ex.is_consistent());
        // Completing the null keeps the database consistent.
        let report = ex.replace_null(x, Value::constant("ABC Tours"), &mut resolver).unwrap();
        assert!(report.terminated);
        assert!(ex.is_consistent());
    }

    #[test]
    fn unknown_relation_names_are_rejected() {
        let mut ex = travel_exchange();
        let mut resolver = RandomResolver::seeded(1);
        assert!(ex.insert_constants("Nope", &["x"], &mut resolver).is_err());
        let (db, mappings) = ex.into_parts();
        assert_eq!(db.catalog().len(), 5);
        assert_eq!(mappings.len(), 3);
    }

    #[test]
    fn reports_come_through_the_engine_path() {
        let mut ex = travel_exchange();
        let mut resolver = RandomResolver::seeded(2);
        let report = ex.insert_constants("C", &["Ithaca"], &mut resolver).unwrap();
        assert_eq!(report.update, UpdateId(1));
        assert!(report.terminated);
        assert!(report.stats.steps > 0);
        // The engine's handle-side view agrees with the returned report.
        assert_eq!(ex.last_update_stats(), Some((report.update, report.stats)));
    }
}
