//! The mapping graph: cycle detection and weak acyclicity.
//!
//! Classical update-exchange systems (Orchestra, Piazza, …) restrict mappings
//! to be acyclic — usually *weakly acyclic* — because the standard tgd chase
//! is only guaranteed to terminate under such restrictions. Youtopia lifts the
//! restriction (Section 1.3); this module provides the analyses so that
//! examples, tests and benchmarks can demonstrate the difference.

use std::collections::{HashMap, HashSet};

use youtopia_storage::{RelationId, Term};

use crate::tgd::MappingSet;

/// The relation-level mapping graph: an edge `R → S` exists when some mapping
/// has `R` on its left-hand side and `S` on its right-hand side.
#[derive(Clone, Debug, Default)]
pub struct MappingGraph {
    edges: HashMap<RelationId, HashSet<RelationId>>,
    nodes: HashSet<RelationId>,
}

impl MappingGraph {
    /// Builds the graph of a mapping set.
    pub fn new(mappings: &MappingSet) -> MappingGraph {
        let mut graph = MappingGraph::default();
        for tgd in mappings.iter() {
            for lhs in tgd.lhs_relations() {
                graph.nodes.insert(lhs);
                for rhs in tgd.rhs_relations() {
                    graph.nodes.insert(rhs);
                    graph.edges.entry(lhs).or_default().insert(rhs);
                }
            }
        }
        graph
    }

    /// Successors of a relation.
    pub fn successors(&self, relation: RelationId) -> impl Iterator<Item = RelationId> + '_ {
        self.edges.get(&relation).into_iter().flatten().copied()
    }

    /// Iterates over the relations participating in some mapping (unordered).
    pub fn nodes(&self) -> impl Iterator<Item = RelationId> + '_ {
        self.nodes.iter().copied()
    }

    /// Number of relations participating in some mapping.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(HashSet::len).sum()
    }

    /// Whether the graph contains a directed cycle.
    pub fn has_cycle(&self) -> bool {
        // Iterative DFS with colouring.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: HashMap<RelationId, Colour> =
            self.nodes.iter().map(|&n| (n, Colour::White)).collect();
        let mut nodes: Vec<RelationId> = self.nodes.iter().copied().collect();
        nodes.sort();
        for start in nodes {
            if colour[&start] != Colour::White {
                continue;
            }
            // Stack of (node, next-successor-index).
            let mut stack = vec![(start, self.sorted_successors(start), 0usize)];
            colour.insert(start, Colour::Grey);
            while let Some((node, succs, idx)) = stack.last().cloned() {
                if idx < succs.len() {
                    stack.last_mut().expect("non-empty").2 += 1;
                    let next = succs[idx];
                    match colour[&next] {
                        Colour::Grey => return true,
                        Colour::White => {
                            colour.insert(next, Colour::Grey);
                            stack.push((next, self.sorted_successors(next), 0));
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour.insert(node, Colour::Black);
                    stack.pop();
                }
            }
        }
        false
    }

    fn sorted_successors(&self, node: RelationId) -> Vec<RelationId> {
        let mut s: Vec<RelationId> = self.successors(node).collect();
        s.sort();
        s
    }

    /// Strongly connected components with more than one node (or a self-loop):
    /// the relation groups across which a classical chase could cascade
    /// indefinitely.
    pub fn cyclic_components(&self) -> Vec<Vec<RelationId>> {
        // Tarjan's algorithm, iterative-friendly scale (graphs here are tiny).
        struct State {
            index: usize,
            indices: HashMap<RelationId, usize>,
            lowlink: HashMap<RelationId, usize>,
            stack: Vec<RelationId>,
            on_stack: HashSet<RelationId>,
            components: Vec<Vec<RelationId>>,
        }
        fn strongconnect(graph: &MappingGraph, v: RelationId, st: &mut State) {
            st.indices.insert(v, st.index);
            st.lowlink.insert(v, st.index);
            st.index += 1;
            st.stack.push(v);
            st.on_stack.insert(v);
            for w in graph.sorted_successors(v) {
                if !st.indices.contains_key(&w) {
                    strongconnect(graph, w, st);
                    let low = st.lowlink[&w].min(st.lowlink[&v]);
                    st.lowlink.insert(v, low);
                } else if st.on_stack.contains(&w) {
                    let low = st.indices[&w].min(st.lowlink[&v]);
                    st.lowlink.insert(v, low);
                }
            }
            if st.lowlink[&v] == st.indices[&v] {
                let mut component = Vec::new();
                while let Some(w) = st.stack.pop() {
                    st.on_stack.remove(&w);
                    component.push(w);
                    if w == v {
                        break;
                    }
                }
                component.sort();
                st.components.push(component);
            }
        }
        let mut st = State {
            index: 0,
            indices: HashMap::new(),
            lowlink: HashMap::new(),
            stack: Vec::new(),
            on_stack: HashSet::new(),
            components: Vec::new(),
        };
        let mut nodes: Vec<RelationId> = self.nodes.iter().copied().collect();
        nodes.sort();
        for n in nodes {
            if !st.indices.contains_key(&n) {
                strongconnect(self, n, &mut st);
            }
        }
        st.components
            .into_iter()
            .filter(|c| {
                c.len() > 1
                    || (c.len() == 1 && self.edges.get(&c[0]).is_some_and(|s| s.contains(&c[0])))
            })
            .collect()
    }
}

/// Decides *weak acyclicity* of a mapping set — the classical sufficient
/// condition for chase termination (Fagin et al.), which Youtopia does **not**
/// require. The test builds the position dependency graph: nodes are
/// positions `(R, i)`; a mapping with frontier variable `x` at LHS position
/// `p` adds a regular edge to every RHS position holding `x`, and a *special*
/// edge to every RHS position holding an existential variable. The set is
/// weakly acyclic iff no cycle goes through a special edge.
pub fn is_weakly_acyclic(mappings: &MappingSet) -> bool {
    type Pos = (RelationId, usize);
    let mut regular: HashMap<Pos, HashSet<Pos>> = HashMap::new();
    let mut special: HashMap<Pos, HashSet<Pos>> = HashMap::new();
    let mut nodes: HashSet<Pos> = HashSet::new();

    for tgd in mappings.iter() {
        for var in tgd.frontier_vars() {
            // LHS positions of this variable.
            let mut lhs_positions = Vec::new();
            for atom in &tgd.lhs {
                for (i, term) in atom.terms.iter().enumerate() {
                    if matches!(term, Term::Var(v) if v == var) {
                        lhs_positions.push((atom.relation, i));
                    }
                }
            }
            // RHS positions of the same variable (regular edges) and of
            // existential variables (special edges).
            for atom in &tgd.rhs {
                for (i, term) in atom.terms.iter().enumerate() {
                    let target = (atom.relation, i);
                    match term {
                        Term::Var(v) if v == var => {
                            for &src in &lhs_positions {
                                nodes.insert(src);
                                nodes.insert(target);
                                regular.entry(src).or_default().insert(target);
                            }
                        }
                        Term::Var(v) if tgd.existential_vars().contains(v) => {
                            for &src in &lhs_positions {
                                nodes.insert(src);
                                nodes.insert(target);
                                special.entry(src).or_default().insert(target);
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    // A mapping set is weakly acyclic iff the position graph has no cycle
    // containing a special edge. Equivalently: for every special edge (u, v),
    // v must not reach u through the combined graph.
    let combined_successors = |p: Pos| -> Vec<Pos> {
        let mut out: Vec<Pos> = Vec::new();
        if let Some(s) = regular.get(&p) {
            out.extend(s.iter().copied());
        }
        if let Some(s) = special.get(&p) {
            out.extend(s.iter().copied());
        }
        out
    };
    let reaches = |from: Pos, to: Pos| -> bool {
        let mut seen = HashSet::new();
        let mut stack = vec![from];
        while let Some(p) = stack.pop() {
            if p == to {
                return true;
            }
            if seen.insert(p) {
                stack.extend(combined_successors(p));
            }
        }
        false
    };
    for (u, targets) in &special {
        for v in targets {
            if reaches(*v, *u) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::Database;

    fn catalog() -> Database {
        let mut db = Database::new();
        db.add_relation("C", ["city"]).unwrap();
        db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        db.add_relation("A", ["location", "name"]).unwrap();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        db.add_relation("Person", ["name"]).unwrap();
        db.add_relation("Father", ["child", "father"]).unwrap();
        db
    }

    #[test]
    fn figure2_cycle_between_c_and_s_is_detected() {
        let db = catalog();
        let mut set = MappingSet::new();
        set.add_parsed_many(
            db.catalog(),
            "
            sigma1: C(c) -> exists a, l. S(a, l, c)
            sigma2: S(a, c, c2) -> C(c) & C(c2)
            ",
        )
        .unwrap();
        let graph = MappingGraph::new(&set);
        assert!(graph.has_cycle());
        assert_eq!(graph.node_count(), 2);
        assert_eq!(graph.edge_count(), 2);
        let comps = graph.cyclic_components();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 2);
        // σ1 introduces fresh existential values into the C/S cycle: not
        // weakly acyclic, so the classical chase may not terminate.
        assert!(!is_weakly_acyclic(&set));
    }

    #[test]
    fn acyclic_mapping_sets_are_recognised() {
        let db = catalog();
        let mut set = MappingSet::new();
        set.add_parsed_many(
            db.catalog(),
            "
            sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
            ",
        )
        .unwrap();
        let graph = MappingGraph::new(&set);
        assert!(!graph.has_cycle());
        assert!(graph.cyclic_components().is_empty());
        assert!(is_weakly_acyclic(&set));
        assert_eq!(graph.successors(db.relation_id("A").unwrap()).count(), 1);
    }

    #[test]
    fn genealogy_self_cycle() {
        let db = catalog();
        let mut set = MappingSet::new();
        set.add_parsed(db.catalog(), "anc: Person(x) -> exists y. Father(x, y) & Person(y)")
            .unwrap();
        let graph = MappingGraph::new(&set);
        assert!(graph.has_cycle());
        let comps = graph.cyclic_components();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![db.relation_id("Person").unwrap()]);
        assert!(!is_weakly_acyclic(&set));
    }

    #[test]
    fn copy_cycles_without_existentials_are_weakly_acyclic() {
        // C(c) -> S'(c) and back with no existential variables: cyclic at the
        // relation level but weakly acyclic (the classical chase terminates).
        let mut db = Database::new();
        db.add_relation("P", ["a"]).unwrap();
        db.add_relation("Q", ["a"]).unwrap();
        let mut set = MappingSet::new();
        set.add_parsed_many(db.catalog(), "P(x) -> Q(x)\nQ(x) -> P(x)").unwrap();
        let graph = MappingGraph::new(&set);
        assert!(graph.has_cycle());
        assert!(is_weakly_acyclic(&set));
    }

    #[test]
    fn empty_mapping_set_is_trivially_acyclic() {
        let set = MappingSet::new();
        let graph = MappingGraph::new(&set);
        assert!(!graph.has_cycle());
        assert_eq!(graph.node_count(), 0);
        assert!(is_weakly_acyclic(&set));
    }
}
