//! [`ReplicaNode`]: one replicated engine plus its rebuild policy.

use youtopia_concurrency::replicate::{SyncError, SyncReport};
use youtopia_concurrency::{EngineBuilder, ExchangeEngine};
use youtopia_core::replication::{DeltaBatch, EventStamp, NodeId, StateVector};
use youtopia_core::{ChaseError, FrontierResolver, InitialOp};
use youtopia_mappings::MappingSet;
use youtopia_storage::wal::{deserialize_database, serialize_database};
use youtopia_storage::Database;

/// One node of a replica set: a replicated [`ExchangeEngine`], the genesis
/// database it (and every peer) started from, and the rebuild policy the
/// engine's mechanism delegates to.
///
/// The engine folds events incrementally whenever they extend the canonical
/// order; when a sync delivers events *behind* the fold (concurrent activity
/// from across a partition), the node discards the engine and replays the
/// merged logs against the genesis — the fold is a pure function of the event
/// set, so the replay lands on exactly the state every other holder of that
/// set renders. [`rebuilds`](Self::rebuilds) counts how often that happened.
pub struct ReplicaNode {
    id: NodeId,
    genesis: Vec<u8>,
    mappings: MappingSet,
    first_update: u64,
    engine: Option<ExchangeEngine>,
    rebuilds: usize,
}

/// The first update number a replica may assign: one past the highest update
/// id any version in `db` was written by (and no lower than the builder
/// default of 1).
fn first_update_number(db: &Database) -> u64 {
    let store = db.version_store();
    let mut max = 0u64;
    for schema in db.catalog().iter() {
        let relation = store.relation(schema.id).expect("catalog relation has storage");
        for tuple in relation.tuple_ids() {
            let chain = relation.chain(tuple).expect("listed tuple has a chain");
            for version in chain.versions() {
                max = max.max(version.update.0);
            }
        }
    }
    max + 1
}

fn build_engine(
    id: NodeId,
    db: Database,
    mappings: MappingSet,
    first_update: u64,
) -> ExchangeEngine {
    EngineBuilder::new()
        .inline()
        .replicated(id)
        .first_update_number(first_update)
        .build(db, mappings)
        .expect("non-durable replicated build is infallible")
}

impl ReplicaNode {
    /// Starts a node over its own copy of the genesis database. Every node of
    /// a set must be given an identical genesis (same bytes) — convergence is
    /// defined relative to it.
    ///
    /// Replicated updates are numbered from just above the highest update id
    /// already written in the genesis, so a genesis built by earlier chases
    /// (e.g. a generated workload fixture) never collides with fold-admitted
    /// updates. The number is derived from the bytes, so every holder of the
    /// same genesis derives the same numbering — a convergence precondition.
    pub fn new(id: NodeId, db: Database, mappings: MappingSet) -> ReplicaNode {
        let genesis = serialize_database(&db);
        let first_update = first_update_number(&db);
        let engine = build_engine(id, db, mappings.clone(), first_update);
        ReplicaNode { id, genesis, mappings, first_update, engine: Some(engine), rebuilds: 0 }
    }

    /// This node's replica identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's engine (always present between public calls).
    pub fn engine(&self) -> &ExchangeEngine {
        self.engine.as_ref().expect("engine is only absent mid-rebuild")
    }

    /// How many times this node rebuilt from logs (see the type docs).
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// The node's [`StateVector`]: per-origin event counts it holds.
    pub fn state_vector(&self) -> Result<StateVector, SyncError> {
        self.engine().state_vector()
    }

    /// The events a peer summarised by `since` is missing.
    pub fn deltas_since(&self, since: &StateVector) -> Result<DeltaBatch, SyncError> {
        self.engine().encode_deltas_since(since)
    }

    /// Submits an update at this node, appending it to the node's own event
    /// log (peers pull it on their next sync). Returns the submit's
    /// [`EventStamp`] — its identity across the whole set.
    pub fn submit(&mut self, op: InitialOp) -> Result<EventStamp, SyncError> {
        match self.engine().submit_replicated(op.clone()) {
            Err(SyncError::RebuildRequired) => {
                self.rebuild()?;
                self.engine().submit_replicated(op)
            }
            other => other,
        }
    }

    /// Applies a peer's delta batch. If the new events land behind the
    /// canonical fold, the node rebuilds from its (now complete) logs before
    /// returning — the report still says `rebuild_required`, so callers can
    /// observe how often healing cost a replay.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<SyncReport, SyncError> {
        let mut report = self.engine().apply_remote_deltas(batch)?;
        if report.rebuild_required {
            self.rebuild()?;
            report.stalled = self.engine().pump_replication()?;
        }
        Ok(report)
    }

    /// Replays the merged logs against a fresh engine over the genesis
    /// database. The replay ingests every event before folding any, so it can
    /// never itself require a rebuild.
    fn rebuild(&mut self) -> Result<(), SyncError> {
        let engine = self.engine.take().expect("engine is only absent mid-rebuild");
        let log = engine.export_replication_log()?;
        engine.shutdown();
        let db = deserialize_database(&self.genesis)
            .expect("genesis bytes came from serialize_database");
        let fresh = build_engine(self.id, db, self.mappings.clone(), self.first_update);
        let report = fresh.apply_remote_deltas(&log)?;
        debug_assert!(!report.rebuild_required, "a full replay cannot be behind itself");
        self.engine = Some(fresh);
        self.rebuilds += 1;
        Ok(())
    }

    /// Answers every frontier question currently pending at this node with
    /// `resolver`'s decisions (each answer is recorded as a replicated event,
    /// so peers fold the decision instead of re-asking). Returns how many
    /// were answered.
    pub fn answer_pending(
        &mut self,
        resolver: &mut dyn FrontierResolver,
    ) -> Result<usize, ChaseError> {
        let mut answered = 0;
        loop {
            let engine = self.engine();
            let Some(pf) = engine.pending_frontiers().into_iter().next() else {
                return Ok(answered);
            };
            let decision = engine.read(|db| resolver.resolve(&db.snapshot(pf.update), &pf.request));
            engine.answer(pf.token, decision)?;
            answered += 1;
        }
    }

    /// Whether the node's fold is complete: nothing pending, nothing stalled,
    /// nothing queued. Two settled nodes with equal state vectors render
    /// byte-identical databases.
    pub fn settled(&self) -> Result<bool, SyncError> {
        let engine = self.engine();
        Ok(engine.pending_frontiers().is_empty() && engine.pump_replication()?.is_none())
    }

    /// The node's rendered database, serialized — the convergence comparator.
    pub fn rendered(&self) -> Vec<u8> {
        self.engine().read(serialize_database)
    }

    /// Shuts the node down, returning its engine's parts.
    pub fn shutdown(mut self) -> youtopia_storage::Database {
        let (db, _, _) = self.engine.take().expect("engine present").shutdown();
        db
    }
}
