//! Read-dependency tracking: the `NAÏVE`, `COARSE` and `PRECISE` algorithms of
//! Section 5.1.
//!
//! When an update aborts, every update that has read data affected by its
//! writes must abort as well (a *cascading* abort). The three trackers differ
//! in how accurately they know who read from whom:
//!
//! * [`NaiveTracker`] — assume everyone later read from everyone earlier:
//!   abort every update with a higher number.
//! * [`CoarseTracker`] — a violation query over relations `{R₁ … Rₖ}` creates
//!   a dependency on every update that previously wrote *any* tuple of one of
//!   the `Rᵢ`; correction queries are checked exactly against the in-memory
//!   write log, without touching the database.
//! * [`PreciseTracker`] — every logged write of a lower-numbered update is
//!   checked exactly (delta evaluation for violation queries); only writes
//!   that actually change a read query's answer create dependencies.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use youtopia_core::ReadQuery;
use youtopia_mappings::MappingSet;
use youtopia_storage::{AppliedWrite, DataView, RelationId, UpdateId};

use crate::log::ChangeSource;

/// Which dependency-tracking algorithm a run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrackerKind {
    /// Abort every higher-numbered update (the strawman of Section 5.1).
    Naive,
    /// Relation-granular dependencies for violation queries; exact for
    /// correction queries.
    Coarse,
    /// Exact dependencies for every read query.
    Precise,
    /// The per-update hybrid policy suggested at the end of Section 6: an
    /// update starts out tracked by `COARSE`, and switches to `PRECISE` once
    /// it has already been aborted `promote_after` times — "an update which is
    /// particularly important and which should not be aborted spuriously …
    /// can have its read dependencies determined using PRECISE".
    Hybrid {
        /// Number of aborts after which an update's reads are tracked with
        /// `PRECISE` instead of `COARSE`.
        promote_after: usize,
    },
}

impl TrackerKind {
    /// The paper's name for the algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            TrackerKind::Naive => "NAIVE",
            TrackerKind::Coarse => "COARSE",
            TrackerKind::Precise => "PRECISE",
            TrackerKind::Hybrid { .. } => "HYBRID",
        }
    }

    /// Builds the tracker.
    pub fn build(&self) -> Box<dyn DependencyTracker> {
        match self {
            TrackerKind::Naive => Box::new(NaiveTracker),
            TrackerKind::Coarse => Box::new(CoarseTracker::default()),
            TrackerKind::Precise => Box::new(PreciseTracker::default()),
            TrackerKind::Hybrid { promote_after } => Box::new(HybridTracker::new(*promote_after)),
        }
    }

    /// The three algorithms evaluated in the paper's figures, in the order the
    /// figures list them.
    pub fn all() -> [TrackerKind; 3] {
        [TrackerKind::Coarse, TrackerKind::Precise, TrackerKind::Naive]
    }
}

impl std::fmt::Display for TrackerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tracks which updates read from which (lower-numbered) updates.
///
/// `Send` so a scheduler can hand the boxed tracker to worker threads (the
/// parallel scheduler keeps it behind a mutex — tracker updates are already a
/// global serialisation point in the algorithm).
pub trait DependencyTracker: Send {
    /// The algorithm's name (`NAIVE`, `COARSE`, `PRECISE`).
    fn name(&self) -> &'static str;

    /// Records the writes of a chase step (needed by `COARSE`'s relation-level
    /// bookkeeping; `NAIVE` and `PRECISE` rely on the shared write log).
    fn record_writes(&mut self, writer: UpdateId, writes: &[AppliedWrite]);

    /// Records the read dependencies created by `reader` performing `reads` on
    /// its snapshot `view`. `write_log` is the scheduler's log of prior
    /// changes (a [`crate::WriteLog`] or its lock-striped parallel variant).
    fn record_reads(
        &mut self,
        reader: UpdateId,
        reads: &[ReadQuery],
        write_log: &dyn ChangeSource,
        view: &dyn DataView,
        mappings: &MappingSet,
    );

    /// The updates that must cascade-abort when `aborted` aborts — i.e. the
    /// updates that have read from it. `all_updates` is the set of update
    /// numbers in the run (used by `NAIVE`).
    fn dependents_of(&self, aborted: UpdateId, all_updates: &[UpdateId]) -> Vec<UpdateId>;

    /// The recorded read dependencies of an update (who it read from), for
    /// diagnostics and tests.
    fn dependencies_of(&self, reader: UpdateId) -> Vec<UpdateId>;

    /// Clears all bookkeeping for an update (called when it aborts: after the
    /// restart it re-accumulates dependencies from scratch).
    fn clear_update(&mut self, update: UpdateId);

    /// Informs the tracker that an update was aborted (called before
    /// [`DependencyTracker::clear_update`]). Most trackers ignore this; the
    /// hybrid tracker uses it to promote repeatedly-aborted updates to
    /// `PRECISE` tracking.
    fn note_abort(&mut self, _update: UpdateId) {}
}

/// The strawman: when update `i` aborts, abort every update numbered above it.
#[derive(Clone, Debug, Default)]
pub struct NaiveTracker;

impl DependencyTracker for NaiveTracker {
    fn name(&self) -> &'static str {
        "NAIVE"
    }

    fn record_writes(&mut self, _writer: UpdateId, _writes: &[AppliedWrite]) {}

    fn record_reads(
        &mut self,
        _reader: UpdateId,
        _reads: &[ReadQuery],
        _write_log: &dyn ChangeSource,
        _view: &dyn DataView,
        _mappings: &MappingSet,
    ) {
    }

    fn dependents_of(&self, aborted: UpdateId, all_updates: &[UpdateId]) -> Vec<UpdateId> {
        let mut out: Vec<UpdateId> = all_updates.iter().copied().filter(|u| *u > aborted).collect();
        out.sort();
        out
    }

    fn dependencies_of(&self, _reader: UpdateId) -> Vec<UpdateId> {
        Vec::new()
    }

    fn clear_update(&mut self, _update: UpdateId) {}
}

/// Relation-granular dependencies for violation queries, exact dependencies
/// for correction queries.
#[derive(Clone, Debug, Default)]
pub struct CoarseTracker {
    /// Which updates have written to each relation.
    writers_by_relation: HashMap<RelationId, BTreeSet<UpdateId>>,
    /// reader → the lower-numbered updates it depends on.
    deps: BTreeMap<UpdateId, BTreeSet<UpdateId>>,
}

impl DependencyTracker for CoarseTracker {
    fn name(&self) -> &'static str {
        "COARSE"
    }

    fn record_writes(&mut self, writer: UpdateId, writes: &[AppliedWrite]) {
        for w in writes {
            for change in &w.changes {
                self.writers_by_relation.entry(change.relation()).or_default().insert(writer);
            }
        }
    }

    fn record_reads(
        &mut self,
        reader: UpdateId,
        reads: &[ReadQuery],
        write_log: &dyn ChangeSource,
        view: &dyn DataView,
        mappings: &MappingSet,
    ) {
        let entry = self.deps.entry(reader).or_default();
        for read in reads {
            if read.is_violation_query() {
                // Conservative: any earlier writer of any relation the mapping
                // mentions may be the source of a dependency.
                for relation in read.relations_read(mappings) {
                    if let Some(writers) = self.writers_by_relation.get(&relation) {
                        entry.extend(writers.iter().copied().filter(|w| *w < reader));
                    }
                }
            } else {
                // Correction queries: exact, computed from the in-memory write
                // log without touching the database. The relation-keyed log
                // hands back only the changes the query could read.
                write_log.for_each_change_before(
                    reader,
                    &read.relations_read(mappings),
                    &mut |writer, change| {
                        if read.affected_by(view, mappings, change) {
                            entry.insert(writer);
                        }
                    },
                );
            }
        }
    }

    fn dependents_of(&self, aborted: UpdateId, _all_updates: &[UpdateId]) -> Vec<UpdateId> {
        self.deps
            .iter()
            .filter(|(_, sources)| sources.contains(&aborted))
            .map(|(reader, _)| *reader)
            .collect()
    }

    fn dependencies_of(&self, reader: UpdateId) -> Vec<UpdateId> {
        self.deps.get(&reader).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    fn clear_update(&mut self, update: UpdateId) {
        self.deps.remove(&update);
        for writers in self.writers_by_relation.values_mut() {
            writers.remove(&update);
        }
        for sources in self.deps.values_mut() {
            sources.remove(&update);
        }
    }
}

/// Exact dependencies: for each read query, determine precisely which logged
/// writes changed its answer.
#[derive(Clone, Debug, Default)]
pub struct PreciseTracker {
    deps: BTreeMap<UpdateId, BTreeSet<UpdateId>>,
}

impl DependencyTracker for PreciseTracker {
    fn name(&self) -> &'static str {
        "PRECISE"
    }

    fn record_writes(&mut self, _writer: UpdateId, _writes: &[AppliedWrite]) {}

    fn record_reads(
        &mut self,
        reader: UpdateId,
        reads: &[ReadQuery],
        write_log: &dyn ChangeSource,
        view: &dyn DataView,
        mappings: &MappingSet,
    ) {
        let entry = self.deps.entry(reader).or_default();
        for read in reads {
            // A query's dependencies can only come from writes to relations it
            // reads; the relation-keyed write log skips everything else. An
            // empty footprint (null-occurrence queries) falls back to the full
            // log.
            write_log.for_each_change_before(
                reader,
                &read.relations_read(mappings),
                &mut |writer, change| {
                    if entry.contains(&writer) {
                        return;
                    }
                    if read.affected_by(view, mappings, change) {
                        entry.insert(writer);
                    }
                },
            );
        }
    }

    fn dependents_of(&self, aborted: UpdateId, _all_updates: &[UpdateId]) -> Vec<UpdateId> {
        self.deps
            .iter()
            .filter(|(_, sources)| sources.contains(&aborted))
            .map(|(reader, _)| *reader)
            .collect()
    }

    fn dependencies_of(&self, reader: UpdateId) -> Vec<UpdateId> {
        self.deps.get(&reader).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    fn clear_update(&mut self, update: UpdateId) {
        self.deps.remove(&update);
        for sources in self.deps.values_mut() {
            sources.remove(&update);
        }
    }
}

/// The per-update hybrid policy of Section 6: `COARSE` by default, `PRECISE`
/// for updates that have already been aborted at least `promote_after` times.
#[derive(Clone, Debug)]
pub struct HybridTracker {
    coarse: CoarseTracker,
    precise: PreciseTracker,
    abort_counts: HashMap<UpdateId, usize>,
    promote_after: usize,
}

impl HybridTracker {
    /// Creates a hybrid tracker that promotes an update to `PRECISE` tracking
    /// after it has aborted `promote_after` times.
    pub fn new(promote_after: usize) -> HybridTracker {
        HybridTracker {
            coarse: CoarseTracker::default(),
            precise: PreciseTracker::default(),
            abort_counts: HashMap::new(),
            promote_after,
        }
    }

    /// Whether an update's reads are currently tracked precisely.
    pub fn is_promoted(&self, update: UpdateId) -> bool {
        self.abort_counts.get(&update).copied().unwrap_or(0) >= self.promote_after
    }

    /// How many times an update has aborted so far.
    pub fn abort_count(&self, update: UpdateId) -> usize {
        self.abort_counts.get(&update).copied().unwrap_or(0)
    }
}

impl DependencyTracker for HybridTracker {
    fn name(&self) -> &'static str {
        "HYBRID"
    }

    fn record_writes(&mut self, writer: UpdateId, writes: &[AppliedWrite]) {
        self.coarse.record_writes(writer, writes);
        self.precise.record_writes(writer, writes);
    }

    fn record_reads(
        &mut self,
        reader: UpdateId,
        reads: &[ReadQuery],
        write_log: &dyn ChangeSource,
        view: &dyn DataView,
        mappings: &MappingSet,
    ) {
        if self.is_promoted(reader) {
            self.precise.record_reads(reader, reads, write_log, view, mappings);
        } else {
            self.coarse.record_reads(reader, reads, write_log, view, mappings);
        }
    }

    fn dependents_of(&self, aborted: UpdateId, all_updates: &[UpdateId]) -> Vec<UpdateId> {
        let mut out = self.coarse.dependents_of(aborted, all_updates);
        for d in self.precise.dependents_of(aborted, all_updates) {
            if !out.contains(&d) {
                out.push(d);
            }
        }
        out.sort();
        out
    }

    fn dependencies_of(&self, reader: UpdateId) -> Vec<UpdateId> {
        let mut out = self.coarse.dependencies_of(reader);
        for d in self.precise.dependencies_of(reader) {
            if !out.contains(&d) {
                out.push(d);
            }
        }
        out.sort();
        out
    }

    fn clear_update(&mut self, update: UpdateId) {
        self.coarse.clear_update(update);
        self.precise.clear_update(update);
    }

    fn note_abort(&mut self, update: UpdateId) {
        *self.abort_counts.entry(update).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::WriteLog;
    use youtopia_mappings::{ViolationQuery, ViolationSeed};
    use youtopia_storage::{Database, Value, Write};

    /// Small scenario: update 1 inserts a city (writes C), update 3 poses σ1's
    /// violation query (reads C and S) and a null-occurrence correction query.
    fn scenario() -> (Database, MappingSet, Vec<AppliedWrite>, Vec<ReadQuery>) {
        let mut db = Database::new();
        db.add_relation("C", ["city"]).unwrap();
        db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        let mut mappings = MappingSet::new();
        mappings.add_parsed(db.catalog(), "sigma1: C(c) -> exists a, l. S(a, l, c)").unwrap();

        let c = db.relation_id("C").unwrap();
        let writes = db
            .apply_all(
                &[Write::Insert { relation: c, values: vec![Value::constant("Ithaca")] }],
                UpdateId(1),
            )
            .unwrap();
        let sigma1 = mappings.by_name("sigma1").unwrap().id;
        let reads = vec![
            ReadQuery::Violation(ViolationQuery { mapping: sigma1, seed: ViolationSeed::Full }),
            ReadQuery::NullOccurrences { null: youtopia_storage::NullId(99) },
        ];
        (db, mappings, writes, reads)
    }

    #[test]
    fn naive_aborts_everything_above() {
        let tracker = NaiveTracker;
        let all = vec![UpdateId(1), UpdateId(2), UpdateId(3), UpdateId(4)];
        assert_eq!(tracker.dependents_of(UpdateId(2), &all), vec![UpdateId(3), UpdateId(4)]);
        assert!(tracker.dependents_of(UpdateId(4), &all).is_empty());
        assert_eq!(tracker.name(), "NAIVE");
        assert!(tracker.dependencies_of(UpdateId(3)).is_empty());
    }

    #[test]
    fn coarse_uses_relation_granularity() {
        let (db, mappings, writes, reads) = scenario();
        let mut tracker = CoarseTracker::default();
        let mut log = WriteLog::new();
        log.push_all(&writes);
        tracker.record_writes(UpdateId(1), &writes);

        let snap = db.snapshot(UpdateId(3));
        tracker.record_reads(UpdateId(3), &reads, &log, &snap, &mappings);
        // The violation query reads C (written by update 1) → dependency, even
        // though the correction query is unaffected.
        assert_eq!(tracker.dependencies_of(UpdateId(3)), vec![UpdateId(1)]);
        assert_eq!(tracker.dependents_of(UpdateId(1), &[]), vec![UpdateId(3)]);

        // COARSE is conservative: a write to C by update 2 that could not
        // possibly affect the query still creates a dependency once update 3
        // re-reads.
        let mut db2 = db.clone();
        let c = db2.relation_id("C").unwrap();
        let w2 = db2
            .apply_all(
                &[Write::Insert { relation: c, values: vec![Value::constant("Unrelated")] }],
                UpdateId(2),
            )
            .unwrap();
        tracker.record_writes(UpdateId(2), &w2);
        log.push_all(&w2);
        let snap2 = db2.snapshot(UpdateId(3));
        tracker.record_reads(UpdateId(3), &reads, &log, &snap2, &mappings);
        assert_eq!(tracker.dependencies_of(UpdateId(3)), vec![UpdateId(1), UpdateId(2)]);

        tracker.clear_update(UpdateId(3));
        assert!(tracker.dependencies_of(UpdateId(3)).is_empty());
        tracker.clear_update(UpdateId(1));
        assert!(tracker.dependents_of(UpdateId(1), &[]).is_empty());
    }

    #[test]
    fn precise_only_records_real_dependencies() {
        let (db, mappings, writes, reads) = scenario();
        let mut tracker = PreciseTracker::default();
        let mut log = WriteLog::new();
        log.push_all(&writes);

        let snap = db.snapshot(UpdateId(3));
        tracker.record_reads(UpdateId(3), &reads, &log, &snap, &mappings);
        // Update 1's city insert genuinely changes σ1's violation-query answer.
        assert_eq!(tracker.dependencies_of(UpdateId(3)), vec![UpdateId(1)]);

        // A second city insert by update 2 also changes the full-scan answer,
        // but an *unrelated* S row does not.
        let mut db2 = db.clone();
        let s = db2.relation_id("S").unwrap();
        let w2 = db2
            .apply_all(
                &[Write::Insert {
                    relation: s,
                    values: vec![
                        Value::constant("ZZZ"),
                        Value::constant("Nowhere"),
                        Value::constant("Nowhere"),
                    ],
                }],
                UpdateId(2),
            )
            .unwrap();
        log.push_all(&w2);
        let mut tracker2 = PreciseTracker::default();
        let snap2 = db2.snapshot(UpdateId(3));
        tracker2.record_reads(UpdateId(3), &reads, &log, &snap2, &mappings);
        // The S row serves no city that is in C, so it does not change the
        // violation query's answer: only update 1 is a dependency.
        assert_eq!(tracker2.dependencies_of(UpdateId(3)), vec![UpdateId(1)]);
        assert_eq!(tracker2.name(), "PRECISE");
        tracker2.clear_update(UpdateId(1));
        assert_eq!(tracker2.dependencies_of(UpdateId(3)), vec![]);
    }

    #[test]
    fn tracker_kind_builders() {
        assert_eq!(TrackerKind::Naive.build().name(), "NAIVE");
        assert_eq!(TrackerKind::Coarse.build().name(), "COARSE");
        assert_eq!(TrackerKind::Precise.build().name(), "PRECISE");
        assert_eq!(TrackerKind::Hybrid { promote_after: 2 }.build().name(), "HYBRID");
        assert_eq!(TrackerKind::all().len(), 3);
        assert_eq!(TrackerKind::Precise.to_string(), "PRECISE");
    }

    #[test]
    fn hybrid_promotes_after_repeated_aborts() {
        let (db, mappings, writes, reads) = scenario();
        let mut log = WriteLog::new();
        log.push_all(&writes);

        let mut tracker = HybridTracker::new(2);
        tracker.record_writes(UpdateId(1), &writes);
        // Also log an unrelated write by update 2: COARSE will blame it,
        // PRECISE will not.
        let mut db2 = db.clone();
        let s = db2.relation_id("S").unwrap();
        let w2 = db2
            .apply_all(
                &[Write::Insert {
                    relation: s,
                    values: vec![
                        Value::constant("ZZZ"),
                        Value::constant("Nowhere"),
                        Value::constant("Nowhere"),
                    ],
                }],
                UpdateId(2),
            )
            .unwrap();
        tracker.record_writes(UpdateId(2), &w2);
        log.push_all(&w2);

        // Before any aborts: coarse behaviour (depends on updates 1 and 2).
        assert!(!tracker.is_promoted(UpdateId(3)));
        let snap = db2.snapshot(UpdateId(3));
        tracker.record_reads(UpdateId(3), &reads, &log, &snap, &mappings);
        assert_eq!(tracker.dependencies_of(UpdateId(3)), vec![UpdateId(1), UpdateId(2)]);
        assert_eq!(tracker.dependents_of(UpdateId(2), &[]), vec![UpdateId(3)]);

        // Two aborts later the update is promoted and re-recorded reads are
        // tracked precisely: only update 1 remains a dependency.
        tracker.note_abort(UpdateId(3));
        tracker.clear_update(UpdateId(3));
        assert_eq!(tracker.abort_count(UpdateId(3)), 1);
        assert!(!tracker.is_promoted(UpdateId(3)));
        tracker.note_abort(UpdateId(3));
        tracker.clear_update(UpdateId(3));
        assert!(tracker.is_promoted(UpdateId(3)));
        tracker.record_reads(UpdateId(3), &reads, &log, &snap, &mappings);
        assert_eq!(tracker.dependencies_of(UpdateId(3)), vec![UpdateId(1)]);
        assert_eq!(tracker.name(), "HYBRID");
    }
}
