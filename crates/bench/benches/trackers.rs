//! Benchmarks comparing the three cascading-abort trackers on small versions
//! of the Section 6 workloads (the full sweeps are produced by the `fig3` and
//! `fig4` binaries; these benches measure the *per-run cost* of each tracker,
//! which underlies the "slowdown of PRECISE" panel of the figures).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use youtopia_concurrency::TrackerKind;
use youtopia_workload::{build_fixture, run_single, ExperimentConfig, WorkloadKind};

fn bench_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::tiny();
    config.workload_updates = 15;
    config.initial_tuples = 60;
    config
}

fn bench_trackers_all_insert(c: &mut Criterion) {
    let config = bench_config();
    let fixture = build_fixture(&config).expect("fixture builds");
    let mapping_count = *config.mapping_counts.last().unwrap();
    let mut group = c.benchmark_group("trackers/all_insert_workload");
    group.sample_size(10);
    for tracker in [TrackerKind::Naive, TrackerKind::Coarse, TrackerKind::Precise] {
        group.bench_with_input(
            BenchmarkId::from_parameter(tracker.name()),
            &tracker,
            |b, &tracker| {
                b.iter(|| {
                    let metrics = run_single(
                        &fixture,
                        &config,
                        WorkloadKind::AllInserts,
                        mapping_count,
                        tracker,
                        0,
                    )
                    .expect("run terminates");
                    black_box(metrics.aborts)
                })
            },
        );
    }
    group.finish();
}

fn bench_trackers_mixed(c: &mut Criterion) {
    let config = bench_config();
    let fixture = build_fixture(&config).expect("fixture builds");
    let mapping_count = *config.mapping_counts.last().unwrap();
    let mut group = c.benchmark_group("trackers/mixed_workload");
    group.sample_size(10);
    for tracker in [TrackerKind::Coarse, TrackerKind::Precise] {
        group.bench_with_input(
            BenchmarkId::from_parameter(tracker.name()),
            &tracker,
            |b, &tracker| {
                b.iter(|| {
                    let metrics = run_single(
                        &fixture,
                        &config,
                        WorkloadKind::Mixed,
                        mapping_count,
                        tracker,
                        0,
                    )
                    .expect("run terminates");
                    black_box(metrics.aborts)
                })
            },
        );
    }
    group.finish();
}

fn bench_mapping_density(c: &mut Criterion) {
    // Per-run cost as mapping density grows (the x axis of the figures),
    // under the COARSE tracker.
    let config = bench_config();
    let fixture = build_fixture(&config).expect("fixture builds");
    let mut group = c.benchmark_group("trackers/coarse_by_density");
    group.sample_size(10);
    for &count in &config.mapping_counts {
        group.bench_with_input(BenchmarkId::from_parameter(count), &count, |b, &count| {
            b.iter(|| {
                let metrics = run_single(
                    &fixture,
                    &config,
                    WorkloadKind::AllInserts,
                    count,
                    TrackerKind::Coarse,
                    0,
                )
                .expect("run terminates");
                black_box(metrics.steps)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trackers_all_insert, bench_trackers_mixed, bench_mapping_density);
criterion_main!(benches);
