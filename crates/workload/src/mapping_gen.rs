//! Random mapping (tgd) generation (Section 6).
//!
//! "Each mapping is created by choosing a random subset of one to three
//! relations for the LHS and another for the RHS. Smaller sets have higher
//! probability … The remaining step in mapping generation is the choice of
//! variables in the atoms; this is done randomly, with care taken to ensure
//! that the mappings contain inter-atom joins as well as constants."

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use youtopia_mappings::MappingSet;
use youtopia_storage::{Atom, RelationId, Symbol, Term, Value};

use crate::config::ExperimentConfig;
use crate::schema_gen::GeneratedSchema;

/// Probability that an LHS attribute position holds a constant.
const LHS_CONSTANT_PROB: f64 = 0.12;
/// Probability that an RHS attribute position holds a constant.
const RHS_CONSTANT_PROB: f64 = 0.08;
/// Probability that an RHS variable position reuses an LHS (frontier) variable.
const RHS_FRONTIER_PROB: f64 = 0.6;
/// Probability that a non-first LHS atom position reuses an earlier variable
/// (creating an inter-atom join).
const LHS_JOIN_PROB: f64 = 0.45;
/// Probability that an RHS existential position reuses an earlier existential
/// variable (shared existentials across RHS atoms).
const EXISTENTIAL_REUSE_PROB: f64 = 0.35;

/// Generates `config.total_mappings` random mappings over the generated
/// schema. The same seed always produces the same mapping set, and experiment
/// sweeps use monotonically increasing prefixes of it (as in the paper).
pub fn generate_mappings(config: &ExperimentConfig, schema: &GeneratedSchema) -> MappingSet {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x5851_F42D).wrapping_add(2));
    let mut set = MappingSet::new();
    for index in 0..config.total_mappings {
        let (lhs, rhs) = generate_one(config, schema, &mut rng);
        set.add(format!("m{index}"), lhs, rhs).expect("generated mappings are well-formed");
    }
    debug_assert!(set.validate(schema.db.catalog()).is_ok());
    set
}

/// Picks a side size in `1..=max`, with smaller sizes more probable
/// ("humans are highly unlikely to create mappings with more than one or two
/// atoms on either side").
fn side_size(rng: &mut StdRng, max: usize) -> usize {
    let max = max.max(1);
    let roll: f64 = rng.gen();
    let size = if roll < 0.55 {
        1
    } else if roll < 0.85 {
        2
    } else {
        3
    };
    size.min(max)
}

fn pick_relations(rng: &mut StdRng, schema: &GeneratedSchema, count: usize) -> Vec<RelationId> {
    let mut all: Vec<RelationId> = schema.db.catalog().relation_ids().collect();
    all.shuffle(rng);
    all.truncate(count.max(1));
    all
}

fn generate_one(
    config: &ExperimentConfig,
    schema: &GeneratedSchema,
    rng: &mut StdRng,
) -> (Vec<Atom>, Vec<Atom>) {
    let lhs_size = side_size(rng, config.max_atoms_per_side);
    let lhs_relations = pick_relations(rng, schema, lhs_size);
    let rhs_size = side_size(rng, config.max_atoms_per_side);
    let rhs_relations = pick_relations(rng, schema, rhs_size);

    let mut var_counter = 0usize;
    let fresh_var = |counter: &mut usize| {
        let v = Symbol::intern(&format!("v{counter}"));
        *counter += 1;
        v
    };

    // Left-hand side: variables with inter-atom joins plus occasional constants.
    let mut lhs_vars: Vec<Symbol> = Vec::new();
    let mut lhs = Vec::new();
    for (atom_index, &relation) in lhs_relations.iter().enumerate() {
        let arity = schema.db.schema(relation).arity();
        // Variables introduced by *earlier* atoms: joining with one of these
        // creates a genuine inter-atom join.
        let prior_vars = lhs_vars.clone();
        let mut terms = Vec::with_capacity(arity);
        let mut joined = atom_index == 0;
        for pos in 0..arity {
            let force_join = !joined && pos + 1 == arity && !prior_vars.is_empty();
            if force_join
                || (atom_index > 0 && !prior_vars.is_empty() && rng.gen_bool(LHS_JOIN_PROB))
            {
                let var = *prior_vars.choose(rng).expect("non-empty");
                terms.push(Term::Var(var));
                joined = true;
            } else if rng.gen_bool(LHS_CONSTANT_PROB) {
                terms.push(Term::Const(schema.random_constant(rng)));
            } else {
                let var = fresh_var(&mut var_counter);
                lhs_vars.push(var);
                terms.push(Term::Var(var));
            }
        }
        lhs.push(Atom::new(relation, terms));
    }

    // Right-hand side: frontier variables, existentials and constants.
    let mut existentials: Vec<Symbol> = Vec::new();
    let mut has_frontier = false;
    let mut rhs = Vec::new();
    for &relation in &rhs_relations {
        let arity = schema.db.schema(relation).arity();
        let mut terms = Vec::with_capacity(arity);
        for _ in 0..arity {
            if !lhs_vars.is_empty() && rng.gen_bool(RHS_FRONTIER_PROB) {
                let var = *lhs_vars.choose(rng).expect("non-empty");
                terms.push(Term::Var(var));
                has_frontier = true;
            } else if rng.gen_bool(RHS_CONSTANT_PROB) {
                terms.push(Term::Const(schema.random_constant(rng)));
            } else if !existentials.is_empty() && rng.gen_bool(EXISTENTIAL_REUSE_PROB) {
                terms.push(Term::Var(*existentials.choose(rng).expect("non-empty")));
            } else {
                let var = fresh_var(&mut var_counter);
                existentials.push(var);
                terms.push(Term::Var(var));
            }
        }
        rhs.push(Atom::new(relation, terms));
    }
    // Make sure the mapping exports at least one frontier variable whenever
    // the LHS has variables at all (otherwise the RHS is completely
    // disconnected from the data that triggers it).
    if !has_frontier && !lhs_vars.is_empty() {
        if let Some(atom) = rhs.first_mut() {
            if let Some(slot) = atom.terms.first_mut() {
                *slot = Term::Var(lhs_vars[0]);
            }
        }
    }
    (lhs, rhs)
}

/// Convenience: generate schema-compatible mappings and pick a prefix size.
pub fn mapping_prefix(set: &MappingSet, count: usize) -> MappingSet {
    set.prefix(count)
}

/// Summary statistics about a generated mapping set (used by reports and
/// sanity tests).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MappingSetStats {
    /// Number of mappings.
    pub mappings: usize,
    /// Average number of LHS atoms.
    pub avg_lhs_atoms: f64,
    /// Average number of RHS atoms.
    pub avg_rhs_atoms: f64,
    /// Fraction of mappings with at least one existential variable.
    pub with_existentials: f64,
    /// Fraction of mappings whose atoms mention at least one constant.
    pub with_constants: f64,
    /// Fraction of mappings whose LHS atoms share at least one variable
    /// (inter-atom join), among mappings with two or more LHS atoms.
    pub with_lhs_joins: f64,
}

/// Computes the statistics of a mapping set.
pub fn mapping_stats(set: &MappingSet) -> MappingSetStats {
    if set.is_empty() {
        return MappingSetStats::default();
    }
    let n = set.len() as f64;
    let mut lhs_atoms = 0usize;
    let mut rhs_atoms = 0usize;
    let mut with_existentials = 0usize;
    let mut with_constants = 0usize;
    let mut multi_lhs = 0usize;
    let mut with_joins = 0usize;
    for tgd in set.iter() {
        lhs_atoms += tgd.lhs.len();
        rhs_atoms += tgd.rhs.len();
        if !tgd.existential_vars().is_empty() {
            with_existentials += 1;
        }
        let has_const = tgd
            .lhs
            .iter()
            .chain(tgd.rhs.iter())
            .any(|a| a.terms.iter().any(|t| matches!(t, Term::Const(Value::Const(_)))));
        if has_const {
            with_constants += 1;
        }
        if tgd.lhs.len() > 1 {
            multi_lhs += 1;
            let joined = tgd.lhs.iter().enumerate().any(|(i, a)| {
                tgd.lhs
                    .iter()
                    .enumerate()
                    .any(|(j, b)| i < j && a.variables().iter().any(|v| b.variables().contains(v)))
            });
            if joined {
                with_joins += 1;
            }
        }
    }
    MappingSetStats {
        mappings: set.len(),
        avg_lhs_atoms: lhs_atoms as f64 / n,
        avg_rhs_atoms: rhs_atoms as f64 / n,
        with_existentials: with_existentials as f64 / n,
        with_constants: with_constants as f64 / n,
        with_lhs_joins: if multi_lhs == 0 { 1.0 } else { with_joins as f64 / multi_lhs as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_gen::generate_schema;

    #[test]
    fn generates_the_requested_number_of_mappings() {
        let config = ExperimentConfig::quick();
        let schema = generate_schema(&config);
        let set = generate_mappings(&config, &schema);
        assert_eq!(set.len(), config.total_mappings);
        assert!(set.validate(schema.db.catalog()).is_ok());
    }

    #[test]
    fn mapping_sizes_respect_the_limit_and_favour_small_sides() {
        let config = ExperimentConfig::quick();
        let schema = generate_schema(&config);
        let set = generate_mappings(&config, &schema);
        let stats = mapping_stats(&set);
        for tgd in set.iter() {
            assert!(tgd.lhs.len() <= config.max_atoms_per_side);
            assert!(tgd.rhs.len() <= config.max_atoms_per_side);
            assert!(!tgd.lhs.is_empty() && !tgd.rhs.is_empty());
        }
        assert!(stats.avg_lhs_atoms < 2.2, "smaller sides should dominate: {stats:?}");
        assert!(stats.avg_rhs_atoms < 2.2);
    }

    #[test]
    fn mappings_have_joins_constants_and_frontier_variables() {
        let config = ExperimentConfig::quick();
        let schema = generate_schema(&config);
        let set = generate_mappings(&config, &schema);
        let stats = mapping_stats(&set);
        // The paper requires inter-atom joins and constants to occur.
        assert!(stats.with_lhs_joins > 0.5, "{stats:?}");
        assert!(stats.with_constants > 0.0, "{stats:?}");
        // Most mappings should export at least one frontier variable.
        let with_frontier =
            set.iter().filter(|t| !t.frontier_vars().is_empty()).count() as f64 / set.len() as f64;
        assert!(with_frontier > 0.8, "frontier fraction {with_frontier}");
    }

    #[test]
    fn generation_is_deterministic_and_prefixes_are_stable() {
        let config = ExperimentConfig::tiny();
        let schema = generate_schema(&config);
        let a = generate_mappings(&config, &schema);
        let b = generate_mappings(&config, &schema);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.lhs, y.lhs);
            assert_eq!(x.rhs, y.rhs);
        }
        let prefix = mapping_prefix(&a, 4);
        assert_eq!(prefix.len(), 4);
        for (x, y) in prefix.iter().zip(a.iter().take(4)) {
            assert_eq!(x.lhs, y.lhs);
        }
    }

    #[test]
    fn stats_of_empty_set_are_zero() {
        let stats = mapping_stats(&MappingSet::new());
        assert_eq!(stats.mappings, 0);
        assert_eq!(stats.avg_lhs_atoms, 0.0);
    }
}
