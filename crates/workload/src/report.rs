//! Report rendering: text tables and CSV series matching the panels of
//! Figures 3 and 4.

use youtopia_concurrency::TrackerKind;

use crate::experiment::ExperimentResults;

/// Tail-latency summary of a sample set: the 50th, 95th and 99th percentiles
/// by the nearest-rank method (see [`percentile`]). The experiment harness
/// fills one per data point from the per-run per-update times; the scenario
/// harness fills one from per-update latencies in virtual ticks.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile — the fair-tail-latency headline number.
    pub p99: f64,
}

impl LatencySummary {
    /// Summarises a sample set (order irrelevant; empty yields all zeros).
    pub fn from_samples(samples: &[f64]) -> LatencySummary {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        LatencySummary {
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
        }
    }
}

/// The `p`-th percentile of an ascending-sorted sample set by the
/// **nearest-rank** method: the value at 1-indexed rank `⌈p/100 · N⌉`
/// (clamped to the ends, `0.0` for an empty set). Nearest-rank always
/// returns an observed sample — no interpolation — which keeps percentiles
/// of integer tick latencies integral.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Renders the three panels of a figure (aborts, cascading abort requests,
/// slowdown of `PRECISE`) as aligned text tables.
pub fn render_figure(results: &ExperimentResults, figure_name: &str) -> String {
    let mut out = String::new();
    let trackers = [TrackerKind::Coarse, TrackerKind::Precise, TrackerKind::Naive];
    out.push_str(&format!(
        "{figure_name}: {} workload ({} updates, {} runs per point, {} initial tuples)\n",
        results.workload,
        results.config.workload_updates,
        results.config.runs,
        results.initial_data.total_tuples,
    ));
    out.push_str(&format!("experiment wall time: {:.1}s\n\n", results.total_seconds));

    // Panel 1: number of aborts.
    out.push_str(&panel(results, "# Aborts", &trackers, |p| p.avg.aborts));
    // Panel 2: number of cascading abort requests.
    out.push_str(&panel(results, "# Cascading Abort Requests", &trackers, |p| {
        p.avg.cascading_abort_requests
    }));
    // Panel 3: slowdown of PRECISE over COARSE.
    out.push_str(&slowdown_panel(results));
    // Panel 4 (beyond the paper): tail latency across the repeated runs.
    out.push_str(&latency_panel(results, &trackers));
    out
}

fn panel(
    results: &ExperimentResults,
    title: &str,
    trackers: &[TrackerKind],
    metric: impl Fn(&crate::experiment::ExperimentPoint) -> f64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:>10}", "#mappings"));
    for t in trackers {
        out.push_str(&format!("{:>12}", t.name()));
    }
    out.push('\n');
    for &m in &results.config.mapping_counts {
        out.push_str(&format!("{m:>10}"));
        for &t in trackers {
            match results.point(m, t) {
                Some(p) => out.push_str(&format!("{:>12.1}", metric(p))),
                None => out.push_str(&format!("{:>12}", "-")),
            }
        }
        out.push('\n');
    }
    out.push('\n');
    out
}

fn latency_panel(results: &ExperimentResults, trackers: &[TrackerKind]) -> String {
    let mut out = String::new();
    out.push_str("Per-update time p95 across runs (µs, nearest-rank)\n");
    out.push_str(&format!("{:>10}", "#mappings"));
    for t in trackers {
        out.push_str(&format!("{:>12}", t.name()));
    }
    out.push('\n');
    for &m in &results.config.mapping_counts {
        out.push_str(&format!("{m:>10}"));
        for &t in trackers {
            match results.point(m, t) {
                Some(p) => out.push_str(&format!("{:>12.1}", p.latency.p95 * 1e6)),
                None => out.push_str(&format!("{:>12}", "-")),
            }
        }
        out.push('\n');
    }
    out.push('\n');
    out
}

fn slowdown_panel(results: &ExperimentResults) -> String {
    let mut out = String::new();
    out.push_str("Slowdown of PRECISE (per-update time, PRECISE / COARSE)\n");
    out.push_str(&format!("{:>10}{:>12}\n", "#mappings", "slowdown"));
    for &m in &results.config.mapping_counts {
        match results.precise_slowdown(m) {
            Some(s) => out.push_str(&format!("{m:>10}{s:>12.2}\n")),
            None => out.push_str(&format!("{m:>10}{:>12}\n", "-")),
        }
    }
    out.push('\n');
    out
}

/// Renders the results as CSV, one row per (mapping count, tracker):
/// `mappings,tracker,aborts,cascading_abort_requests,direct_conflicts,per_update_time_secs,p50_update_secs,p95_update_secs,p99_update_secs,steps,frontier_ops`.
/// The three percentile columns summarise the per-run per-update times of the
/// point's repeated runs (nearest-rank, see [`percentile`]).
pub fn to_csv(results: &ExperimentResults) -> String {
    let mut out = String::from(
        "mappings,tracker,aborts,cascading_abort_requests,direct_conflicts,per_update_time_secs,p50_update_secs,p95_update_secs,p99_update_secs,steps,frontier_ops\n",
    );
    for p in &results.points {
        out.push_str(&format!(
            "{},{},{:.3},{:.3},{:.3},{:.6},{:.6},{:.6},{:.6},{:.1},{:.1}\n",
            p.mappings,
            p.tracker.name(),
            p.avg.aborts,
            p.avg.cascading_abort_requests,
            p.avg.direct_conflict_requests,
            p.avg.per_update_time_secs,
            p.latency.p50,
            p.latency.p95,
            p.latency.p99,
            p.avg.steps,
            p.avg.frontier_ops,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, WorkloadKind};
    use crate::experiment::run_experiment;
    use youtopia_concurrency::TrackerKind;

    fn tiny_results() -> ExperimentResults {
        let mut config = ExperimentConfig::tiny();
        config.runs = 1;
        run_experiment(
            &config,
            WorkloadKind::AllInserts,
            &[TrackerKind::Coarse, TrackerKind::Precise],
            None,
        )
        .unwrap()
    }

    #[test]
    fn figure_rendering_contains_all_panels_and_trackers() {
        let results = tiny_results();
        let rendered = render_figure(&results, "Figure 3 (reduced scale)");
        assert!(rendered.contains("# Aborts"));
        assert!(rendered.contains("# Cascading Abort Requests"));
        assert!(rendered.contains("Slowdown of PRECISE"));
        assert!(rendered.contains("COARSE"));
        assert!(rendered.contains("PRECISE"));
        assert!(rendered.contains("NAIVE"));
        for m in &results.config.mapping_counts {
            assert!(rendered.contains(&m.to_string()));
        }
    }

    #[test]
    fn csv_has_one_row_per_point_plus_header() {
        let results = tiny_results();
        let csv = to_csv(&results);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), results.points.len() + 1);
        assert!(lines[0].starts_with("mappings,tracker"));
        assert!(lines[0].contains("p50_update_secs,p95_update_secs,p99_update_secs"));
        assert!(lines[1].contains("COARSE") || lines[1].contains("PRECISE"));
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 11);
        }
    }

    #[test]
    fn nearest_rank_percentiles_are_pinned() {
        // 1..=100: the p-th nearest-rank percentile is exactly p.
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 95.0), 95.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0, "rank clamps to the first sample");
        // Small sets: ⌈0.5·5⌉ = 3rd of five, ⌈0.95·5⌉ = 5th.
        let five = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&five, 50.0), 30.0);
        assert_eq!(percentile(&five, 95.0), 50.0);
        assert_eq!(percentile(&[], 99.0), 0.0, "empty sample sets summarise to zero");
        // from_samples sorts for the caller and never interpolates.
        let summary = LatencySummary::from_samples(&[3.0, 1.0, 2.0]);
        assert_eq!(summary, LatencySummary { p50: 2.0, p95: 3.0, p99: 3.0 });
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
    }

    #[test]
    fn missing_trackers_render_as_dashes() {
        let results = tiny_results();
        // NAIVE was not run: the abort panel must still render.
        let rendered = render_figure(&results, "partial");
        assert!(rendered.contains('-'));
    }
}
