//! The Youtopia database: catalog, id allocation and write application on top
//! of the [`VersionStore`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::StorageError;
use crate::schema::{Catalog, RelationId, RelationSchema};
use crate::snapshot::Snapshot;
use crate::store::VersionStore;
use crate::tuple::{self, TupleData, TupleId};
use crate::value::{NullId, Value};
use crate::version::{AppliedWrite, TupleChange, TupleVersion, UpdateId, VersionChain, Write};

/// An in-memory relational database with labeled nulls and multiversion
/// tuples.
///
/// This is the storage substrate underneath Youtopia's update exchange. The
/// database owns the catalog and the id allocators; all tuple data lives in a
/// [`VersionStore`]. All mutation goes through [`Database::apply`] (or the
/// batched [`Database::apply_all`] / [`Database::apply_all_owned`]), which
/// stamps the resulting tuple versions with the writing update's priority
/// number; readers observe the database through [`Database::snapshot`], which
/// implements the visibility rule of Section 4.1.
#[derive(Debug, Default)]
pub struct Database {
    catalog: Catalog,
    store: VersionStore,
    next_tuple: u64,
    /// Atomic so [`Database::fresh_null`] works through a shared borrow: the
    /// parallel scheduler plans repairs (which mint fresh nulls) for many
    /// updates concurrently under a read lock, while tuple and sequence ids
    /// are only allocated by writes, which hold the write lock.
    next_null: AtomicU64,
    next_seq: u64,
}

impl Clone for Database {
    fn clone(&self) -> Database {
        Database {
            catalog: self.catalog.clone(),
            store: self.store.clone(),
            next_tuple: self.next_tuple,
            next_null: AtomicU64::new(self.next_null.load(Ordering::Relaxed)),
            next_seq: self.next_seq,
        }
    }
}

impl Database {
    /// Creates an empty database with an empty catalog.
    pub fn new() -> Database {
        Database::default()
    }

    /// Registers a new relation.
    pub fn add_relation(
        &mut self,
        name: impl Into<String>,
        attributes: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<RelationId, StorageError> {
        let id = self.catalog.add_relation(name, attributes)?;
        let arity = self.catalog.schema(id).arity();
        self.store.add_relation(id, arity);
        Ok(id)
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The underlying version store (read access for diagnostics and tools).
    pub fn version_store(&self) -> &VersionStore {
        &self.store
    }

    /// Mutable store access for snapshot restore (`crate::wal`), which rebuilds
    /// version chains without allocating ids.
    pub(crate) fn store_mut(&mut self) -> &mut VersionStore {
        &mut self.store
    }

    /// The id-allocator counters, in `(next_tuple, next_null, next_seq)` order,
    /// for snapshot serialization.
    pub(crate) fn wal_counters(&self) -> (u64, u64, u64) {
        (self.next_tuple, self.next_null.load(Ordering::Relaxed), self.next_seq)
    }

    /// Restores the id-allocator counters from a snapshot.
    pub(crate) fn restore_wal_counters(&mut self, next_tuple: u64, next_null: u64, next_seq: u64) {
        self.next_tuple = next_tuple;
        self.next_null.store(next_null, Ordering::Relaxed);
        self.next_seq = next_seq;
    }

    /// Schema of a relation.
    pub fn schema(&self, relation: RelationId) -> &RelationSchema {
        self.catalog.schema(relation)
    }

    /// Relation id by name.
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.catalog.relation_id(name)
    }

    /// Allocates a fresh labeled null, unique within this database. Takes a
    /// shared borrow (the counter is atomic) so concurrent repair planning
    /// can mint nulls without exclusive database access.
    pub fn fresh_null(&self) -> NullId {
        NullId(self.next_null.fetch_add(1, Ordering::Relaxed))
    }

    /// Largest null id allocated so far (for diagnostics).
    pub fn null_counter(&self) -> u64 {
        self.next_null.load(Ordering::Relaxed)
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Applies a logical write on behalf of `writer`, returning the concrete
    /// per-tuple changes.
    ///
    /// * Inserting always creates a new logical tuple.
    /// * Deleting a tuple that is not visible to the writer is a no-op
    ///   (another, lower-numbered update may have deleted it already).
    /// * Null-replacement rewrites every tuple visible to the writer that
    ///   contains the null; the replacement may be a constant or another
    ///   labeled null (unification).
    pub fn apply(
        &mut self,
        write: &Write,
        writer: UpdateId,
    ) -> Result<Vec<TupleChange>, StorageError> {
        match write {
            Write::Insert { relation, values } => {
                let schema_arity = self.catalog.try_schema(*relation)?.arity();
                if values.len() != schema_arity {
                    return Err(StorageError::ArityMismatch {
                        relation: *relation,
                        expected: schema_arity,
                        actual: values.len(),
                    });
                }
                let tuple = TupleId(self.next_tuple);
                self.next_tuple += 1;
                let seq = self.next_seq();
                let data: TupleData = values.clone().into();
                self.store.insert_new(
                    *relation,
                    tuple,
                    TupleVersion { update: writer, seq, data: Some(data.clone()) },
                );
                Ok(vec![TupleChange::Inserted { relation: *relation, tuple, values: data }])
            }
            Write::Delete { relation, tuple } => {
                let store = self
                    .store
                    .relation(*relation)
                    .ok_or(StorageError::UnknownRelation(*relation))?;
                if !store.contains(*tuple) {
                    // Tuple id never existed in this relation.
                    return Ok(Vec::new());
                }
                let Some(old) = store.visible(*tuple, writer) else {
                    // Already deleted (or not yet visible) for this writer: no-op.
                    return Ok(Vec::new());
                };
                let seq = self.next_seq();
                self.store.push_version(
                    *relation,
                    *tuple,
                    TupleVersion { update: writer, seq, data: None },
                );
                Ok(vec![TupleChange::Deleted { relation: *relation, tuple: *tuple, old }])
            }
            Write::NullReplace { null, replacement } => {
                let mut subst = HashMap::new();
                subst.insert(*null, *replacement);
                let affected = self.store.tuples_mentioning(*null);
                let mut changes = Vec::new();
                for tuple in affected {
                    let Some(relation) = self.store.tuple_relation(tuple) else { continue };
                    let Some(old) = self.store.visible(relation, tuple, writer) else { continue };
                    let (new_values, changed) = tuple::substitute_nulls(&old, &subst);
                    if !changed {
                        continue;
                    }
                    let new: TupleData = new_values.into();
                    let seq = self.next_seq();
                    self.store.push_version(
                        relation,
                        tuple,
                        TupleVersion { update: writer, seq, data: Some(new.clone()) },
                    );
                    changes.push(TupleChange::Modified { relation, tuple, old, new });
                }
                Ok(changes)
            }
        }
    }

    /// Applies a batch of writes, producing stamped [`AppliedWrite`] records
    /// (the unit logged by the concurrency layer).
    pub fn apply_all(
        &mut self,
        writes: &[Write],
        writer: UpdateId,
    ) -> Result<Vec<AppliedWrite>, StorageError> {
        self.apply_all_owned(writes.to_vec(), writer)
    }

    /// Batch-apply fast path for multi-write chase steps: takes ownership of
    /// the write set so the logged [`AppliedWrite`] records reuse the writes
    /// instead of cloning every value vector a second time. The chase hands
    /// its pending writes over wholesale each step, which makes this the hot
    /// write entry point.
    pub fn apply_all_owned(
        &mut self,
        writes: Vec<Write>,
        writer: UpdateId,
    ) -> Result<Vec<AppliedWrite>, StorageError> {
        let mut out = Vec::with_capacity(writes.len());
        for w in writes {
            let seq = self.next_seq;
            let changes = self.apply(&w, writer)?;
            out.push(AppliedWrite { update: writer, seq, write: w, changes });
        }
        Ok(out)
    }

    /// Removes every version written by `update` (used to abort an update).
    ///
    /// Returns the ids of logical tuples that disappeared entirely.
    pub fn rollback_update(&mut self, update: UpdateId) -> Vec<TupleId> {
        self.store.rollback_update(update)
    }

    /// A read-only snapshot as seen by `reader` (visibility rule of §4.1).
    pub fn snapshot(&self, reader: UpdateId) -> Snapshot<'_> {
        Snapshot::new(self, reader)
    }

    /// Data of a tuple as visible to `reader`.
    pub fn visible(
        &self,
        relation: RelationId,
        tuple: TupleId,
        reader: UpdateId,
    ) -> Option<TupleData> {
        self.store.visible(relation, tuple, reader)
    }

    /// The relation a tuple id belongs to (regardless of visibility).
    pub fn tuple_relation(&self, tuple: TupleId) -> Option<RelationId> {
        self.store.tuple_relation(tuple)
    }

    /// The write epoch of a relation (see [`VersionStore::relation_epoch`]):
    /// bumped on every mutation of the relation, so "has anything I read
    /// changed?" is one integer compare per relation.
    pub fn relation_epoch(&self, relation: RelationId) -> u64 {
        self.store.relation_epoch(relation)
    }

    /// Number of retained write-delta entries (see
    /// [`VersionStore::delta_backlog_len`]); used by the engine's quiescence
    /// GC diagnostics and memory-bound tests.
    pub fn delta_backlog_len(&self) -> usize {
        self.store.delta_backlog_len()
    }

    /// Overrides the write-delta backlog bound (see
    /// [`VersionStore::set_delta_backlog_cap`]); surfaced through
    /// `EngineBuilder::delta_backlog_cap` so replication tests can exercise
    /// truncation-gap recovery without 32k mutations.
    pub fn set_delta_backlog_cap(&mut self, cap: usize) {
        self.store.set_delta_backlog_cap(cap)
    }

    /// Drops the write-delta backlog of the shared violation feed (see
    /// [`VersionStore::truncate_delta_backlog`]). Safe at any time — stale
    /// cursors observe a gap and fall back to full revalidation — but meant
    /// for engine quiescence, where no live cursor exists.
    pub fn truncate_delta_backlog(&mut self) {
        self.store.truncate_delta_backlog()
    }

    /// All tuples of `relation` visible to `reader`.
    pub fn scan(&self, relation: RelationId, reader: UpdateId) -> Vec<(TupleId, TupleData)> {
        self.store.scan(relation, reader)
    }

    /// Tuples of `relation` visible to `reader` with `value` at `column`.
    pub fn candidates(
        &self,
        relation: RelationId,
        column: usize,
        value: Value,
        reader: UpdateId,
    ) -> Vec<(TupleId, TupleData)> {
        self.store.candidates(relation, column, value, reader)
    }

    /// Tuples (across all relations) visible to `reader` that contain the
    /// labeled null `null`. This is the *correction query* "find all other
    /// tuples in the database containing x" of Section 4.2.
    pub fn null_occurrences(
        &self,
        null: NullId,
        reader: UpdateId,
    ) -> Vec<(RelationId, TupleId, TupleData)> {
        self.store.null_occurrences(null, reader)
    }

    /// Number of tuples of `relation` visible to `reader`.
    pub fn visible_count(&self, relation: RelationId, reader: UpdateId) -> usize {
        self.store.visible_count(relation, reader)
    }

    /// Total number of visible tuples across all relations.
    pub fn total_visible(&self, reader: UpdateId) -> usize {
        self.store.total_visible(reader)
    }

    /// The full version chain of a tuple (diagnostics and tests).
    pub fn version_chain(&self, relation: RelationId, tuple: TupleId) -> Option<&VersionChain> {
        self.store.version_chain(relation, tuple)
    }

    /// Convenience: insert a tuple of constants by relation *name* on behalf of
    /// `writer`. Panics on unknown relation names — intended for examples and
    /// tests.
    pub fn insert_by_name(&mut self, relation: &str, values: &[&str], writer: UpdateId) -> TupleId {
        let rel =
            self.relation_id(relation).unwrap_or_else(|| panic!("unknown relation {relation}"));
        let write = Write::Insert {
            relation: rel,
            values: values.iter().map(|v| Value::constant(v)).collect(),
        };
        match self.apply(&write, writer).expect("insert failed")[..] {
            [TupleChange::Inserted { tuple, .. }] => tuple,
            _ => unreachable!("insert produces exactly one change"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value as V;

    fn db_one_relation(arity: usize) -> (Database, RelationId) {
        let mut db = Database::new();
        let attrs: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
        let r = db.add_relation("R", attrs).unwrap();
        (db, r)
    }

    #[test]
    fn insert_and_scan() {
        let (mut db, r) = db_one_relation(2);
        let w = Write::Insert { relation: r, values: vec![V::constant("a"), V::constant("b")] };
        let changes = db.apply(&w, UpdateId(1)).unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(db.total_visible(UpdateId::OMNISCIENT), 1);
        assert_eq!(db.scan(r, UpdateId::OMNISCIENT).len(), 1);
        assert_eq!(db.visible_count(r, UpdateId(0)), 0, "not visible to lower-numbered readers");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (mut db, r) = db_one_relation(2);
        let w = Write::Insert { relation: r, values: vec![V::constant("a")] };
        assert!(matches!(db.apply(&w, UpdateId(1)), Err(StorageError::ArityMismatch { .. })));
    }

    #[test]
    fn delete_is_visible_only_to_later_updates() {
        let (mut db, r) = db_one_relation(1);
        let t = db.insert_by_name("R", &["a"], UpdateId(1));
        let changes = db.apply(&Write::Delete { relation: r, tuple: t }, UpdateId(3)).unwrap();
        assert_eq!(changes.len(), 1);
        assert!(db.visible(r, t, UpdateId(2)).is_some());
        assert!(db.visible(r, t, UpdateId(3)).is_none());
    }

    #[test]
    fn deleting_invisible_tuple_is_noop() {
        let (mut db, r) = db_one_relation(1);
        let t = db.insert_by_name("R", &["a"], UpdateId(5));
        // Writer 2 cannot see the tuple yet: the delete is a no-op.
        let changes = db.apply(&Write::Delete { relation: r, tuple: t }, UpdateId(2)).unwrap();
        assert!(changes.is_empty());
        // Deleting an unknown id is also a no-op.
        let changes =
            db.apply(&Write::Delete { relation: r, tuple: TupleId(999) }, UpdateId(2)).unwrap();
        assert!(changes.is_empty());
    }

    #[test]
    fn null_replacement_rewrites_all_occurrences() {
        let (mut db, r) = db_one_relation(2);
        let x = db.fresh_null();
        db.apply(
            &Write::Insert { relation: r, values: vec![V::Null(x), V::constant("k")] },
            UpdateId(1),
        )
        .unwrap();
        db.apply(
            &Write::Insert { relation: r, values: vec![V::constant("z"), V::Null(x)] },
            UpdateId(1),
        )
        .unwrap();

        let changes = db
            .apply(&Write::NullReplace { null: x, replacement: V::constant("NYC") }, UpdateId(1))
            .unwrap();
        assert_eq!(changes.len(), 2);
        for (_, data) in db.scan(r, UpdateId::OMNISCIENT) {
            assert!(data.iter().all(|v| v.is_const()));
        }
        assert!(db.null_occurrences(x, UpdateId::OMNISCIENT).is_empty());
    }

    #[test]
    fn null_replacement_with_another_null_unifies() {
        let (mut db, r) = db_one_relation(1);
        let x = db.fresh_null();
        let y = db.fresh_null();
        db.apply(&Write::Insert { relation: r, values: vec![V::Null(x)] }, UpdateId(1)).unwrap();
        db.apply(&Write::NullReplace { null: x, replacement: V::Null(y) }, UpdateId(1)).unwrap();
        let occ = db.null_occurrences(y, UpdateId::OMNISCIENT);
        assert_eq!(occ.len(), 1);
        assert!(db.null_occurrences(x, UpdateId::OMNISCIENT).is_empty());
    }

    #[test]
    fn null_occurrence_query_respects_visibility() {
        let (mut db, r) = db_one_relation(1);
        let x = db.fresh_null();
        db.apply(&Write::Insert { relation: r, values: vec![V::Null(x)] }, UpdateId(7)).unwrap();
        assert!(db.null_occurrences(x, UpdateId(3)).is_empty());
        assert_eq!(db.null_occurrences(x, UpdateId(7)).len(), 1);
    }

    #[test]
    fn rollback_removes_an_updates_writes() {
        let (mut db, r) = db_one_relation(1);
        let t1 = db.insert_by_name("R", &["keep"], UpdateId(1));
        let t2 = db.insert_by_name("R", &["mine"], UpdateId(4));
        db.apply(&Write::Delete { relation: r, tuple: t1 }, UpdateId(4)).unwrap();
        assert!(db.visible(r, t1, UpdateId(9)).is_none());

        let vanished = db.rollback_update(UpdateId(4));
        assert_eq!(vanished, vec![t2]);
        assert!(db.visible(r, t1, UpdateId(9)).is_some(), "delete rolled back");
        assert!(db.visible(r, t2, UpdateId(9)).is_none(), "insert rolled back");
        assert!(db.tuple_relation(t2).is_none());
    }

    #[test]
    fn fresh_nulls_are_unique() {
        let (db, _) = db_one_relation(1);
        let a = db.fresh_null();
        let b = db.fresh_null();
        assert_ne!(a, b);
        assert_eq!(db.null_counter(), 2);
    }

    #[test]
    fn candidates_lookup() {
        let (mut db, r) = db_one_relation(2);
        db.insert_by_name("R", &["a", "b"], UpdateId(1));
        db.insert_by_name("R", &["a", "c"], UpdateId(1));
        db.insert_by_name("R", &["d", "c"], UpdateId(1));
        assert_eq!(db.candidates(r, 0, V::constant("a"), UpdateId::OMNISCIENT).len(), 2);
        assert_eq!(db.candidates(r, 1, V::constant("c"), UpdateId::OMNISCIENT).len(), 2);
        assert_eq!(db.candidates(r, 1, V::constant("b"), UpdateId::OMNISCIENT).len(), 1);
    }

    #[test]
    fn apply_all_stamps_sequences() {
        let (mut db, r) = db_one_relation(1);
        let writes = vec![
            Write::Insert { relation: r, values: vec![V::constant("a")] },
            Write::Insert { relation: r, values: vec![V::constant("b")] },
        ];
        let applied = db.apply_all(&writes, UpdateId(2)).unwrap();
        assert_eq!(applied.len(), 2);
        assert!(applied[0].seq < applied[1].seq);
        assert_eq!(applied[0].update, UpdateId(2));
        assert_eq!(applied[1].changes.len(), 1);
    }

    #[test]
    fn apply_all_owned_matches_borrowed_apply_all() {
        let (mut db_a, r) = db_one_relation(1);
        let mut db_b = db_a.clone();
        let writes = vec![
            Write::Insert { relation: r, values: vec![V::constant("a")] },
            Write::Insert { relation: r, values: vec![V::constant("b")] },
        ];
        let borrowed = db_a.apply_all(&writes, UpdateId(2)).unwrap();
        let owned = db_b.apply_all_owned(writes, UpdateId(2)).unwrap();
        assert_eq!(borrowed.len(), owned.len());
        for (x, y) in borrowed.iter().zip(owned.iter()) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.write, y.write);
            assert_eq!(x.changes.len(), y.changes.len());
        }
        assert_eq!(
            db_a.scan(r, UpdateId::OMNISCIENT),
            db_b.scan(r, UpdateId::OMNISCIENT),
            "both entry points must produce identical states"
        );
    }

    #[test]
    fn relation_epochs_track_writes_per_relation() {
        let mut db = Database::new();
        let r = db.add_relation("R", ["a", "b"]).unwrap();
        let s = db.add_relation("S", ["a"]).unwrap();
        assert_eq!(db.relation_epoch(r), 0);
        assert_eq!(db.relation_epoch(s), 0);

        let x = db.fresh_null();
        db.apply(
            &Write::Insert { relation: r, values: vec![V::Null(x), V::constant("k")] },
            UpdateId(1),
        )
        .unwrap();
        db.apply(&Write::Insert { relation: s, values: vec![V::Null(x)] }, UpdateId(1)).unwrap();
        assert_eq!(db.relation_epoch(r), 1);
        assert_eq!(db.relation_epoch(s), 1);

        // A null-replacement rewrites tuples in both relations: both epochs move.
        db.apply(&Write::NullReplace { null: x, replacement: V::constant("v") }, UpdateId(1))
            .unwrap();
        assert_eq!(db.relation_epoch(r), 2);
        assert_eq!(db.relation_epoch(s), 2);

        // A no-op write (deleting an invisible tuple) moves nothing.
        db.apply(&Write::Delete { relation: s, tuple: TupleId(999) }, UpdateId(1)).unwrap();
        assert_eq!(db.relation_epoch(s), 2);

        // Rollback mutates exactly the relations the update touched.
        db.insert_by_name("S", &["w"], UpdateId(7));
        assert_eq!(db.relation_epoch(s), 3);
        db.rollback_update(UpdateId(7));
        assert_eq!(db.relation_epoch(s), 4);
        assert_eq!(db.relation_epoch(r), 2);
        // Unknown relations report epoch 0.
        assert_eq!(db.relation_epoch(RelationId(55)), 0);
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let mut db = Database::new();
        let w = Write::Insert { relation: RelationId(3), values: vec![V::constant("a")] };
        assert!(matches!(db.apply(&w, UpdateId(0)), Err(StorageError::UnknownRelation(_))));
        assert!(db.scan(RelationId(3), UpdateId(0)).is_empty());
        assert!(db.version_store().relation(RelationId(3)).is_none());
        assert_eq!(db.version_store().relation_count(), 0);
    }
}
