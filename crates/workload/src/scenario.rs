//! The "million-user day" survival scenario: an open-loop, fault-injected
//! stress run of the admission-QoS and frontier-lifecycle machinery.
//!
//! Thousands of identified clients submit a skewed workload through a
//! saturation-capped inline [`ExchangeEngine`] at Poisson arrival times,
//! while the simulated human answerers misbehave: a [`SlowResolver`] answers
//! only requests that have already waited, and an [`AbandoningResolver`]
//! never answers some of them at all. The engine survives on its own
//! robustness features — fair-share admission turns overload into typed
//! `retry_after` backpressure, and the [`EscalationPolicy::AutoResolve`]
//! sweeper answers whatever the humans abandoned — so the day ends with
//! bounded queues, zero permanently-stuck updates and a measurable latency
//! tail ([`ScenarioReport::latency`], in virtual ticks).

use std::collections::VecDeque;

use youtopia_concurrency::{
    AnswerOutcome, ClientId, EngineBuilder, ExchangeEngine, Priority, RunMetrics, SubmitError,
    UpdateHandle, UpdateStatus, ViolationStateMode,
};
use youtopia_core::{
    AutoDecision, ChaseError, EscalationPolicy, FrontierDecision, FrontierResolver, InitialOp,
    PendingFrontier, RandomResolver,
};
use youtopia_mappings::satisfies_all;
use youtopia_storage::{DataView, UpdateId};

use crate::config::{poisson_arrival_ticks, ExperimentConfig, WorkloadKind};
use crate::experiment::build_fixture;
use crate::report::LatencySummary;
use crate::update_gen::generate_workload;

/// A pull-based answering strategy that, unlike [`FrontierResolver`], may
/// *defer* or *abandon* a request instead of deciding it — the shape fault
/// injection needs. Implementations see the whole [`PendingFrontier`]
/// (including its sweep age and escalation count), not just the question.
pub trait FaultInjectingResolver {
    /// Produces a decision for `pf`, or `None` to leave it pending.
    fn consider(&mut self, view: &dyn DataView, pf: &PendingFrontier) -> Option<FrontierDecision>;

    /// One answering pass: offers every currently pending frontier to
    /// [`consider`](Self::consider) and applies the decisions it returns.
    /// Returns how many were applied (stale tokens are skipped). A single
    /// pass, not a drain — deferred requests stay pending until a later
    /// tick's poll or the engine's own escalation sweeper gets them.
    fn poll(&mut self, engine: &ExchangeEngine) -> Result<usize, ChaseError> {
        let mut answered = 0usize;
        for pf in engine.pending_frontiers() {
            let decision = engine.read(|db| self.consider(&db.snapshot(pf.update), &pf));
            if let Some(decision) = decision {
                if engine.answer(pf.token, decision)? == AnswerOutcome::Applied {
                    answered += 1;
                }
            }
        }
        Ok(answered)
    }
}

/// Fault injection: a human who answers **late**. Requests younger than
/// `delay` sweeps are deferred; once a request has aged past the threshold,
/// the inner resolver decides it. With `delay` below the engine's escalation
/// deadline, slow humans still beat the auto-resolver — only truly abandoned
/// requests fall through to the system.
pub struct SlowResolver<R> {
    delay: u64,
    inner: R,
}

impl<R: FrontierResolver> SlowResolver<R> {
    /// Answers with `inner` once a request's sweep age reaches `delay`.
    pub fn new(delay: u64, inner: R) -> SlowResolver<R> {
        SlowResolver { delay, inner }
    }
}

impl<R: FrontierResolver> FaultInjectingResolver for SlowResolver<R> {
    fn consider(&mut self, view: &dyn DataView, pf: &PendingFrontier) -> Option<FrontierDecision> {
        if pf.age < self.delay {
            return None;
        }
        Some(self.inner.resolve(view, &pf.request))
    }
}

/// Fault injection: a human who **never comes back** for some requests.
/// Every token congruent to `0` modulo `every` is abandoned outright
/// (deterministic, so runs are reproducible); the rest pass through to the
/// wrapped strategy. Abandoned requests are exactly what
/// [`EscalationPolicy::AutoResolve`] exists for — without it they would
/// block their updates forever.
pub struct AbandoningResolver<F> {
    every: u64,
    inner: F,
}

impl<F: FaultInjectingResolver> AbandoningResolver<F> {
    /// Abandons every `every`-th token (`0` disables abandonment).
    pub fn new(every: u64, inner: F) -> AbandoningResolver<F> {
        AbandoningResolver { every, inner }
    }
}

impl<F: FaultInjectingResolver> FaultInjectingResolver for AbandoningResolver<F> {
    fn consider(&mut self, view: &dyn DataView, pf: &PendingFrontier) -> Option<FrontierDecision> {
        if self.every != 0 && pf.token.0 % self.every == 0 {
            return None;
        }
        self.inner.consider(view, pf)
    }
}

/// Parameters of the survival scenario.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Fixture and workload parameters (`workload_updates` is the day's total
    /// submission count; the workload itself is [`WorkloadKind::Skewed`]).
    pub experiment: ExperimentConfig,
    /// Number of distinct identified clients the updates are spread over.
    pub clients: usize,
    /// Expected arrivals per virtual tick (the open-loop Poisson rate).
    pub rate: f64,
    /// Global admission cap — chosen low enough that the arrival rate
    /// saturates it, so fair-share backpressure actually engages.
    pub admission_cap: usize,
    /// Sweeps before an unanswered request is auto-resolved by the system.
    pub escalate_after: u64,
    /// Sweeps before the slow human answers ([`SlowResolver`]); keep below
    /// `escalate_after` so humans win on requests they do answer.
    pub answer_delay: u64,
    /// Every `abandon_every`-th token is never humanly answered
    /// ([`AbandoningResolver`]).
    pub abandon_every: u64,
    /// Safety valve on the tick loop; reaching it means something is stuck.
    pub max_ticks: usize,
    /// Violation-state mode of the day's engine: the engine-shared violation
    /// index ([`ViolationStateMode::Shared`], the production default — what
    /// the CI stress lane runs) or the per-update differential baseline.
    pub violation_state: ViolationStateMode,
}

impl ScenarioConfig {
    /// The CI-sized scenario: the same dynamics at one-core scale (a couple
    /// of seconds), used by the stress lane.
    pub fn scaled() -> ScenarioConfig {
        let mut experiment = ExperimentConfig::tiny();
        experiment.workload_updates = 120;
        ScenarioConfig {
            experiment,
            clients: 48,
            rate: 8.0,
            admission_cap: 6,
            escalate_after: 4,
            answer_delay: 2,
            abandon_every: 4,
            max_ticks: 10_000,
            violation_state: ViolationStateMode::Shared,
        }
    }

    /// The full-scale day: thousands of clients over a larger fixture. Run
    /// via the `#[ignore]`d test (`cargo test -- --ignored million`) — it
    /// takes minutes, not seconds.
    pub fn full() -> ScenarioConfig {
        let mut experiment = ExperimentConfig::quick();
        experiment.workload_updates = 2_000;
        ScenarioConfig {
            experiment,
            clients: 2_500,
            rate: 6.0,
            admission_cap: 32,
            escalate_after: 6,
            answer_delay: 3,
            abandon_every: 7,
            max_ticks: 200_000,
            violation_state: ViolationStateMode::Shared,
        }
    }
}

/// What a scenario run observed.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Updates submitted (and eventually admitted) over the day.
    pub submitted: usize,
    /// Saturation rejections along the way; every rejected submission was
    /// retried after its `retry_after` hint and eventually admitted.
    pub rejections: usize,
    /// Updates observed terminal (terminated or failed) by the end.
    pub completed: usize,
    /// Updates that failed terminally (step budget); zero in a healthy run.
    pub failed: usize,
    /// Updates still in flight when the loop ended — **must** be zero, or
    /// the scenario found a permanently-stuck update.
    pub stuck: usize,
    /// Frontier requests still pending at the end (must be zero).
    pub pending_at_end: usize,
    /// High-water mark of the pending-frontier queue (bounded by the
    /// admission cap: each in-flight update blocks on at most one request).
    pub max_pending_frontiers: usize,
    /// High-water mark of *admitted* in-flight updates — submissions the
    /// admission controller let through that had not yet terminated. Bounded
    /// by the admission cap (Rule 0 admits only while `active + n <= cap`).
    pub max_admitted: usize,
    /// High-water mark of the engine's live update count: admitted updates
    /// plus cascading-abort revivals. A delete cascade may revive already-
    /// terminated updates for repair — those bypass admission (refusing a
    /// repair would sacrifice consistency), so this can transiently exceed
    /// the cap while the revived tail re-runs.
    pub max_active: usize,
    /// Virtual ticks the day took.
    pub ticks: usize,
    /// Submission-to-completion latency percentiles, in ticks.
    pub latency: LatencySummary,
    /// The engine's final metrics (auto-resolutions, frontier ops, …).
    pub metrics: RunMetrics,
    /// Whether the final database satisfied every mapping.
    pub consistent: bool,
}

/// Runs the survival scenario: per virtual tick, submit the tick's Poisson
/// arrivals (and any matured retries) as identified clients, drive the
/// inline engine until it blocks, let the faulty humans answer what they
/// deign to, and run one lifecycle sweep. The loop ends when every update
/// ever submitted is terminal and nothing is pending — or at
/// [`ScenarioConfig::max_ticks`], which the caller should treat as failure
/// (see [`ScenarioReport::stuck`]).
pub fn run_million_user_day(sc: &ScenarioConfig) -> Result<ScenarioReport, ChaseError> {
    sc.experiment.validate().map_err(ChaseError::InvalidDecision)?;
    let fixture = build_fixture(&sc.experiment)?;
    let ops = generate_workload(
        &sc.experiment,
        &fixture.schema,
        &fixture.initial_db,
        &fixture.mappings,
        WorkloadKind::Skewed,
        sc.experiment.seed ^ 0xDA4,
    );
    let submitted_total = ops.len();
    let arrivals = poisson_arrival_ticks(ops.len(), sc.rate, sc.experiment.seed ^ 0x0DAE);

    let engine = EngineBuilder::new()
        .inline()
        .admission_cap(sc.admission_cap)
        .first_update_number(sc.experiment.initial_tuples as u64 + 1_000)
        .violation_state(sc.violation_state)
        .escalation(EscalationPolicy::AutoResolve {
            after: sc.escalate_after,
            decision: AutoDecision::ExpandOrDeleteFirst,
        })
        .build(fixture.initial_db.clone(), fixture.mappings.clone())
        .expect("non-durable engines build infallibly");
    let mut resolver = AbandoningResolver::new(
        sc.abandon_every,
        SlowResolver::new(sc.answer_delay, RandomResolver::seeded(sc.experiment.seed ^ 0x51)),
    );

    // Each update belongs to a client (round-robin) whose priority tier is a
    // fixed function of its identity: every fourth client is latency
    // sensitive, every fourth is background, the rest are normal.
    let clients = sc.clients.max(1) as u64;
    let mut incoming: VecDeque<(u64, InitialOp, ClientId, Priority)> = ops
        .into_iter()
        .enumerate()
        .map(|(i, op)| {
            let client = ClientId(i as u64 % clients);
            let priority = match client.0 % 4 {
                0 => Priority::High,
                3 => Priority::Low,
                _ => Priority::Normal,
            };
            (arrivals[i], op, client, priority)
        })
        .collect();

    // Rejected submissions honour the backoff contract: a retry waits until
    // `retry_after.completions` more updates have been observed terminal.
    let mut retries: VecDeque<(usize, InitialOp, ClientId, Priority)> = VecDeque::new();
    let mut inflight: Vec<(UpdateHandle, usize)> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut rejections = 0usize;
    let mut max_pending = 0usize;
    let mut max_admitted = 0usize;
    let mut max_active = 0usize;
    let mut tick = 0usize;

    while tick < sc.max_ticks {
        // 1. Submissions: matured retries first (they have waited), then the
        // tick's fresh arrivals. A retry matures when the promised number of
        // completions has been observed — or when the engine has gone idle,
        // the other half of the documented backoff contract (a "wait one
        // completion" hint can never be satisfied while nothing is in
        // flight, e.g. a starvation reservation held against an empty
        // engine; real clients poll `active_updates` for exactly this).
        let idle = engine.active_updates() == 0;
        let mut to_submit: Vec<(InitialOp, ClientId, Priority)> = Vec::new();
        retries = retries
            .into_iter()
            .filter_map(|(due, op, client, priority)| {
                if due <= completed || idle {
                    to_submit.push((op, client, priority));
                    None
                } else {
                    Some((due, op, client, priority))
                }
            })
            .collect();
        while incoming.front().is_some_and(|&(at, ..)| at as usize <= tick) {
            let (_, op, client, priority) = incoming.pop_front().expect("checked front");
            to_submit.push((op, client, priority));
        }
        for (op, client, priority) in to_submit {
            match engine.submit_as(op.clone(), client, priority) {
                Ok(handle) => inflight.push((handle, tick)),
                Err(SubmitError::Saturated { retry_after, .. }) => {
                    rejections += 1;
                    retries.push_back((completed + retry_after.completions, op, client, priority));
                }
                Err(e) => return Err(ChaseError::InvalidDecision(e.to_string())),
            }
        }

        // 2. Chase until idle or blocked; 3. faulty humans answer; 4. sweep.
        engine.drive()?;
        resolver.poll(&engine)?;
        engine.drive()?;
        let swept = engine.sweep();
        if !swept.auto_resolved.is_empty() {
            engine.drive()?;
        }

        // 5. Bookkeeping: queue high-water marks and completion latencies.
        max_pending = max_pending.max(engine.pending_frontiers().len());
        max_admitted = max_admitted.max(inflight.len());
        max_active = max_active.max(engine.active_updates());
        inflight.retain(|(handle, submitted)| match handle.status() {
            UpdateStatus::Terminated | UpdateStatus::Failed => {
                completed += 1;
                if handle.status() == UpdateStatus::Failed {
                    failed += 1;
                }
                latencies.push((tick - submitted) as f64);
                false
            }
            UpdateStatus::Running | UpdateStatus::AwaitingFrontier => true,
        });

        tick += 1;
        if incoming.is_empty() && retries.is_empty() && inflight.is_empty() && engine.is_quiescent()
        {
            break;
        }
    }

    let stuck = inflight.len() + retries.len() + incoming.len();
    let pending_at_end = engine.pending_frontiers().len();
    let consistent =
        engine.read(|db| satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), engine.mappings()));
    let (_db, _mappings, metrics) = engine.shutdown();
    Ok(ScenarioReport {
        submitted: submitted_total,
        rejections,
        completed,
        failed,
        stuck,
        pending_at_end,
        max_pending_frontiers: max_pending,
        max_admitted,
        max_active,
        ticks: tick,
        latency: LatencySummary::from_samples(&latencies),
        metrics,
        consistent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_survived(sc: &ScenarioConfig, report: &ScenarioReport) {
        assert_eq!(report.stuck, 0, "no update may be permanently stuck: {report:?}");
        assert_eq!(report.pending_at_end, 0, "no frontier may outlive the day");
        assert_eq!(report.completed, report.submitted, "every admitted update must finish");
        assert_eq!(report.failed, 0, "no step-budget casualties expected");
        assert!(report.consistent, "the surviving database must satisfy the mappings");
        assert!(report.ticks < sc.max_ticks, "the day must actually end");
        assert!(
            report.max_admitted <= sc.admission_cap,
            "admission must bound admitted in-flight updates: {} > {}",
            report.max_admitted,
            sc.admission_cap
        );
        // `max_active` may exceed the cap (cascading aborts revive terminated
        // updates for repair, outside admission) but never the day's total.
        assert!(report.max_active >= report.max_admitted);
        assert!(report.max_active <= report.submitted);
        assert!(
            report.max_pending_frontiers <= sc.admission_cap,
            "each in-flight update blocks on at most one request"
        );
        assert!(report.latency.p50 <= report.latency.p95);
        assert!(report.latency.p95 <= report.latency.p99);
    }

    #[test]
    fn scaled_million_user_day_survives() {
        let sc = ScenarioConfig::scaled();
        let report = run_million_user_day(&sc).unwrap();
        assert_survived(&sc, &report);
        // The scenario must actually exercise its subject matter: overload
        // (typed rejections, retried to admission) and abandonment (system
        // auto-resolutions on the sweeper's deadline).
        assert!(report.rejections > 0, "the cap must saturate: {report:?}");
        assert!(report.metrics.frontier_ops > 0, "the workload must block on frontiers");
        assert!(report.metrics.auto_resolutions > 0, "abandoned requests must escalate");
    }

    #[test]
    fn scaled_day_is_identical_under_the_shared_index() {
        // The whole fault-injected day — overload, retries, abandonment,
        // cascades — replayed under the per-update baseline must match the
        // shared-index run tick for tick: the index changes where detection
        // state lives, never what any update does.
        let shared = ScenarioConfig::scaled();
        let mut per_update = ScenarioConfig::scaled();
        per_update.violation_state = ViolationStateMode::PerUpdate;
        let a = run_million_user_day(&shared).unwrap();
        let b = run_million_user_day(&per_update).unwrap();
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.rejections, b.rejections);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.metrics.steps, b.metrics.steps);
        assert_eq!(a.metrics.aborts, b.metrics.aborts);
        assert_eq!(a.metrics.auto_resolutions, b.metrics.auto_resolutions);
    }

    #[test]
    fn scenario_runs_are_reproducible() {
        let sc = ScenarioConfig::scaled();
        let a = run_million_user_day(&sc).unwrap();
        let b = run_million_user_day(&sc).unwrap();
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.rejections, b.rejections);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.metrics.auto_resolutions, b.metrics.auto_resolutions);
        assert_eq!(a.metrics.steps, b.metrics.steps);
    }

    #[test]
    #[ignore = "full-scale million-user day (minutes); cargo test -- --ignored"]
    fn full_million_user_day_survives() {
        let sc = ScenarioConfig::full();
        let report = run_million_user_day(&sc).unwrap();
        assert_survived(&sc, &report);
        assert!(report.rejections > 0);
        assert!(report.metrics.auto_resolutions > 0);
    }
}
