//! Micro-benchmarks for the durability layer: WAL append (including the
//! per-record fsync the engine pays on every submit/answer), log parsing on
//! the recovery path, and database snapshot serialization.

use std::path::PathBuf;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use youtopia_storage::wal::{deserialize_database, read_wal, serialize_database, WalWriter};
use youtopia_storage::{Database, NullId, UpdateId, Value, Write};

/// A scratch path under the system temp dir, unique per call.
fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("youtopia-bench-wal-{}-{tag}-{n}.log", std::process::id()))
}

fn populated(rows: usize) -> Database {
    let mut db = Database::new();
    db.add_relation("R", ["a", "b", "c"]).unwrap();
    let rel = db.relation_id("R").unwrap();
    for i in 0..rows {
        db.apply(
            &Write::Insert {
                relation: rel,
                values: vec![
                    Value::constant(&format!("k{}", i % 50)),
                    Value::constant(&format!("v{i}")),
                    Value::Null(NullId(i as u64)),
                ],
            },
            UpdateId(1 + (i % 7) as u64),
        )
        .unwrap();
    }
    db
}

/// The cost of one durable acknowledgement: a checksummed, length-prefixed,
/// fsynced append — what every `submit`/`answer` pays before returning.
fn bench_append(c: &mut Criterion) {
    let payload = vec![0xA5u8; 64];
    let path = scratch("append");
    let mut writer = WalWriter::create(&path).unwrap();
    c.bench_function("wal/append_fsync_64b", |b| {
        b.iter(|| {
            writer.append(black_box(&payload)).unwrap();
            black_box(writer.position())
        })
    });
    drop(writer);
    let _ = std::fs::remove_file(&path);
}

/// The recovery-path read: parse and checksum-verify a whole log.
fn bench_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal/read");
    for records in [100usize, 1_000] {
        let path = scratch("read");
        let mut writer = WalWriter::create(&path).unwrap();
        let payload = vec![0x5Au8; 64];
        for _ in 0..records {
            writer.append(&payload).unwrap();
        }
        drop(writer);
        group.bench_with_input(BenchmarkId::from_parameter(records), &records, |b, _| {
            b.iter(|| black_box(read_wal(&path).unwrap().records.len()))
        });
        let _ = std::fs::remove_file(&path);
    }
    group.finish();
}

/// Snapshot cost, both directions: what a quiescence point pays to fold the
/// log away, and what recovery pays to load it back.
fn bench_snapshot(c: &mut Criterion) {
    let db = populated(2_000);
    let bytes = serialize_database(&db);
    let mut group = c.benchmark_group("wal/snapshot_2k_tuples");
    group.bench_function("serialize", |b| b.iter(|| black_box(serialize_database(&db).len())));
    group.bench_function("deserialize", |b| {
        b.iter(|| black_box(deserialize_database(&bytes).unwrap().null_counter()))
    });
    group.finish();
}

criterion_group!(benches, bench_append, bench_read, bench_snapshot);
criterion_main!(benches);
