//! Error types for the mappings layer.

use std::fmt;

/// Errors raised while constructing or parsing mappings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MappingError {
    /// A tgd must have at least one atom on its left-hand side.
    EmptyLhs(String),
    /// A tgd must have at least one atom on its right-hand side.
    EmptyRhs(String),
    /// An atom's arity does not match its relation's schema.
    AtomArityMismatch {
        /// Mapping name.
        mapping: String,
        /// Relation name.
        relation: String,
        /// Arity expected by the catalog.
        expected: usize,
        /// Arity written in the atom.
        actual: usize,
    },
    /// The parser encountered an unknown relation name.
    UnknownRelation(String),
    /// A syntax error with a human-readable explanation.
    Parse(String),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::EmptyLhs(name) => write!(f, "mapping `{name}` has an empty left-hand side"),
            MappingError::EmptyRhs(name) => write!(f, "mapping `{name}` has an empty right-hand side"),
            MappingError::AtomArityMismatch { mapping, relation, expected, actual } => write!(
                f,
                "mapping `{mapping}`: relation `{relation}` has arity {expected}, atom has {actual} terms"
            ),
            MappingError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            MappingError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for MappingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_offender() {
        assert!(MappingError::EmptyLhs("m".into()).to_string().contains('m'));
        assert!(MappingError::EmptyRhs("m".into()).to_string().contains('m'));
        assert!(MappingError::UnknownRelation("Zed".into()).to_string().contains("Zed"));
        assert!(MappingError::Parse("oops".into()).to_string().contains("oops"));
        let e = MappingError::AtomArityMismatch {
            mapping: "σ1".into(),
            relation: "S".into(),
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("arity 3"));
    }
}
