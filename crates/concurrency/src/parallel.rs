//! The batch façade of the multi-threaded chase scheduler: [`ParallelRun`].
//!
//! Since the [`ExchangeEngine`] redesign, `ParallelRun`
//! is a thin adapter: it takes a batch of updates up front — the shape the
//! Section 6 experiments and the differential suites want — and internally
//! boots an engine, submits the whole batch atomically, drains the engine's
//! pull-based frontier queue through the caller's [`FrontierResolver`] via a
//! [`ResolverPump`], and tears the engine down when the
//! batch is done. All scheduling semantics (sharded run queues, two-phase
//! steps, striped logs, owner-performed aborts, deterministic sequencer vs
//! free running) live in the engine; see its module docs.
//!
//! Two properties worth naming:
//!
//! * **Deterministic mode is still byte-identical to
//!   [`ConcurrentRun`](crate::ConcurrentRun)** at any worker count: a batch
//!   submitted to an idle deterministic engine chases in the reference
//!   round-robin order, and the pump answers each published frontier at
//!   exactly the point in the round where the reference consulted its
//!   resolver (`tests/scheduler_equivalence.rs`, `tests/determinism.rs`).
//! * **Repeated [`run`](ParallelRun::run) calls are safe.** The resolver used
//!   to be re-passed per call while frontier state lived inside the run; the
//!   engine (and its frontier queue) now lives and dies *within* one `run`
//!   call, so a second call can never observe a stale frontier queue — it
//!   just reports the finished batch's metrics again.

use std::time::Instant;

use youtopia_core::{ChaseError, FrontierResolver, InitialOp, UpdateStats};
use youtopia_mappings::MappingSet;
use youtopia_storage::{Database, UpdateId};

use crate::engine::{EngineConfig, ExchangeEngine, ResolverPump};
use crate::metrics::RunMetrics;
use crate::scheduler::SchedulerConfig;

/// A worker-pool execution of a batch of updates over one shared database.
///
/// Mirrors the [`ConcurrentRun`](crate::ConcurrentRun) API; the execution
/// model is the [`ExchangeEngine`]'s, configured by
/// [`SchedulerConfig::workers`] / [`SchedulerConfig::deterministic`].
pub struct ParallelRun {
    db: Option<Database>,
    mappings: Option<MappingSet>,
    ops: Vec<InitialOp>,
    first_number: u64,
    config: SchedulerConfig,
    metrics: RunMetrics,
    stats: Vec<(UpdateId, UpdateStats)>,
    ran: bool,
    /// Terminal error of a failed run; replayed by later `run()` calls so a
    /// retry can never turn a failed batch into an `Ok` with partial metrics.
    failed: Option<ChaseError>,
}

impl ParallelRun {
    /// Creates a run over `db` for the given initial operations, with update
    /// numbers assigned in submission order from `first_update_number` — the
    /// same contract as [`ConcurrentRun::new`](crate::ConcurrentRun::new).
    pub fn new(
        db: Database,
        mappings: MappingSet,
        ops: Vec<InitialOp>,
        first_update_number: u64,
        config: SchedulerConfig,
    ) -> ParallelRun {
        let stats = ops
            .iter()
            .enumerate()
            .map(|(i, _)| (UpdateId(first_update_number + i as u64), UpdateStats::default()))
            .collect();
        let metrics = RunMetrics { workload_size: ops.len(), ..RunMetrics::default() };
        ParallelRun {
            db: Some(db),
            mappings: Some(mappings),
            ops,
            first_number: first_update_number,
            config,
            metrics,
            stats,
            ran: false,
            failed: None,
        }
    }

    /// The metrics collected so far (final metrics once [`Self::run`] has
    /// returned).
    pub fn metrics(&self) -> RunMetrics {
        self.metrics.clone()
    }

    /// Runs a closure over the database (e.g. to inspect the final state
    /// after [`Self::run`]).
    pub fn with_database<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(self.db.as_ref().expect("database is owned between runs"))
    }

    /// Consumes the run, returning the database, mappings and metrics.
    pub fn into_parts(self) -> (Database, MappingSet, RunMetrics) {
        (
            self.db.expect("database is owned between runs"),
            self.mappings.expect("mappings are owned between runs"),
            self.metrics,
        )
    }

    /// Per-update execution statistics (zeroed before the run, final after).
    pub fn update_stats(&self) -> Vec<(UpdateId, UpdateStats)> {
        self.stats.clone()
    }

    /// Runs the batch to termination on an engine worker pool, consulting
    /// `resolver` for frontier operations (on the calling thread — the
    /// resolver no longer needs to be `Send`), and returns the collected
    /// metrics. A second call is a no-op that reports the same metrics: the
    /// engine and its frontier queue live only inside one `run` call, so no
    /// stale frontier state can carry over.
    pub fn run(&mut self, resolver: &mut dyn FrontierResolver) -> Result<RunMetrics, ChaseError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if self.ran {
            return Ok(self.metrics.clone());
        }
        let start = Instant::now();
        let engine = ExchangeEngine::new(
            self.db.take().expect("database is owned between runs"),
            self.mappings.take().expect("mappings are owned between runs"),
            EngineConfig::default()
                .with_scheduler(self.config)
                .with_first_update_number(self.first_number),
        );
        let ops = std::mem::take(&mut self.ops);
        let result = match engine.submit_batch(ops) {
            // Admission is uncapped here, so submission only fails after a
            // fatal engine error — surfaced below like any other.
            Err(e) => Err(ChaseError::InvalidDecision(e.to_string())),
            Ok(_handles) => ResolverPump::new(&engine, resolver).run_until_quiescent(),
        };
        self.stats = engine.update_stats();
        let (db, mappings, mut metrics) = engine.shutdown();
        self.db = Some(db);
        self.mappings = Some(mappings);
        metrics.wall_time = start.elapsed();
        self.metrics = metrics;
        self.ran = true;
        if let Err(e) = &result {
            self.failed = Some(e.clone());
        }
        result.map(|()| self.metrics.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::TrackerKind;
    use crate::scheduler::{ConcurrentRun, SchedulingPolicy};
    use youtopia_core::{InitialOp, RandomResolver};
    use youtopia_mappings::satisfies_all;
    use youtopia_storage::Value;
    fn example_db() -> (Database, MappingSet) {
        let mut db = Database::new();
        db.add_relation("A", ["location", "name"]).unwrap();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        db.add_relation("V", ["city", "convention"]).unwrap();
        db.add_relation("E", ["convention", "attraction"]).unwrap();
        let mut mappings = MappingSet::new();
        mappings
            .add_parsed_many(
                db.catalog(),
                "
                sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
                sigma4: V(cv, x) & T(n, c, cv) -> E(x, n)
                ",
            )
            .unwrap();
        let u = UpdateId(0);
        db.insert_by_name("A", &["Geneva", "Geneva Winery"], u);
        db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], u);
        db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], u);
        db.insert_by_name("V", &["Syracuse", "Science Conf"], u);
        db.insert_by_name("E", &["Science Conf", "Geneva Winery"], u);
        (db, mappings)
    }

    fn example_ops(db: &Database) -> Vec<InitialOp> {
        let r = db.relation_id("R").unwrap();
        let v = db.relation_id("V").unwrap();
        let review = db
            .scan(r, UpdateId::OMNISCIENT)
            .into_iter()
            .find(|(_, d)| d[0] == Value::constant("XYZ"))
            .map(|(id, _)| id)
            .unwrap();
        let mut ops = vec![
            InitialOp::Delete { relation: r, tuple: review },
            InitialOp::Insert {
                relation: v,
                values: vec![Value::constant("Syracuse"), Value::constant("Math Conf")],
            },
        ];
        for i in 0..4 {
            ops.push(InitialOp::Insert {
                relation: v,
                values: vec![Value::constant("Syracuse"), Value::constant(&format!("Conf{i}"))],
            });
        }
        ops
    }

    /// Byte-exact rendering of the database contents for equality checks.
    fn render(db: &Database) -> String {
        let mut out = String::new();
        for name in ["A", "T", "R", "V", "E"] {
            let rel = db.relation_id(name).unwrap();
            out.push_str(&format!("{name}: {:?}\n", db.scan(rel, UpdateId::OMNISCIENT)));
        }
        out.push_str(&format!("nulls: {}\n", db.null_counter()));
        out
    }

    fn scrub(mut m: RunMetrics) -> RunMetrics {
        // Speculation counters measure *pre*-execution attempts, which vary
        // with worker timing; everything actually committed must match.
        m.wall_time = std::time::Duration::ZERO;
        m.speculations_started = 0;
        m.speculations_committed = 0;
        m.speculations_discarded = 0;
        m
    }

    #[test]
    fn deterministic_mode_is_byte_identical_to_concurrent_run_at_any_worker_count() {
        let (db, mappings) = example_db();
        for tracker in TrackerKind::all() {
            let config =
                SchedulerConfig { tracker, frontier_delay_rounds: 3, ..SchedulerConfig::default() };
            let mut reference =
                ConcurrentRun::new(db.clone(), mappings.clone(), example_ops(&db), 1, config);
            let ref_metrics = reference.run(&mut RandomResolver::seeded(5)).unwrap();
            let ref_stats = reference.update_stats();
            let (ref_db, _, _) = reference.into_parts();

            for workers in [1usize, 2, 4] {
                let par_config = SchedulerConfig { workers, deterministic: true, ..config };
                let mut run =
                    ParallelRun::new(db.clone(), mappings.clone(), example_ops(&db), 1, par_config);
                let metrics = run.run(&mut RandomResolver::seeded(5)).unwrap();
                assert_eq!(
                    scrub(metrics),
                    scrub(ref_metrics.clone()),
                    "{tracker}, {workers} workers: metrics must match the reference"
                );
                assert_eq!(run.update_stats(), ref_stats, "{tracker}, {workers} workers");
                let (par_db, _, _) = run.into_parts();
                assert_eq!(render(&par_db), render(&ref_db), "{tracker}, {workers} workers");
            }
        }
    }

    #[test]
    fn free_running_mode_leaves_a_consistent_database() {
        let mut db = Database::new();
        db.add_relation("C", ["city"]).unwrap();
        db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        let mut mappings = MappingSet::new();
        mappings
            .add_parsed_many(
                db.catalog(),
                "
                sigma1: C(c) -> exists a, l. S(a, l, c)
                sigma2: S(a, c, c2) -> C(c) & C(c2)
                ",
            )
            .unwrap();
        let c = db.relation_id("C").unwrap();
        let ops: Vec<InitialOp> = (0..12)
            .map(|i| InitialOp::Insert {
                relation: c,
                values: vec![Value::constant(&format!("City{i}"))],
            })
            .collect();
        for tracker in TrackerKind::all() {
            let config = SchedulerConfig {
                tracker,
                workers: 3,
                deterministic: false,
                ..SchedulerConfig::default()
            };
            let mut run = ParallelRun::new(db.clone(), mappings.clone(), ops.clone(), 1, config);
            let metrics = run.run(&mut RandomResolver::seeded(17)).unwrap();
            assert_eq!(metrics.workload_size, 12);
            assert!(metrics.steps >= 12);
            let stats = run.update_stats();
            assert!(stats.iter().all(|(_, s)| s.steps > 0), "every update must have run");
            let (final_db, mappings, _) = run.into_parts();
            assert!(
                satisfies_all(&final_db.snapshot(UpdateId::OMNISCIENT), &mappings),
                "{tracker}: final database must satisfy all mappings"
            );
            assert!(final_db.visible_count(c, UpdateId::OMNISCIENT) >= 12);
        }
    }

    #[test]
    fn free_running_with_interference_repairs_premature_reads() {
        // The Example 3.1 scenario under free-running: whatever interleaving
        // the OS produces, every surviving excursion must be backed by a
        // still-existing tour.
        let (db, mappings) = example_db();
        for seed in 0..4u64 {
            let config = SchedulerConfig {
                tracker: TrackerKind::Precise,
                workers: 4,
                deterministic: false,
                ..SchedulerConfig::default()
            };
            let mut run =
                ParallelRun::new(db.clone(), mappings.clone(), example_ops(&db), 1, config);
            let metrics = run.run(&mut RandomResolver::seeded(seed)).unwrap();
            assert!(metrics.steps > 0);
            let (final_db, mappings, _) = run.into_parts();
            let snap = final_db.snapshot(UpdateId::OMNISCIENT);
            assert!(satisfies_all(&snap, &mappings), "seed {seed}");
            let e = final_db.relation_id("E").unwrap();
            let t = final_db.relation_id("T").unwrap();
            let tours = final_db.scan(t, UpdateId::OMNISCIENT);
            // Only the excursions the *workload's* convention inserts caused:
            // the seed excursion may legitimately outlive the tour (σ4 never
            // requires RHS cleanup), exactly as in the reference test.
            for (_, excursion) in final_db.scan(e, UpdateId::OMNISCIENT) {
                if excursion[0] == Value::constant("Science Conf") {
                    continue;
                }
                assert!(
                    tours.iter().any(|(_, tour)| tour[0] == excursion[1]),
                    "seed {seed}: excursion {excursion:?} must be backed by an existing tour"
                );
            }
        }
    }

    #[test]
    fn step_limit_guards_both_modes() {
        let (db, mappings) = example_db();
        for deterministic in [true, false] {
            let config = SchedulerConfig {
                max_total_steps: 1,
                workers: 2,
                deterministic,
                ..SchedulerConfig::default()
            };
            let mut run =
                ParallelRun::new(db.clone(), mappings.clone(), example_ops(&db), 1, config);
            let result = run.run(&mut RandomResolver::seeded(2));
            assert!(
                matches!(result, Err(ChaseError::StepLimitExceeded { .. })),
                "deterministic={deterministic}"
            );
        }
    }

    #[test]
    fn stratum_policy_terminates_in_both_modes() {
        let (db, mappings) = example_db();
        for deterministic in [true, false] {
            let config = SchedulerConfig {
                policy: SchedulingPolicy::StratumRoundRobin,
                workers: 2,
                deterministic,
                ..SchedulerConfig::default()
            };
            let mut run =
                ParallelRun::new(db.clone(), mappings.clone(), example_ops(&db), 1, config);
            let metrics = run.run(&mut RandomResolver::seeded(2)).unwrap();
            assert!(metrics.steps >= 2, "deterministic={deterministic}");
            assert!(run.update_stats().iter().all(|(_, s)| s.steps > 0));
        }
    }
}
