//! The "million-user day" survival scenario, runnable from the command line.
//!
//! An open-loop, fault-injected stress run of the admission-QoS and
//! frontier-lifecycle machinery: identified clients of mixed priority submit
//! a skewed workload at Poisson arrival times through a small admission cap,
//! while the simulated humans answer late ([`SlowResolver`]) or never
//! ([`AbandoningResolver`]). Saturation turns into typed `retry_after`
//! backpressure, abandonment into system auto-resolutions on the sweeper's
//! deadline — and the day ends with bounded queues and nothing stuck.
//!
//! ```text
//! cargo run --example million_user_day --release [-- --full]
//! ```
//!
//! `--full` runs the full-scale day (thousands of clients; minutes), the
//! same configuration as the `#[ignore]`d stress test.

use youtopia::run_million_user_day;
use youtopia::workload::ScenarioConfig;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sc = if full { ScenarioConfig::full() } else { ScenarioConfig::scaled() };
    println!(
        "million-user day ({}): {} updates over {} clients, rate {}/tick, cap {}",
        if full { "full" } else { "scaled" },
        sc.experiment.workload_updates,
        sc.clients,
        sc.rate,
        sc.admission_cap,
    );

    let report = run_million_user_day(&sc).expect("scenario runs");

    println!("\nday over after {} virtual ticks", report.ticks);
    println!("  submitted            {}", report.submitted);
    println!("  saturation rejects   {} (all retried to admission)", report.rejections);
    println!("  completed            {} ({} failed)", report.completed, report.failed);
    println!("  stuck / pending      {} / {}", report.stuck, report.pending_at_end);
    println!("  max admitted         {} (cap {})", report.max_admitted, sc.admission_cap);
    println!("  max active           {} (admitted + cascading-abort revivals)", report.max_active);
    println!("  max pending queue    {}", report.max_pending_frontiers);
    println!(
        "  latency ticks        p50 {} / p95 {} / p99 {}",
        report.latency.p50, report.latency.p95, report.latency.p99
    );
    println!(
        "  frontier ops         {} ({} auto-resolved by the sweeper)",
        report.metrics.frontier_ops, report.metrics.auto_resolutions
    );
    println!("  consistent           {}", report.consistent);
    assert_eq!(report.stuck, 0, "a stuck update means the lifecycle machinery failed");
}
