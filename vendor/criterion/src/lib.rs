//! Offline, API-compatible stub of the parts of `criterion 0.5` this
//! workspace uses. See `vendor/README.md` for scope and caveats.
//!
//! The stub really times the benchmark bodies (median over a handful of
//! measured batches) and prints one line per benchmark, but performs no
//! statistical analysis, warm-up calibration, plotting, or baseline
//! comparison. It exists so `cargo bench` compiles and produces ballpark
//! numbers offline; treat its output as indicative only.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Results recorded by every benchmark of the current process, for the
/// machine-readable summary written by [`write_json_summary`].
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// How many timed batches we take per benchmark; the median is reported.
const MEASURED_BATCHES: usize = 7;

/// Target wall-clock time per measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(20);

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string() }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's sampling is fixed.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, &mut f);
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (a no-op in the stub).
    pub fn finish(self) {}
}

/// Identifies one parameterisation of a benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function: Some(function.into()), parameter: parameter.to_string() }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function: None, parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(function) => write!(f, "{}/{}", function, self.parameter),
            None => f.write_str(&self.parameter),
        }
    }
}

/// Hints for batch sizing in `iter_batched` (ignored by the stub's timer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Runs and times a benchmark body.
pub struct Bencher {
    /// Total time spent in measured routine invocations.
    elapsed: Duration,
    /// Number of measured routine invocations.
    iterations: u64,
}

impl Bencher {
    /// Times `routine` repeatedly until the batch target is reached.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iterations += 1;
            if start.elapsed() >= BATCH_TARGET {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iterations += 1;
            if start.elapsed() >= BATCH_TARGET {
                break;
            }
        }
    }
}

fn run_benchmark<F>(id: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // One untimed warm-up batch, then the measured batches.
    let mut warmup = Bencher { elapsed: Duration::ZERO, iterations: 0 };
    f(&mut warmup);

    let mut per_iter: Vec<f64> = Vec::with_capacity(MEASURED_BATCHES);
    for _ in 0..MEASURED_BATCHES {
        let mut bencher = Bencher { elapsed: Duration::ZERO, iterations: 0 };
        f(&mut bencher);
        if bencher.iterations > 0 {
            per_iter.push(bencher.elapsed.as_secs_f64() / bencher.iterations as f64);
        }
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0.0);
    println!("{id:<60} {:>14}/iter", format_seconds(median));
    RESULTS.lock().unwrap_or_else(|e| e.into_inner()).push((id.to_string(), median * 1e9));
}

/// Writes a machine-readable `BENCH_<target>.json` summary — the median
/// ns/iter of every benchmark the process ran — so the perf trajectory can be
/// tracked across commits without scraping stdout. The file lands in the
/// cargo target directory (derived from the bench executable's own path,
/// `<target>/release/deps/<name>-<hash>`), falling back to the working
/// directory. Called automatically by [`criterion_main!`].
pub fn write_json_summary() {
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    if results.is_empty() {
        return;
    }
    let exe = std::env::args().next().map(PathBuf::from).unwrap_or_default();
    let target_name = exe
        .file_stem()
        .and_then(|s| s.to_str())
        .map(|s| s.rsplit_once('-').map(|(name, _)| name).unwrap_or(s).to_string())
        .unwrap_or_else(|| "bench".to_string());
    // …/target/<profile>/deps/<exe> → …/target
    let dir = exe
        .parent()
        .and_then(|deps| deps.parent())
        .and_then(|profile| profile.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"bench\": \"{}\",\n  \"results\": [\n", escape(&target_name)));
    for (i, (id, median_ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{ \"id\": \"{}\", \"median_ns\": {:.1} }}{comma}\n",
            escape(id),
            median_ns
        ));
    }
    json.push_str("  ]\n}\n");

    let path = dir.join(format!("BENCH_{target_name}.json"));
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn format_seconds(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` / `cargo test` pass harness flags like `--bench`;
            // the stub ignores them (it has no filtering).
            $($group();)+
            $crate::write_json_summary();
        }
    };
}
