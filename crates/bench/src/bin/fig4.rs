//! Regenerates **Figure 4** of the paper: the mixed workload (80 % inserts,
//! 20 % deletes), sweeping the number of mappings and comparing the `NAIVE`,
//! `COARSE` and `PRECISE` cascading-abort algorithms on (a) the number of
//! aborts, (b) the number of cascading abort requests and (c) the slowdown of
//! `PRECISE` over `COARSE`.
//!
//! ```text
//! cargo run -p youtopia-bench --bin fig4 --release            # reduced scale
//! cargo run -p youtopia-bench --bin fig4 --release -- --paper # paper scale
//! ```

use youtopia_bench::{parse_figure_options, run_figure};
use youtopia_workload::WorkloadKind;

fn main() {
    let options = match parse_figure_options(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: fig4 [--paper|--quick] [--runs N] [--updates N] [--seed N] [--no-naive] [--threads N] [--chase-threads N] [--csv]"
            );
            std::process::exit(2);
        }
    };
    match run_figure(&options, WorkloadKind::Mixed, "Figure 4 — mixed workload") {
        Ok(report) => println!("{report}"),
        Err(message) => {
            eprintln!("experiment failed: {message}");
            std::process::exit(1);
        }
    }
}
