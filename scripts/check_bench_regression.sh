#!/usr/bin/env bash
# Compares freshly produced target/BENCH_<name>.json files against the
# committed bench-baselines/ and emits a GitHub warning annotation for every
# benchmark whose median regressed by more than the threshold. Soft check:
# always exits 0 — the CI runner is a single shared core, so medians are
# indicative, not authoritative. Update the baselines intentionally by copying
# target/BENCH_*.json over bench-baselines/ in the PR that changes the perf.
#
# Usage: scripts/check_bench_regression.sh [threshold-percent]
set -u

THRESHOLD=${1:-25}
BASELINE_DIR="$(dirname "$0")/../bench-baselines"
TARGET_DIR="$(dirname "$0")/../target"

if ! command -v jq >/dev/null 2>&1; then
    echo "jq not found; skipping bench regression check"
    exit 0
fi

status=0
for baseline in "$BASELINE_DIR"/BENCH_*.json; do
    name=$(basename "$baseline")
    current="$TARGET_DIR/$name"
    if [ ! -f "$current" ]; then
        echo "::warning::bench summary $name was not produced by this run"
        continue
    fi
    # id -> median pairs from both files, joined on id.
    while IFS=$'\t' read -r id base_ns cur_ns; do
        # Regression percentage, integer math via jq above.
        pct=$(jq -n --argjson b "$base_ns" --argjson c "$cur_ns" \
            '(($c - $b) / $b * 100) | round')
        if [ "$pct" -gt "$THRESHOLD" ]; then
            echo "::warning file=bench-baselines/$name::$id regressed ${pct}% (baseline ${base_ns}ns -> ${cur_ns}ns, threshold ${THRESHOLD}%)"
            status=1
        fi
    done < <(jq -r --slurpfile cur "$current" '
        (.results | map({(.id): .median_ns}) | add) as $base
        | ($cur[0].results | map({(.id): .median_ns}) | add) as $now
        | $base | to_entries[]
        | select($now[.key] != null)
        | [.key, (.value | tostring), ($now[.key] | tostring)] | @tsv' "$baseline")
done

if [ "$status" -eq 0 ]; then
    echo "bench medians within ${THRESHOLD}% of baselines"
else
    echo "bench regressions detected (warnings above; soft check on a 1-core runner)"
fi
exit 0
