//! Property tests for violation detection over randomly generated schemas,
//! mappings and data (the same generators used by the Section 6 experiments):
//!
//! * **Completeness of incremental detection** — starting from a database that
//!   satisfies every mapping, the violations discovered from a single write's
//!   change records are exactly the violations a full scan finds afterwards.
//! * **Soundness of the per-write affectedness check** — if
//!   `change_affects_query` says a write does not affect a violation query,
//!   then evaluating the query with and without that write yields the same
//!   answer.

use proptest::prelude::*;

use youtopia::mappings::{
    evaluate_with_change, evaluate_without_change, find_violations, violation_queries_for_change,
    violations_from_change,
};
use youtopia::workload::{
    build_fixture, generate_workload, ExperimentConfig, ExperimentFixture, WorkloadKind,
};
use youtopia::{InitialOp, UpdateId, Write};

fn fixture() -> &'static ExperimentFixture {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<ExperimentFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut config = ExperimentConfig::tiny();
        config.initial_tuples = 60;
        build_fixture(&config).expect("fixture builds")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Incremental detection from a single write agrees with a full scan on a
    /// previously consistent database.
    #[test]
    fn incremental_detection_is_complete(op_index in 0usize..40, variant in 0u64..5) {
        let fixture = fixture();
        let mut config = ExperimentConfig::tiny();
        config.initial_tuples = 60;
        let workload =
            generate_workload(&config, &fixture.schema, &fixture.initial_db, &fixture.mappings, WorkloadKind::Mixed, variant);
        let op = &workload[op_index % workload.len()];

        let mut db = fixture.initial_db.clone();
        let mappings = &fixture.mappings;
        // The initial database satisfies every mapping.
        prop_assert!(find_violations(&db.snapshot(UpdateId::OMNISCIENT), mappings).is_empty());

        let writer = UpdateId(1_000_000);
        let write = match op {
            InitialOp::Insert { relation, values } => Write::Insert { relation: *relation, values: values.clone() },
            InitialOp::Delete { relation, tuple } => Write::Delete { relation: *relation, tuple: *tuple },
            InitialOp::NullReplace { null, replacement } => Write::NullReplace { null: *null, replacement: *replacement },
        };
        let changes = db.apply(&write, writer).unwrap();

        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let mut incremental = Vec::new();
        for change in &changes {
            incremental.extend(violations_from_change(&snap, mappings, change).1);
        }
        incremental.sort();
        incremental.dedup();
        let mut full = find_violations(&snap, mappings);
        full.sort();
        full.dedup();
        prop_assert_eq!(incremental, full, "incremental detection must agree with a full scan");
    }

    /// If the affectedness check says "unaffected", the query's answer really
    /// is identical with and without the write.
    #[test]
    fn unaffected_queries_have_identical_answers(op_index in 0usize..40, probe_index in 0usize..40, variant in 0u64..3) {
        let fixture = fixture();
        let mut config = ExperimentConfig::tiny();
        config.initial_tuples = 60;
        let workload =
            generate_workload(&config, &fixture.schema, &fixture.initial_db, &fixture.mappings, WorkloadKind::Mixed, variant);
        let op = &workload[op_index % workload.len()];
        let probe_op = &workload[probe_index % workload.len()];
        let mappings = &fixture.mappings;

        let mut db = fixture.initial_db.clone();
        // The probe op defines the violation queries some earlier chase step
        // would have logged.
        let probe_write = match probe_op {
            InitialOp::Insert { relation, values } => Write::Insert { relation: *relation, values: values.clone() },
            InitialOp::Delete { relation, tuple } => Write::Delete { relation: *relation, tuple: *tuple },
            InitialOp::NullReplace { null, replacement } => Write::NullReplace { null: *null, replacement: *replacement },
        };
        let probe_changes = db.apply(&probe_write, UpdateId(999_000)).unwrap();
        let queries: Vec<_> = probe_changes
            .iter()
            .flat_map(|c| violation_queries_for_change(mappings, c))
            .collect();

        // Now a later write happens.
        let write = match op {
            InitialOp::Insert { relation, values } => Write::Insert { relation: *relation, values: values.clone() },
            InitialOp::Delete { relation, tuple } => Write::Delete { relation: *relation, tuple: *tuple },
            InitialOp::NullReplace { null, replacement } => Write::NullReplace { null: *null, replacement: *replacement },
        };
        let changes = db.apply(&write, UpdateId(999_001)).unwrap();

        let snap = db.snapshot(UpdateId::OMNISCIENT);
        for query in &queries {
            for change in &changes {
                if !youtopia::mappings::change_affects_query(&snap, mappings, query, change) {
                    let with = evaluate_with_change(&snap, mappings, query, change);
                    let without = evaluate_without_change(&snap, mappings, query, change);
                    prop_assert_eq!(
                        with, without,
                        "a change declared unaffecting must not alter the query answer"
                    );
                }
            }
        }
    }
}
