//! Lock-striped read and write logs for the parallel scheduler.
//!
//! The single-threaded [`ReadLog`](crate::ReadLog) / [`WriteLog`](crate::WriteLog)
//! are `&mut self` structures; the parallel scheduler needs many workers to
//! record reads, log writes and validate conflicts concurrently. Both striped
//! variants shard their state **by relation** — the same key the PR 2 logs
//! are indexed by — so two workers whose steps touch disjoint relations never
//! contend on a stripe. Queries whose relation set is unknown up front
//! ([`ReadQuery::NullOccurrences`]) go to a dedicated wildcard stripe that is
//! consulted for every change, mirroring the single-threaded logs.
//!
//! Lock discipline: stripe locks are leaves — no other lock is ever acquired
//! while one is held, and multi-stripe operations (wildcard walks,
//! [`StripedReadLog::clear`], [`StripedWriteLog::remove_update`]) take the
//! stripes in ascending index order, so stripe locks cannot deadlock.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};

use youtopia_core::ReadQuery;
use youtopia_mappings::MappingSet;
use youtopia_storage::{AppliedWrite, RelationId, TupleChange, UpdateId};

use crate::log::ChangeSource;

/// Default stripe count: enough to keep a handful of workers off each other's
/// locks without bloating tiny runs.
const DEFAULT_STRIPES: usize = 16;

fn stripe_of(relation: RelationId, stripes: usize) -> usize {
    relation.0 as usize % stripes
}

/// One stripe of the read log: for the relations hashed to this stripe, the
/// stored read queries per (relation, reader).
#[derive(Debug, Default)]
struct ReadStripe {
    /// relation → reader → queries whose footprint contains the relation.
    /// `BTreeMap` so reader iteration is ascending (conflict checks walk
    /// readers in priority order, like the single-threaded log).
    queries: HashMap<RelationId, BTreeMap<UpdateId, Vec<ReadQuery>>>,
}

/// The wildcard stripe: queries with an unknown relation footprint, consulted
/// for every change.
#[derive(Debug, Default)]
struct WildcardStripe {
    queries: BTreeMap<UpdateId, Vec<ReadQuery>>,
}

/// The lock-striped variant of [`crate::ReadLog`]: stored read queries of
/// every update, sharded by the relations each query reads.
///
/// Same retained-read semantics as the single-threaded log: a stored read
/// stays live — and keeps participating in conflict checks — until the update
/// aborts ([`StripedReadLog::clear`]) or the run ends, and exact duplicate
/// queries are stored once per update.
#[derive(Debug)]
pub struct StripedReadLog {
    stripes: Vec<Mutex<ReadStripe>>,
    wildcard: Mutex<WildcardStripe>,
    /// update → the distinct queries already stored for it (duplicate
    /// filter). A single lock: recording is per-update and updates are owned
    /// by one worker at a time, so this lock is effectively uncontended.
    seen: Mutex<HashMap<UpdateId, HashSet<ReadQuery>>>,
}

impl Default for StripedReadLog {
    fn default() -> Self {
        StripedReadLog::new(DEFAULT_STRIPES)
    }
}

impl StripedReadLog {
    /// Creates an empty log with the given number of stripes (at least one).
    pub fn new(stripes: usize) -> StripedReadLog {
        StripedReadLog {
            stripes: (0..stripes.max(1)).map(|_| Mutex::new(ReadStripe::default())).collect(),
            wildcard: Mutex::new(WildcardStripe::default()),
            seen: Mutex::new(HashMap::new()),
        }
    }

    fn stripe(&self, relation: RelationId) -> MutexGuard<'_, ReadStripe> {
        self.stripes[stripe_of(relation, self.stripes.len())]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Logs the read queries an update performed in one step, skipping exact
    /// duplicates of queries already stored for the update.
    pub fn record(
        &self,
        update: UpdateId,
        reads: impl IntoIterator<Item = ReadQuery>,
        mappings: &MappingSet,
    ) {
        for query in reads {
            {
                let mut seen = self.seen.lock().unwrap_or_else(|e| e.into_inner());
                if !seen.entry(update).or_default().insert(query.clone()) {
                    continue;
                }
            }
            let relations = query.relations_read(mappings);
            if relations.is_empty() {
                let mut wc = self.wildcard.lock().unwrap_or_else(|e| e.into_inner());
                wc.queries.entry(update).or_default().push(query);
            } else {
                for &relation in &relations {
                    self.stripe(relation)
                        .queries
                        .entry(relation)
                        .or_default()
                        .entry(update)
                        .or_default()
                        .push(query.clone());
                }
            }
        }
    }

    /// Updates above `writer` with at least one stored query that a write to
    /// `relation` could affect (queries reading the relation, plus wildcard
    /// readers), in ascending order — the same candidates the single-threaded
    /// [`crate::ReadLog::readers_above_touching`] reports.
    pub fn readers_above_touching(&self, writer: UpdateId, relation: RelationId) -> Vec<UpdateId> {
        let mut ids: BTreeSet<UpdateId> = {
            let wc = self.wildcard.lock().unwrap_or_else(|e| e.into_inner());
            wc.queries.keys().copied().filter(|u| *u > writer).collect()
        };
        let stripe = self.stripe(relation);
        if let Some(readers) = stripe.queries.get(&relation) {
            ids.extend(readers.keys().copied().filter(|u| *u > writer));
        }
        ids.into_iter().collect()
    }

    /// The stored queries of `update` that a write to `relation` could affect
    /// (footprint contains the relation, plus the wildcards), cloned out so
    /// the caller can evaluate them without holding any stripe lock.
    pub fn queries_touching(&self, update: UpdateId, relation: RelationId) -> Vec<ReadQuery> {
        let mut out: Vec<ReadQuery> = {
            let stripe = self.stripe(relation);
            stripe
                .queries
                .get(&relation)
                .and_then(|readers| readers.get(&update))
                .cloned()
                .unwrap_or_default()
        };
        let wc = self.wildcard.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(queries) = wc.queries.get(&update) {
            out.extend(queries.iter().cloned());
        }
        out
    }

    /// Clears the stored reads of an update (called when it aborts and
    /// restarts from scratch).
    pub fn clear(&self, update: UpdateId) {
        for stripe in &self.stripes {
            let mut stripe = stripe.lock().unwrap_or_else(|e| e.into_inner());
            stripe.queries.retain(|_, readers| {
                readers.remove(&update);
                !readers.is_empty()
            });
        }
        self.wildcard.lock().unwrap_or_else(|e| e.into_inner()).queries.remove(&update);
        self.seen.lock().unwrap_or_else(|e| e.into_inner()).remove(&update);
    }

    /// Drops every stored read of every update. A long-lived engine calls
    /// this at quiescence: with no update in flight, no stored read can ever
    /// participate in a conflict check again, and retaining them would tax
    /// every future candidate walk with the whole past.
    pub fn clear_all(&self) {
        for stripe in &self.stripes {
            stripe.lock().unwrap_or_else(|e| e.into_inner()).queries.clear();
        }
        self.wildcard.lock().unwrap_or_else(|e| e.into_inner()).queries.clear();
        self.seen.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Total number of distinct stored read queries across all updates.
    pub fn len(&self) -> usize {
        self.seen.lock().unwrap_or_else(|e| e.into_inner()).values().map(HashSet::len).sum()
    }

    /// Whether no reads are stored at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One logged tuple change: the change's position in its step's write record,
/// plus the shared record itself (a write's changes can span relations, so
/// the record is `Arc`-shared between the stripes it is filed under).
#[derive(Clone, Debug)]
struct LoggedChange {
    /// Database sequence number of the write (globally increasing — restores
    /// log order across stripes).
    seq: u64,
    /// Index of the change within `entry.changes`.
    change: u32,
    entry: Arc<AppliedWrite>,
}

/// The lock-striped variant of [`crate::WriteLog`]: all logged changes,
/// sharded by the relation each change touches. Log order is recovered from
/// the database write sequence numbers, which are allocated under the
/// database write lock and therefore globally ordered.
#[derive(Debug)]
pub struct StripedWriteLog {
    /// stripe → relation → changes touching it, in push order (= seq order,
    /// since pushes happen while the pusher still owns its step's commit).
    stripes: Vec<Mutex<HashMap<RelationId, Vec<LoggedChange>>>>,
}

impl Default for StripedWriteLog {
    fn default() -> Self {
        StripedWriteLog::new(DEFAULT_STRIPES)
    }
}

impl StripedWriteLog {
    /// Creates an empty log with the given number of stripes (at least one).
    pub fn new(stripes: usize) -> StripedWriteLog {
        StripedWriteLog {
            stripes: (0..stripes.max(1)).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Appends the writes of a chase step.
    pub fn push_all(&self, writes: &[AppliedWrite]) {
        for w in writes {
            let entry = Arc::new(w.clone());
            for (c, change) in w.changes.iter().enumerate() {
                let relation = change.relation();
                let mut stripe = self.stripes[stripe_of(relation, self.stripes.len())]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                stripe.entry(relation).or_default().push(LoggedChange {
                    seq: w.seq,
                    change: c as u32,
                    entry: entry.clone(),
                });
            }
        }
    }

    /// The logged changes of one update, in log order. The free-running
    /// scheduler captures these just before an abort: their inverses are what
    /// the rollback does to the database, and are validated against the read
    /// log like any other write.
    pub fn changes_of(&self, update: UpdateId) -> Vec<TupleChange> {
        let mut hits: Vec<(u64, u32, TupleChange)> = Vec::new();
        for stripe in &self.stripes {
            let stripe = stripe.lock().unwrap_or_else(|e| e.into_inner());
            for changes in stripe.values() {
                hits.extend(
                    changes
                        .iter()
                        .filter(|c| c.entry.update == update)
                        .map(|c| (c.seq, c.change, c.entry.changes[c.change as usize].clone())),
                );
            }
        }
        hits.sort_unstable_by_key(|(seq, change, _)| (*seq, *change));
        hits.into_iter().map(|(_, _, change)| change).collect()
    }

    /// Drops every logged change of every update (quiescence GC — see
    /// [`StripedReadLog::clear_all`]).
    pub fn clear_all(&self) {
        for stripe in &self.stripes {
            stripe.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Drops every change logged for `update` (called when the update aborts).
    pub fn remove_update(&self, update: UpdateId) {
        for stripe in &self.stripes {
            let mut stripe = stripe.lock().unwrap_or_else(|e| e.into_inner());
            stripe.retain(|_, changes| {
                changes.retain(|c| c.entry.update != update);
                !changes.is_empty()
            });
        }
    }

    /// Collects the changes of updates below `reader` touching one of
    /// `relations` (empty = all), as shared records sorted into log order.
    fn collect_before(&self, reader: UpdateId, relations: &[RelationId]) -> Vec<LoggedChange> {
        let mut out: Vec<LoggedChange> = Vec::new();
        if relations.is_empty() {
            // Wildcard: every stripe, every relation. Each (seq, change) pair
            // is filed under exactly one relation, so no dedup is needed.
            for stripe in &self.stripes {
                let stripe = stripe.lock().unwrap_or_else(|e| e.into_inner());
                for changes in stripe.values() {
                    out.extend(changes.iter().filter(|c| c.entry.update < reader).cloned());
                }
            }
        } else {
            let mut wanted: Vec<RelationId> = relations.to_vec();
            wanted.sort_unstable_by_key(|r| (stripe_of(*r, self.stripes.len()), r.0));
            wanted.dedup();
            for relation in wanted {
                let stripe = self.stripes[stripe_of(relation, self.stripes.len())]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                if let Some(changes) = stripe.get(&relation) {
                    out.extend(changes.iter().filter(|c| c.entry.update < reader).cloned());
                }
            }
        }
        out.sort_unstable_by_key(|c| (c.seq, c.change));
        out
    }

    /// Number of distinct logged step-write records.
    pub fn len(&self) -> usize {
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        for stripe in &self.stripes {
            let stripe = stripe.lock().unwrap_or_else(|e| e.into_inner());
            for changes in stripe.values() {
                seen.extend(changes.iter().map(|c| c.seq));
            }
        }
        seen.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.lock().unwrap_or_else(|e| e.into_inner()).is_empty())
    }
}

impl ChangeSource for StripedWriteLog {
    fn for_each_change_before(
        &self,
        reader: UpdateId,
        relations: &[RelationId],
        f: &mut dyn FnMut(UpdateId, &TupleChange),
    ) {
        // Collect under the stripe locks, evaluate outside them: `f` usually
        // re-runs a query against the database, which must not happen while a
        // leaf lock is held.
        for c in self.collect_before(reader, relations) {
            f(c.entry.update, &c.entry.changes[c.change as usize]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{ReadLog, WriteLog};
    use youtopia_storage::{NullId, TupleId, Value, Write};

    fn applied_to(update: u64, seq: u64, relation: RelationId) -> AppliedWrite {
        AppliedWrite {
            update: UpdateId(update),
            seq,
            write: Write::Insert { relation, values: vec![Value::constant("v")] },
            changes: vec![TupleChange::Inserted {
                relation,
                tuple: TupleId(seq),
                values: vec![Value::constant("v")].into(),
            }],
        }
    }

    fn changes_of(
        log: &dyn ChangeSource,
        reader: UpdateId,
        rels: &[RelationId],
    ) -> Vec<(UpdateId, RelationId)> {
        let mut out = Vec::new();
        log.for_each_change_before(reader, rels, &mut |u, c| out.push((u, c.relation())));
        out
    }

    #[test]
    fn striped_write_log_agrees_with_the_single_threaded_log() {
        let r0 = RelationId(0);
        let r1 = RelationId(1);
        let r17 = RelationId(17); // collides with r1 at 16 stripes
        let writes = [
            applied_to(1, 1, r0),
            applied_to(2, 2, r1),
            applied_to(3, 3, r17),
            applied_to(5, 4, r0),
        ];

        let mut plain = WriteLog::new();
        plain.push_all(&writes);
        let striped = StripedWriteLog::default();
        striped.push_all(&writes);

        for reader in [0u64, 2, 4, 9] {
            for rels in [vec![], vec![r0], vec![r1, r17], vec![r17, r0, r1]] {
                assert_eq!(
                    changes_of(&striped, UpdateId(reader), &rels),
                    changes_of(&plain, UpdateId(reader), &rels),
                    "reader {reader}, relations {rels:?}"
                );
            }
        }

        striped.remove_update(UpdateId(3));
        plain.remove_update(UpdateId(3));
        assert_eq!(changes_of(&striped, UpdateId(9), &[]), changes_of(&plain, UpdateId(9), &[]));
        assert_eq!(striped.len(), 3);
        assert!(!striped.is_empty());
    }

    #[test]
    fn striped_read_log_agrees_with_the_single_threaded_log() {
        let mappings = MappingSet::new();
        let r0 = RelationId(0);
        let r16 = RelationId(16); // collides with r0 at 16 stripes
        let q0 =
            ReadQuery::MoreSpecific { relation: r0, pattern: vec![Value::constant("a")].into() };
        let q16 =
            ReadQuery::MoreSpecific { relation: r16, pattern: vec![Value::constant("b")].into() };
        let wq = ReadQuery::NullOccurrences { null: NullId(7) };

        let mut plain = ReadLog::new();
        let striped = StripedReadLog::default();
        for (u, q) in [(3u64, &q0), (4, &wq), (5, &q16), (3, &q0) /* duplicate */] {
            plain.record(UpdateId(u), vec![q.clone()], &mappings);
            striped.record(UpdateId(u), vec![q.clone()], &mappings);
        }
        assert_eq!(striped.len(), plain.len());

        for writer in [0u64, 3, 4] {
            for rel in [r0, r16] {
                assert_eq!(
                    striped.readers_above_touching(UpdateId(writer), rel),
                    plain.readers_above_touching(UpdateId(writer), rel),
                    "writer {writer}, relation {rel:?}"
                );
            }
        }
        // Query retrieval matches footprints, wildcards always qualify.
        assert_eq!(striped.queries_touching(UpdateId(3), r0), vec![q0.clone()]);
        assert!(striped.queries_touching(UpdateId(3), r16).is_empty());
        assert_eq!(striped.queries_touching(UpdateId(4), r16), vec![wq.clone()]);

        striped.clear(UpdateId(4));
        plain.clear(UpdateId(4));
        assert_eq!(
            striped.readers_above_touching(UpdateId(0), r16),
            plain.readers_above_touching(UpdateId(0), r16)
        );
        assert!(!striped.is_empty());
        striped.clear(UpdateId(3));
        striped.clear(UpdateId(5));
        assert!(striped.is_empty());
    }

    #[test]
    fn concurrent_recording_keeps_every_stripe_consistent() {
        let striped = StripedReadLog::new(4);
        let wlog = StripedWriteLog::new(4);
        let mappings = MappingSet::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let striped = &striped;
                let wlog = &wlog;
                let mappings = &mappings;
                scope.spawn(move || {
                    for i in 0..25u64 {
                        let rel = RelationId(((t * 25 + i) % 7) as u32);
                        let q = ReadQuery::MoreSpecific {
                            relation: rel,
                            pattern: vec![Value::constant(&format!("{t}-{i}"))].into(),
                        };
                        striped.record(UpdateId(10 + t), vec![q], mappings);
                        wlog.push_all(&[applied_to(10 + t, t * 1000 + i, rel)]);
                    }
                });
            }
        });
        assert_eq!(striped.len(), 100);
        assert_eq!(wlog.len(), 100);
        let mut total = 0usize;
        for rel in 0..7u32 {
            for reader in striped.readers_above_touching(UpdateId(0), RelationId(rel)) {
                total += striped.queries_touching(reader, RelationId(rel)).len();
            }
        }
        assert_eq!(total, 100, "every recorded query must be reachable through its relation");
    }
}
