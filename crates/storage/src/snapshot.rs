//! Read-only views over the database: snapshots and overlays.
//!
//! The chase and the concurrency layer never read the [`crate::Database`]
//! directly; they read through a [`DataView`]. Two implementations exist:
//!
//! * [`Snapshot`] — the database as visible to one update (Section 4.1
//!   visibility).
//! * [`OverlaySnapshot`] — a snapshot with one tuple's presence or contents
//!   overridden. This is how conflict detection and the `PRECISE` dependency
//!   tracker answer the question *"would this read query's answer differ if a
//!   particular write had / had not happened?"* without copying the database.

use std::collections::HashMap;

use crate::database::Database;
use crate::schema::{Catalog, RelationId};
use crate::tuple::{TupleData, TupleId};
use crate::value::{NullId, Value};
use crate::version::UpdateId;

/// A read-only, visibility-filtered view of the database.
pub trait DataView {
    /// The catalog.
    fn catalog(&self) -> &Catalog;

    /// Data of one tuple, if visible.
    fn tuple(&self, relation: RelationId, tuple: TupleId) -> Option<TupleData>;

    /// All visible tuples of a relation, in deterministic order.
    fn scan(&self, relation: RelationId) -> Vec<(TupleId, TupleData)>;

    /// Visible tuples of a relation whose value at `column` equals `value`.
    fn candidates(
        &self,
        relation: RelationId,
        column: usize,
        value: Value,
    ) -> Vec<(TupleId, TupleData)>;

    /// Visible tuples (across relations) containing a labeled null.
    fn null_occurrences(&self, null: NullId) -> Vec<(RelationId, TupleId, TupleData)>;

    /// Number of visible tuples in a relation.
    fn relation_size(&self, relation: RelationId) -> usize {
        self.scan(relation).len()
    }
}

/// The database as seen by one reader (an update's priority number).
#[derive(Clone, Copy)]
pub struct Snapshot<'db> {
    db: &'db Database,
    reader: UpdateId,
}

impl<'db> Snapshot<'db> {
    /// Creates a snapshot for `reader`.
    pub fn new(db: &'db Database, reader: UpdateId) -> Snapshot<'db> {
        Snapshot { db, reader }
    }

    /// The reader's update number.
    pub fn reader(&self) -> UpdateId {
        self.reader
    }

    /// The underlying database.
    pub fn database(&self) -> &'db Database {
        self.db
    }
}

impl DataView for Snapshot<'_> {
    fn catalog(&self) -> &Catalog {
        self.db.catalog()
    }

    fn tuple(&self, relation: RelationId, tuple: TupleId) -> Option<TupleData> {
        self.db.visible(relation, tuple, self.reader)
    }

    fn scan(&self, relation: RelationId) -> Vec<(TupleId, TupleData)> {
        self.db.scan(relation, self.reader)
    }

    fn candidates(
        &self,
        relation: RelationId,
        column: usize,
        value: Value,
    ) -> Vec<(TupleId, TupleData)> {
        self.db.candidates(relation, column, value, self.reader)
    }

    fn null_occurrences(&self, null: NullId) -> Vec<(RelationId, TupleId, TupleData)> {
        self.db.null_occurrences(null, self.reader)
    }

    fn relation_size(&self, relation: RelationId) -> usize {
        self.db.visible_count(relation, self.reader)
    }
}

/// How an [`OverlaySnapshot`] overrides a single tuple.
#[derive(Clone, Debug)]
pub enum TupleOverride {
    /// Pretend the tuple is absent.
    Hide,
    /// Pretend the tuple is present with the given data (restoring a deleted
    /// tuple, or rolling a modification back to its previous contents).
    Present(TupleData),
}

/// A [`DataView`] that applies per-tuple overrides on top of another view.
pub struct OverlaySnapshot<'a, V: DataView + ?Sized> {
    base: &'a V,
    overrides: HashMap<TupleId, (RelationId, TupleOverride)>,
}

impl<'a, V: DataView + ?Sized> OverlaySnapshot<'a, V> {
    /// Creates an overlay with no overrides.
    pub fn new(base: &'a V) -> Self {
        OverlaySnapshot { base, overrides: HashMap::new() }
    }

    /// Hides a tuple.
    pub fn hide(mut self, relation: RelationId, tuple: TupleId) -> Self {
        self.overrides.insert(tuple, (relation, TupleOverride::Hide));
        self
    }

    /// Forces a tuple to be present with the given data.
    pub fn with_tuple(mut self, relation: RelationId, tuple: TupleId, data: TupleData) -> Self {
        self.overrides.insert(tuple, (relation, TupleOverride::Present(data)));
        self
    }

    fn overridden(&self, tuple: TupleId) -> Option<&(RelationId, TupleOverride)> {
        self.overrides.get(&tuple)
    }
}

impl<V: DataView + ?Sized> DataView for OverlaySnapshot<'_, V> {
    fn catalog(&self) -> &Catalog {
        self.base.catalog()
    }

    fn tuple(&self, relation: RelationId, tuple: TupleId) -> Option<TupleData> {
        if let Some((rel, ov)) = self.overridden(tuple) {
            if *rel == relation {
                return match ov {
                    TupleOverride::Hide => None,
                    TupleOverride::Present(data) => Some(data.clone()),
                };
            }
        }
        self.base.tuple(relation, tuple)
    }

    fn scan(&self, relation: RelationId) -> Vec<(TupleId, TupleData)> {
        let mut rows: Vec<(TupleId, TupleData)> = self
            .base
            .scan(relation)
            .into_iter()
            .filter(|(id, _)| !matches!(self.overridden(*id), Some((rel, TupleOverride::Hide)) if *rel == relation))
            .map(|(id, data)| match self.overridden(id) {
                Some((rel, TupleOverride::Present(d))) if *rel == relation => (id, d.clone()),
                _ => (id, data),
            })
            .collect();
        // Add overridden-present tuples the base does not show at all.
        for (id, (rel, ov)) in &self.overrides {
            if *rel == relation {
                if let TupleOverride::Present(data) = ov {
                    if self.base.tuple(relation, *id).is_none() {
                        rows.push((*id, data.clone()));
                    }
                }
            }
        }
        rows.sort_by_key(|(id, _)| *id);
        rows
    }

    fn candidates(
        &self,
        relation: RelationId,
        column: usize,
        value: Value,
    ) -> Vec<(TupleId, TupleData)> {
        let mut rows: Vec<(TupleId, TupleData)> = self
            .base
            .candidates(relation, column, value)
            .into_iter()
            .filter_map(|(id, data)| match self.overridden(id) {
                Some((rel, TupleOverride::Hide)) if *rel == relation => None,
                Some((rel, TupleOverride::Present(d))) if *rel == relation => {
                    if d.get(column) == Some(&value) {
                        Some((id, d.clone()))
                    } else {
                        None
                    }
                }
                _ => Some((id, data)),
            })
            .collect();
        for (id, (rel, ov)) in &self.overrides {
            if *rel == relation {
                if let TupleOverride::Present(data) = ov {
                    if data.get(column) == Some(&value) && !rows.iter().any(|(rid, _)| rid == id) {
                        rows.push((*id, data.clone()));
                    }
                }
            }
        }
        rows.sort_by_key(|(id, _)| *id);
        rows
    }

    fn null_occurrences(&self, null: NullId) -> Vec<(RelationId, TupleId, TupleData)> {
        let mut rows: Vec<(RelationId, TupleId, TupleData)> = self
            .base
            .null_occurrences(null)
            .into_iter()
            .filter_map(|(rel, id, data)| match self.overridden(id) {
                Some((orel, TupleOverride::Hide)) if *orel == rel => None,
                Some((orel, TupleOverride::Present(d))) if *orel == rel => {
                    if crate::tuple::contains_null(d, null) {
                        Some((rel, id, d.clone()))
                    } else {
                        None
                    }
                }
                _ => Some((rel, id, data)),
            })
            .collect();
        for (id, (rel, ov)) in &self.overrides {
            if let TupleOverride::Present(data) = ov {
                if crate::tuple::contains_null(data, null)
                    && !rows.iter().any(|(_, rid, _)| rid == id)
                {
                    rows.push((*rel, *id, data.clone()));
                }
            }
        }
        rows.sort_by_key(|(_, id, _)| *id);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value as V;
    use crate::version::Write;

    fn setup() -> (Database, RelationId, TupleId, TupleId) {
        let mut db = Database::new();
        let r = db.add_relation("R", ["a", "b"]).unwrap();
        let t1 = db.insert_by_name("R", &["a", "b"], UpdateId(1));
        let t2 = db.insert_by_name("R", &["a", "c"], UpdateId(2));
        (db, r, t1, t2)
    }

    #[test]
    fn snapshot_respects_reader_visibility() {
        let (db, r, t1, t2) = setup();
        let s1 = db.snapshot(UpdateId(1));
        assert_eq!(s1.scan(r).len(), 1);
        assert!(s1.tuple(r, t1).is_some());
        assert!(s1.tuple(r, t2).is_none());
        assert_eq!(s1.relation_size(r), 1);

        let s2 = db.snapshot(UpdateId(2));
        assert_eq!(s2.scan(r).len(), 2);
        assert_eq!(s2.candidates(r, 0, V::constant("a")).len(), 2);
        assert_eq!(s2.reader(), UpdateId(2));
        assert_eq!(s2.database().total_visible(UpdateId(2)), 2);
    }

    #[test]
    fn overlay_hide_removes_tuple_from_all_access_paths() {
        let (db, r, t1, _) = setup();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let overlay = OverlaySnapshot::new(&snap).hide(r, t1);
        assert!(overlay.tuple(r, t1).is_none());
        assert_eq!(overlay.scan(r).len(), 1);
        assert_eq!(overlay.candidates(r, 0, V::constant("a")).len(), 1);
        assert_eq!(overlay.relation_size(r), 1);
        assert_eq!(overlay.catalog().len(), 1);
    }

    #[test]
    fn overlay_present_restores_a_deleted_tuple() {
        let (mut db, r, t1, _) = setup();
        let old = db.visible(r, t1, UpdateId::OMNISCIENT).unwrap();
        db.apply(&Write::Delete { relation: r, tuple: t1 }, UpdateId(3)).unwrap();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert_eq!(snap.scan(r).len(), 1);

        let overlay = OverlaySnapshot::new(&snap).with_tuple(r, t1, old.clone());
        assert_eq!(overlay.scan(r).len(), 2);
        assert_eq!(overlay.tuple(r, t1), Some(old));
        assert_eq!(overlay.candidates(r, 1, V::constant("b")).len(), 1);
    }

    #[test]
    fn overlay_present_replaces_contents() {
        let (db, r, t1, _) = setup();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let new: TupleData = vec![V::constant("z"), V::constant("b")].into();
        let overlay = OverlaySnapshot::new(&snap).with_tuple(r, t1, new.clone());
        assert_eq!(overlay.tuple(r, t1), Some(new));
        // Candidate lookup on the old value no longer returns t1.
        assert!(overlay.candidates(r, 0, V::constant("a")).iter().all(|(id, _)| *id != t1));
        assert!(overlay.candidates(r, 0, V::constant("z")).iter().any(|(id, _)| *id == t1));
    }

    #[test]
    fn overlay_null_occurrences() {
        let mut db = Database::new();
        let r = db.add_relation("R", ["a"]).unwrap();
        let x = db.fresh_null();
        let changes = db
            .apply(&Write::Insert { relation: r, values: vec![V::Null(x)] }, UpdateId(1))
            .unwrap();
        let tid = changes[0].tuple();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        assert_eq!(snap.null_occurrences(x).len(), 1);
        let overlay = OverlaySnapshot::new(&snap).hide(r, tid);
        assert!(overlay.null_occurrences(x).is_empty());
        // Overlay that rewrites the null away also drops the occurrence.
        let overlay = OverlaySnapshot::new(&snap).with_tuple(r, tid, vec![V::constant("c")].into());
        assert!(overlay.null_occurrences(x).is_empty());
    }
}
