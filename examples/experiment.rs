//! A miniature Section 6 experiment, runnable from the command line.
//!
//! Generates a random schema, a random mapping set, an initial database
//! populated through the cooperative chase, and an update workload; then runs
//! the workload concurrently under the `COARSE` and `PRECISE` trackers and
//! prints the resulting abort statistics — a scaled-down version of what the
//! `fig3`/`fig4` binaries in `crates/bench` produce for every mapping density.
//!
//! Run with `cargo run --example experiment --release [-- mixed]`.

use youtopia::workload::{
    build_fixture, generate_workload, mapping_stats, run_single, ExperimentConfig, WorkloadKind,
};
use youtopia::{TrackerKind, UpdateId};

fn main() {
    let kind = if std::env::args().any(|a| a == "mixed") {
        WorkloadKind::Mixed
    } else {
        WorkloadKind::AllInserts
    };

    let mut config = ExperimentConfig::quick();
    config.runs = 1;
    println!("Building the experiment fixture (schema, mappings, initial database)…");
    let fixture = build_fixture(&config).expect("fixture generation succeeds");
    let stats = mapping_stats(&fixture.mappings);
    println!(
        "  {} relations, {} mappings (avg {:.1} LHS / {:.1} RHS atoms), {} initial tuples",
        config.relations,
        stats.mappings,
        stats.avg_lhs_atoms,
        stats.avg_rhs_atoms,
        fixture.initial_db.total_visible(UpdateId::OMNISCIENT),
    );
    let workload = generate_workload(&config, &fixture.schema, &fixture.initial_db, kind, 0);
    println!("  workload: {} updates ({kind})\n", workload.len());

    println!(
        "{:>10} {:>9} {:>9} {:>11} {:>11} {:>9}",
        "tracker", "mappings", "aborts", "cascading", "conflicts", "steps"
    );
    for mapping_count in config.mapping_counts.clone() {
        for tracker in [TrackerKind::Coarse, TrackerKind::Precise] {
            let metrics = run_single(&fixture, &config, kind, mapping_count, tracker, 0)
                .expect("run terminates");
            println!(
                "{:>10} {:>9} {:>9} {:>11} {:>11} {:>9}",
                tracker.name(),
                mapping_count,
                metrics.aborts,
                metrics.cascading_abort_requests,
                metrics.direct_conflict_requests,
                metrics.steps
            );
        }
    }
    println!("\nRun the full sweeps (all three trackers, averaged over repeated runs) with:");
    println!("  cargo run -p youtopia-bench --bin fig3 --release");
    println!("  cargo run -p youtopia-bench --bin fig4 --release");
}
