//! A live engine session: the service-shaped API the paper's cooperative
//! model implies.
//!
//! The batch schedulers take every update up front and a callback answers
//! frontiers synchronously. Real Youtopia traffic is not like that: updates
//! arrive continuously, and the humans who answer frontier questions do so
//! minutes later, while other updates keep chasing. This example drives that
//! lifecycle end to end on the Example 3.1 scenario:
//!
//! 1. `submit` u1 (delete the XYZ review) — its backward chase blocks on a
//!    negative frontier question;
//! 2. `submit` u2 (the Math Conf convention) *while u1 is blocked* — the
//!    engine chases it concurrently;
//! 3. poll `pending_frontiers`, show the question, `answer` it through the
//!    token (delete the tour);
//! 4. watch the optimistic machinery repair u2's premature excursion
//!    suggestion, and read the final state through `engine.read`.
//!
//! Run with `cargo run --example live_session`.

use youtopia::{
    satisfies_all, Database, EngineBuilder, FrontierDecision, FrontierRequest, InitialOp,
    MappingSet, TrackerKind, UpdateId, UpdateStatus, Value,
};

fn figure2_fragment() -> (Database, MappingSet) {
    let mut db = Database::new();
    db.add_relation("A", ["location", "name"]).unwrap();
    db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
    db.add_relation("R", ["company", "attraction", "review"]).unwrap();
    db.add_relation("V", ["city", "convention"]).unwrap();
    db.add_relation("E", ["convention", "attraction"]).unwrap();
    let mut mappings = MappingSet::new();
    mappings
        .add_parsed_many(
            db.catalog(),
            "
            sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
            sigma4: V(cv, x) & T(n, c, cv) -> E(x, n)
            ",
        )
        .unwrap();
    let u = UpdateId(0);
    db.insert_by_name("A", &["Geneva", "Geneva Winery"], u);
    db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], u);
    db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], u);
    db.insert_by_name("V", &["Syracuse", "Science Conf"], u);
    db.insert_by_name("E", &["Science Conf", "Geneva Winery"], u);
    (db, mappings)
}

fn print_table(db: &Database, name: &str) {
    let rel = db.relation_id(name).unwrap();
    println!("  {name}:");
    for (_, data) in db.scan(rel, UpdateId::OMNISCIENT) {
        let row: Vec<String> = data.iter().map(|v| v.to_string()).collect();
        println!("    ({})", row.join(", "));
    }
}

fn main() {
    let (db, mappings) = figure2_fragment();
    let r = db.relation_id("R").unwrap();
    let v = db.relation_id("V").unwrap();
    let review = db.scan(r, UpdateId::OMNISCIENT)[0].0;

    println!("== A live engine session (Example 3.1 as a service) ==\n");
    let engine = EngineBuilder::new()
        .tracker(TrackerKind::Precise)
        .workers(2)
        .free_running()
        .build(db, mappings)
        .expect("non-durable engines build infallibly");

    // u1: XYZ discontinues its Geneva Winery tours; the review's deletion
    // blocks on a question only a human can answer.
    let u1 = engine.submit(InitialOp::Delete { relation: r, tuple: review }).unwrap();
    println!("submitted u1 = {} (delete the XYZ review)", u1.id());
    let pending = loop {
        let pending = engine.pending_frontiers();
        if !pending.is_empty() {
            break pending;
        }
        std::thread::yield_now();
    };
    println!("u1 status: {:?}", u1.status());
    assert_eq!(u1.status(), UpdateStatus::AwaitingFrontier);

    // u2 arrives while u1 waits for its human — the engine keeps serving.
    let u2 = engine
        .submit(InitialOp::Insert {
            relation: v,
            values: vec![Value::constant("Syracuse"), Value::constant("Math Conf")],
        })
        .unwrap();
    println!("submitted u2 = {} (Math Conf is scheduled in Syracuse)\n", u2.id());

    // The pull-based frontier queue: each entry is (token, owner, question).
    for pf in &pending {
        println!("pending question for {}: {}", pf.update, pf.request);
    }
    let pf = &pending[0];
    let FrontierRequest::Negative(nf) = &pf.request else {
        panic!("u1's backward chase asks a negative frontier question")
    };
    let tour = nf
        .candidates
        .iter()
        .find(|(_, _, data)| data.len() == 3)
        .map(|(_, id, _)| *id)
        .expect("the tour is a candidate");
    println!("answering {} -> delete the tour (Example 3.1, step 4)\n", pf.token);
    engine.answer(pf.token, FrontierDecision::Negative(vec![tour])).unwrap();

    // Both updates run to completion; handle-side waiting is all we need
    // because no further frontier question can arise in this scenario.
    let r1 = u1.wait().unwrap();
    let r2 = u2.wait().unwrap();
    println!(
        "u1 terminated after {} steps, {} frontier op(s)",
        r1.stats.steps, r1.stats.frontier_ops
    );
    println!(
        "u2 terminated after {} steps, {} restart(s) — a restart here means the\n\
         engine caught u2's premature excursion suggestion and redid it\n",
        r2.stats.steps, r2.stats.restarts
    );

    // Snapshot reads of committed state — the serving path of a live system.
    engine.read(|db| {
        print_table(db, "T");
        print_table(db, "V");
        print_table(db, "E");
        assert!(satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), engine.mappings()));
        let e = db.relation_id("E").unwrap();
        let premature = db
            .scan(e, UpdateId::OMNISCIENT)
            .into_iter()
            .filter(|(_, d)| d[0] == Value::constant("Math Conf"))
            .count();
        assert_eq!(premature, 0, "no excursion may recommend the deleted tour");
    });

    let (_db, _mappings, metrics) = engine.shutdown();
    println!(
        "\nengine metrics: {} updates, {} steps, {} frontier op(s), {} abort(s)",
        metrics.workload_size, metrics.steps, metrics.frontier_ops, metrics.aborts
    );
    println!("final database satisfies all mappings: true");
}
