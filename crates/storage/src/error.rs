//! Error types for the storage layer.

use std::fmt;

use crate::schema::RelationId;
use crate::tuple::TupleId;

/// Errors raised by the storage layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// A relation with this name already exists in the catalog.
    DuplicateRelation(String),
    /// A relation must have at least one attribute.
    EmptySchema(String),
    /// The relation id is not registered in the catalog.
    UnknownRelation(RelationId),
    /// The tuple id does not exist (or is not visible) in the given relation.
    UnknownTuple(RelationId, TupleId),
    /// A tuple was inserted with the wrong number of attributes.
    ArityMismatch {
        /// Relation the insert targeted.
        relation: RelationId,
        /// Arity declared in the catalog.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` already exists")
            }
            StorageError::EmptySchema(name) => {
                write!(f, "relation `{name}` must have at least one attribute")
            }
            StorageError::UnknownRelation(id) => write!(f, "unknown relation {id}"),
            StorageError::UnknownTuple(rel, t) => {
                write!(f, "tuple {t} does not exist in relation {rel}")
            }
            StorageError::ArityMismatch { relation, expected, actual } => write!(
                f,
                "arity mismatch for relation {relation}: expected {expected} values, got {actual}"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::DuplicateRelation("City".into());
        assert!(e.to_string().contains("City"));
        let e = StorageError::ArityMismatch { relation: RelationId(2), expected: 3, actual: 1 };
        assert!(e.to_string().contains("expected 3"));
        let e = StorageError::UnknownTuple(RelationId(1), TupleId(9));
        assert!(e.to_string().contains("t9"));
        let e = StorageError::UnknownRelation(RelationId(7));
        assert!(e.to_string().contains("R7"));
        let e = StorageError::EmptySchema("X".into());
        assert!(e.to_string().contains("X"));
    }
}
